//! Functional-equivalence audit: simulate the medical system's original
//! specification and every refined implementation model (4 models × 3
//! designs), comparing final variable state. The paper motivates
//! refinement partly by making the partitioned specification
//! *simulatable* — this example is that verification loop.
//!
//! Run with: `cargo run --example equivalence_check`

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::sim::Simulator;
use modref::spec::printer;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();

    let original = Simulator::new(&spec).run()?;
    println!(
        "original: {} micro-steps, volume = {:?}, cycle = {:?}, {} lines",
        original.steps,
        original.var_by_name("volume"),
        original.var_by_name("cycle"),
        printer::line_count(&spec)
    );

    let mut failures = 0;
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)?;
            let result = Simulator::new(&refined.spec).run()?;
            let diffs = original.diff_common_vars(&result);
            let verdict = if diffs.is_empty() {
                "EQUIVALENT"
            } else {
                "MISMATCH"
            };
            println!(
                "{design} {model}: {verdict:<11} ({} steps, {} behaviors, {} lines{})",
                result.steps,
                refined.spec.behavior_count(),
                printer::line_count(&refined.spec),
                if diffs.is_empty() {
                    String::new()
                } else {
                    format!(", differs on {diffs:?}")
                }
            );
            if !diffs.is_empty() {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} refined models diverged").into());
    }
    println!("\nall 12 refined implementation models are functionally equivalent");
    Ok(())
}
