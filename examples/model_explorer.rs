//! Implementation-model exploration: for a synthetic design swept over
//! partition quality (random → greedy → group migration → annealing),
//! compare the four implementation models on maximum bus transfer rate,
//! bus count and refined-spec size — the design-space exploration loop
//! the paper argues refinement enables.
//!
//! Run with: `cargo run --example model_explorer`

use modref::core::{figure9_rates, refine, ImplModel};
use modref::estimate::LifetimeConfig;
use modref::partition::algorithms::{
    GreedyPartitioner, GroupMigration, Partitioner, RandomPartitioner, SimulatedAnnealing,
};
use modref::partition::{partition_cost, Allocation, CostConfig};
use modref::spec::printer;
use modref::workloads::{SynthConfig, SynthSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let synth = SynthSpec::generate(
        2026,
        &SynthConfig {
            leaves: 10,
            vars: 8,
            stmts_per_leaf: 5,
            fanout: 3,
            loop_percent: 40,
        },
    );
    let spec = &synth.spec;
    let graph = synth.graph();
    let alloc = Allocation::proc_plus_asic();
    let cost_cfg = CostConfig::default();
    let life_cfg = LifetimeConfig::default();

    println!(
        "synthetic design: {} behaviors, {} variables, {} data channels",
        spec.behavior_count(),
        spec.variable_count(),
        graph.data_channel_count()
    );

    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(RandomPartitioner::new(1)),
        Box::new(GreedyPartitioner::new()),
        Box::new(GroupMigration::new(12)),
        Box::new(SimulatedAnnealing::new(1, 400)),
    ];

    for p in partitioners {
        let part = p.partition(spec, &graph, &alloc, &cost_cfg);
        let cost = partition_cost(spec, &graph, &alloc, &part, &cost_cfg);
        let (locals, globals) = part.classify_all(spec, &graph);
        println!(
            "\n== partitioner {:<16} cut {:>6.0} bits, {} local / {} global vars ==",
            p.name(),
            cost.cut_bits,
            locals.len(),
            globals.len()
        );
        for model in ImplModel::ALL {
            let rates = figure9_rates(spec, &graph, &alloc, &part, model, &life_cfg)?;
            let refined = refine(spec, &graph, &alloc, &part, model)?;
            println!(
                "  {model}: max bus rate {:>8.1} Mbit/s over {} buses, refined {} lines",
                rates.max_rate(),
                rates.bus_count(),
                printer::line_count(&refined.spec)
            );
        }
    }

    println!(
        "\nReading the table: better partitions (lower cut) shrink global traffic, which \
         narrows the gap between Model1's shared bus and the distributed models — the \
         application/partition dependence the paper's Section 5 concludes with."
    );
    Ok(())
}
