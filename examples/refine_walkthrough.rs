//! A guided tour of the three refinement procedures, printing the refined
//! specification fragments that correspond to the paper's Figures 4–8:
//! control-related refinement (`B_CTRL` / `B_NEW`), data-related
//! refinement (`MST_receive`/`MST_send` + `Memory`), and
//! architecture-related refinement (arbiter, bus interfaces).
//!
//! Run with: `cargo run --example refine_walkthrough`

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::partition::{Allocation, Partition};
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, printer, stmt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 4's situation: P1 = {A, C}, P2 = {B}, sequential A; B; C,
    // with a shared variable x that B increments — so the example also
    // triggers data refinement, and two concurrent masters on the global
    // bus trigger arbiter insertion.
    let mut builder = SpecBuilder::new("walkthrough");
    let x = builder.var_int("x", 16, 0);
    let a = builder.leaf("A", vec![stmt::assign(x, expr::lit(10))]);
    let b = builder.leaf(
        "B",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
    );
    let c = builder.leaf(
        "C",
        vec![stmt::assign(x, expr::mul(expr::var(x), expr::lit(2)))],
    );
    let top = builder.seq_in_order("Top", vec![a, b, c]);
    let spec = builder.finish(top)?;
    let graph = AccessGraph::derive(&spec);

    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").expect("allocated");
    let asic = alloc.by_name("ASIC").expect("allocated");
    let mut part = Partition::with_default(proc);
    part.assign_behavior(b, asic);
    part.assign_var(x, asic);

    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1)?;
    let text = printer::print(&refined.spec);

    println!("--- control-related refinement (Figure 4) ---");
    print_behavior(&text, "B_CTRL");
    print_behavior(&text, "B_NEW");

    println!("--- data-related refinement (Figure 5) ---");
    print_subroutine(&text, "MST_receive_b1_m0");
    print_behavior(&text, "Gmem_p1");

    println!("--- architecture-related refinement (Figure 7) ---");
    print_behavior(&text, "Arbiter_b1");

    println!("--- Model4: bus interfaces (Figure 8) ---");
    let refined4 = refine(&spec, &graph, &alloc, &part, ImplModel::Model4)?;
    let text4 = printer::print(&refined4.spec);
    for iface in &refined4.architecture.interfaces {
        println!(
            "interface {} serves {} and masters {}",
            iface.name, iface.serves_bus, iface.masters_bus
        );
        print_behavior(&text4, &iface.name);
    }
    Ok(())
}

/// Prints the lines of one `behavior <name> ... { ... }` block.
fn print_behavior(text: &str, name: &str) {
    print_block(text, &format!("behavior {name} "));
}

/// Prints the lines of one `subroutine <name>(...) { ... }` block.
fn print_subroutine(text: &str, name: &str) {
    print_block(text, &format!("subroutine {name}("));
}

fn print_block(text: &str, header: &str) {
    let mut depth = 0usize;
    let mut inside = false;
    for line in text.lines() {
        if !inside && line.trim_start().starts_with(header) {
            inside = true;
        }
        if inside {
            println!("{line}");
            depth += line.matches('{').count();
            depth = depth.saturating_sub(line.matches('}').count());
            if depth == 0 {
                println!();
                return;
            }
        }
    }
}
