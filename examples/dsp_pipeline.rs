//! The DSP front-end workload end-to-end: manual vs automatic
//! partitioning, implementation-model comparison, and the two synthesis
//! hand-offs (VHDL for the datapath side, C for the control side).
//!
//! Run with: `cargo run --example dsp_pipeline`

use modref::core::{figure9_rates, refine, ImplModel};
use modref::estimate::LifetimeConfig;
use modref::graph::AccessGraph;
use modref::partition::algorithms::{GroupMigration, Partitioner};
use modref::partition::{partition_cost, CostConfig};
use modref::sim::Simulator;
use modref::spec::{cgen, printer, vhdl};
use modref::workloads::{dsp_partition, dsp_spec, medical_allocation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = dsp_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let cfg = LifetimeConfig::default();

    let original = Simulator::new(&spec).run()?;
    println!(
        "dsp pipeline: {} behaviors, {} variables, {} channels; detect_flag = {:?}, energy = {:?}",
        spec.behavior_count(),
        spec.variable_count(),
        graph.data_channel_count(),
        original.var_by_name("detect_flag"),
        original.var_by_name("energy"),
    );

    // Manual partition (datapath on the ASIC) vs group migration.
    let manual = dsp_partition(&spec, &alloc);
    let auto = GroupMigration::new(8).partition(&spec, &graph, &alloc, &CostConfig::default());
    for (name, part) in [("manual", &manual), ("auto (group migration)", &auto)] {
        let cost = partition_cost(&spec, &graph, &alloc, part, &CostConfig::default());
        let (locals, globals) = part.classify_all(&spec, &graph);
        println!(
            "\n== {name}: cut {:.0} bits, {} local / {} global ==",
            cost.cut_bits,
            locals.len(),
            globals.len()
        );
        for model in ImplModel::ALL {
            let rates = figure9_rates(&spec, &graph, &alloc, part, model, &cfg)?;
            let refined = refine(&spec, &graph, &alloc, part, model)?;
            let sim = Simulator::new(&refined.spec).run()?;
            let ok = original.diff_common_vars(&sim).is_empty();
            println!(
                "  {model}: max bus {:>7.1} Mbit/s over {} buses, {} lines, {}",
                rates.max_rate(),
                rates.bus_count(),
                printer::line_count(&refined.spec),
                if ok { "equivalent" } else { "DIVERGES" }
            );
        }
    }

    // Synthesis hand-offs from the manually partitioned Model2 design.
    let refined = refine(&spec, &graph, &alloc, &manual, ImplModel::Model2)?;
    let vhdl_text = vhdl::export(&refined.spec)?;
    let c_text = cgen::export_software(&refined.spec, "Dsp")?;
    println!(
        "\nhand-offs: {} lines of VHDL (hardware), {} lines of C (software)",
        vhdl_text.lines().count(),
        c_text.lines().count()
    );
    Ok(())
}
