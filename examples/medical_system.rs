//! The paper's evaluation workload end-to-end: the medical bladder-volume
//! system (16 behaviors, 14 variables, 52 channels) is partitioned three
//! ways (Design1/2/3) and refined under all four implementation models;
//! for each combination the per-bus transfer rates and refined-spec sizes
//! are reported — the data behind the paper's Figures 9 and 10.
//!
//! Run with: `cargo run --example medical_system`

use modref::core::{figure9_rates, refine, ImplModel};
use modref::estimate::LifetimeConfig;
use modref::graph::AccessGraph;
use modref::spec::printer;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let cfg = LifetimeConfig::default();

    println!(
        "medical system: {} behaviors, {} variables, {} data-access channels, {} printed lines",
        spec.behavior_count(),
        spec.variable_count(),
        graph.data_channel_count(),
        printer::line_count(&spec)
    );

    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let (locals, globals) = part.classify_all(&spec, &graph);
        println!(
            "\n== {} — {} local / {} global variables ==",
            design.label(),
            locals.len(),
            globals.len()
        );
        for model in ImplModel::ALL {
            let rates = figure9_rates(&spec, &graph, &alloc, &part, model, &cfg)?;
            let refined = refine(&spec, &graph, &alloc, &part, model)?;
            let cells: Vec<String> = rates
                .iter()
                .map(|(bus, rate)| format!("{bus}={rate:.0}"))
                .collect();
            println!(
                "  {model}: rates [{}] Mbit/s | hot spot {} | {} lines, {} memories, {} arbiters",
                cells.join(", "),
                rates
                    .hot_spot()
                    .map(|(b, r)| format!("{b} @ {r:.0}"))
                    .unwrap_or_else(|| "-".into()),
                printer::line_count(&refined.spec),
                refined.architecture.memory_count(),
                refined.architecture.arbiters.len(),
            );
        }
    }
    Ok(())
}
