//! Quickstart: build a small specification, partition it over a
//! processor + ASIC, refine it to an implementation model, and verify by
//! simulation that the refined model behaves identically.
//!
//! Run with: `cargo run --example quickstart`

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::partition::{Allocation, Partition};
use modref::sim::Simulator;
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, printer, stmt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny functional model: the paper's Figure 1 shape.
    //    A runs, then (x > 1 ? B : C); B and the variable x will live on
    //    the ASIC, A and C stay on the processor.
    let mut b = SpecBuilder::new("quickstart");
    let x = b.var_int("x", 16, 0);
    let a = b.leaf("A", vec![stmt::assign(x, expr::lit(5))]);
    let bb = b.leaf(
        "B",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(37)))],
    );
    let c = b.leaf("C", vec![stmt::assign(x, expr::lit(-1))]);
    let arcs = vec![
        b.arc_when(a, expr::gt(expr::var(x), expr::lit(1)), bb),
        b.arc_when(a, expr::le(expr::var(x), expr::lit(1)), c),
        b.arc_complete(bb),
        b.arc_complete(c),
    ];
    let top = b.seq("Top", vec![a, bb, c], arcs);
    let spec = b.finish(top)?;

    println!("=== original specification ===");
    println!("{}", printer::print(&spec));

    // 2. Derive the access graph (channels are implicit in the spec).
    let graph = AccessGraph::derive(&spec);
    println!(
        "derived {} data channels, {} control channels",
        graph.data_channels().count(),
        graph.control_channels().count()
    );

    // 3. Allocate components and partition: B and x to the ASIC.
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").expect("allocated");
    let asic = alloc.by_name("ASIC").expect("allocated");
    let mut part = Partition::with_default(proc);
    part.assign_behavior(bb, asic);
    part.assign_var(x, asic);

    // 4. Refine to Model2 (local + single-port global memory).
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model2)?;
    println!("=== refined specification (Model2) ===");
    println!("{}", printer::print(&refined.spec));
    println!("architecture:");
    for bus in &refined.architecture.buses {
        println!(
            "  {}: {} master(s), {} slave(s), {} pins",
            bus.name,
            bus.masters.len(),
            bus.slaves.len(),
            bus.pins()
        );
    }
    for mem in &refined.architecture.memories {
        println!(
            "  {}: {} words, {} bits, {} port(s)",
            mem.name,
            mem.words,
            mem.bits,
            mem.ports()
        );
    }

    // 5. Verify functional equivalence by simulation.
    let original = Simulator::new(&spec).run()?;
    let result = Simulator::new(&refined.spec).run()?;
    let diffs = original.diff_common_vars(&result);
    println!(
        "original x = {:?}, refined x = {:?}, diffs = {:?}",
        original.var_by_name("x"),
        result.var_by_name("x"),
        diffs
    );
    assert!(diffs.is_empty(), "refined model must match the original");
    println!("refined model is functionally equivalent to the original");
    Ok(())
}
