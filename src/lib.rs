//! Umbrella crate re-exporting the modref toolchain.
pub use modref_analyze as analyze;
pub use modref_core as core;
pub use modref_estimate as estimate;
pub use modref_graph as graph;
pub use modref_obs as obs;
pub use modref_partition as partition;
pub use modref_sim as sim;
pub use modref_spec as spec;
pub use modref_workloads as workloads;
