//! The paper's illustrative figures, reproduced as executable tests.
//!
//! Each test rebuilds the situation one of the paper's figures depicts
//! and checks both the structure of the refined specification and its
//! simulated behavior.

use modref::core::{refine, ImplModel};
use modref::graph::{AccessGraph, ChannelKind};
use modref::partition::{Allocation, Partition};
use modref::sim::Simulator;
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, stmt, Spec, Stmt};

/// Figure 1: behaviors A, B, C with guarded arcs `A:(x>1,B)`, `A:(x<1,C)`
/// and a shared variable x; B and x move to the ASIC.
fn figure1() -> (Spec, Allocation, Partition) {
    let mut b = SpecBuilder::new("fig1");
    let x = b.var_int("x", 16, 0);
    let a = b.leaf("A", vec![stmt::assign(x, expr::lit(5))]);
    let bb = b.leaf(
        "B",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(100)))],
    );
    let c = b.leaf("C", vec![stmt::assign(x, expr::lit(-7))]);
    let arcs = vec![
        b.arc_when(a, expr::gt(expr::var(x), expr::lit(1)), bb),
        b.arc_when(a, expr::lt(expr::var(x), expr::lit(1)), c),
        b.arc_complete(bb),
        b.arc_complete(c),
    ];
    let top = b.seq("Top", vec![a, bb, c], arcs);
    let spec = b.finish(top).expect("valid");
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let asic = alloc.by_name("ASIC").unwrap();
    let mut part = Partition::with_default(proc);
    part.assign_behavior(spec.behavior_by_name("B").unwrap(), asic);
    part.assign_var(spec.variable_by_name("x").unwrap(), asic);
    (spec, alloc, part)
}

#[test]
fn figure1_access_graph_has_the_paper_channels() {
    let (spec, _, _) = figure1();
    let graph = AccessGraph::derive(&spec);
    // Control arcs A->B and A->C.
    assert_eq!(graph.control_channels().count(), 2);
    // x is accessed by A (write), B (read+write), C (write) and the
    // composite's guards (read).
    let x = spec.variable_by_name("x").unwrap();
    assert_eq!(graph.behaviors_accessing(x).len(), 4);
}

#[test]
fn figure1d_refinement_inserts_bctrl_and_memory() {
    let (spec, alloc, part) = figure1();
    let graph = AccessGraph::derive(&spec);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
    // The refined spec matches Figure 1(d): B_CTRL on the processor side,
    // B_NEW on the ASIC, x inside a memory module.
    assert!(refined.spec.behavior_by_name("B_CTRL").is_some());
    let bnew = refined.spec.behavior_by_name("B_NEW").expect("B_NEW");
    assert!(refined.spec.behavior(bnew).is_server());
    let x = refined.spec.variable_by_name("x").expect("x survives");
    let scope = refined.spec.variable(x).scope().expect("x is in a memory");
    assert!(refined.spec.behavior(scope).name().contains("mem"));
    // Simulated result matches (x = 105 via the B branch).
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("x"), Some(105));
}

/// Figure 4(b) vs 4(c): a moved leaf uses the one-level loop scheme; a
/// moved composite gets the three-child sequential wrapper.
#[test]
fn figure4_schemes_choose_by_leafness() {
    // Leaf case.
    let (spec, alloc, part) = figure1();
    let graph = AccessGraph::derive(&spec);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
    let bnew = refined.spec.behavior_by_name("B_NEW").unwrap();
    assert!(
        refined.spec.behavior(bnew).is_leaf(),
        "moved leaf keeps one level of hierarchy (Figure 4(b))"
    );
    match refined.spec.behavior(bnew).body().unwrap() {
        [Stmt::Loop { .. }] => {}
        other => panic!("expected a single wrapping loop, got {} stmts", other.len()),
    }

    // Composite case.
    let mut b = SpecBuilder::new("fig4c");
    let x = b.var_int("x", 16, 0);
    let s1 = b.leaf("S1", vec![stmt::assign(x, expr::lit(3))]);
    let s2 = b.leaf(
        "S2",
        vec![stmt::assign(x, expr::mul(expr::var(x), expr::lit(5)))],
    );
    let moved = b.seq_in_order("Moved", vec![s1, s2]);
    let after = b.leaf(
        "After",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
    );
    let top = b.seq_in_order("Top", vec![moved, after]);
    let spec = b.finish(top).expect("valid");
    let graph = AccessGraph::derive(&spec);
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let asic = alloc.by_name("ASIC").unwrap();
    let mut part = Partition::with_default(proc);
    part.assign_behavior(spec.behavior_by_name("Moved").unwrap(), asic);
    part.assign_behavior(spec.behavior_by_name("S1").unwrap(), asic);
    part.assign_behavior(spec.behavior_by_name("S2").unwrap(), asic);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
    let bnew = refined.spec.behavior_by_name("Moved_NEW").expect("wrapper");
    assert!(
        !refined.spec.behavior(bnew).is_leaf(),
        "moved composite needs the two-level scheme (Figure 4(c))"
    );
    assert_eq!(refined.spec.behavior(bnew).children().len(), 3);
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("x"), Some(16)); // 3*5 + 1
}

/// Figure 5: `x := x + 5` with x in a memory becomes
/// receive-compute-send, and a Memory behavior serves the bus.
#[test]
fn figure5_data_refinement_substitutes_protocols() {
    let mut b = SpecBuilder::new("fig5");
    let x = b.var_int("x", 16, 10);
    let bb = b.leaf(
        "B",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(5)))],
    );
    let top = b.seq_in_order("Top", vec![bb]);
    let spec = b.finish(top).expect("valid");
    let graph = AccessGraph::derive(&spec);
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let asic = alloc.by_name("ASIC").unwrap();
    let mut part = Partition::with_default(proc);
    part.assign_var(spec.variable_by_name("x").unwrap(), asic);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");

    // The protocol subroutines of Figure 5(d) exist.
    assert!(refined
        .spec
        .subroutines()
        .any(|(_, s)| s.name().starts_with("MST_receive")));
    assert!(refined
        .spec
        .subroutines()
        .any(|(_, s)| s.name().starts_with("MST_send")));
    // B's body is now receive; compute-on-tmp; send.
    let b_id = refined.spec.behavior_by_name("B").unwrap();
    let body = refined.spec.behavior(b_id).body().unwrap();
    assert_eq!(body.len(), 3);
    assert!(matches!(body[0], Stmt::Call { .. }));
    assert!(matches!(body[2], Stmt::Call { .. }));
    // A temporary was introduced.
    assert!(refined.spec.variable_by_name("B_tmp_x").is_some());
    // And the behavior is preserved: x = 15.
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("x"), Some(15));
}

/// Figure 6: guards between sub-behaviors fetch through protocols at the
/// end of the predecessors.
#[test]
fn figure6_nonleaf_data_refinement() {
    let mut b = SpecBuilder::new("fig6");
    let x = b.var_int("x", 16, 0);
    let y = b.var_int("y", 16, 0);
    let b1 = b.leaf("B1", vec![stmt::assign(x, expr::lit(4))]);
    let b2 = b.leaf(
        "B2",
        vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(3)))],
    );
    let b3 = b.leaf("B3", vec![stmt::assign(y, expr::lit(99))]);
    let arcs = vec![
        b.arc_when(b1, expr::gt(expr::var(x), expr::lit(1)), b2),
        b.arc_when(b2, expr::gt(expr::var(x), expr::lit(5)), b3),
        b.arc_complete(b3),
    ];
    let top = b.seq("B", vec![b1, b2, b3], arcs);
    let spec = b.finish(top).expect("valid");
    let graph = AccessGraph::derive(&spec);
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let asic = alloc.by_name("ASIC").unwrap();
    let mut part = Partition::with_default(proc);
    part.assign_var(spec.variable_by_name("x").unwrap(), asic);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");

    // A guard temporary for x exists and the predecessors fetch into it.
    assert!(refined.spec.variable_by_name("B_tmp_x").is_some());
    for pred in ["B1", "B2"] {
        let id = refined.spec.behavior_by_name(pred).unwrap();
        let body = refined.spec.behavior(id).body().unwrap();
        assert!(
            matches!(body.last(), Some(Stmt::Call { .. })),
            "{pred} must end with a guard fetch"
        );
    }
    // Execution takes the 4 -> 7 -> y=99 path.
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("x"), Some(7));
    assert_eq!(r.var_by_name("y"), Some(99));
}

/// Figure 7: two behaviors share a bus; an arbiter with per-master
/// request/acknowledge lines is inserted and the result is race-free.
#[test]
fn figure7_arbiter_insertion() {
    let mut b = SpecBuilder::new("fig7");
    let x = b.var_int("x", 16, 1);
    let y = b.var_int("y", 16, 2);
    let out1 = b.var_int("out1", 16, 0);
    let out2 = b.var_int("out2", 16, 0);
    let b1 = b.leaf("B1", vec![stmt::assign(out1, expr::var(x))]);
    let b2 = b.leaf("B2", vec![stmt::assign(out2, expr::var(y))]);
    let top = b.concurrent("Top", vec![b1, b2]);
    let spec = b.finish(top).expect("valid");
    let graph = AccessGraph::derive(&spec);
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let part = Partition::with_default(proc);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");

    // One bus, two leaf masters, arbiter present, request lines exist.
    assert_eq!(refined.architecture.bus_count(), 1);
    let bus = &refined.architecture.buses[0];
    assert!(bus.masters.len() >= 2);
    assert_eq!(refined.architecture.arbiters.len(), 1);
    assert!(refined.spec.signal_by_name("b1_req_0").is_some());
    assert!(refined.spec.signal_by_name("b1_ack_0").is_some());
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("out1"), Some(1));
    assert_eq!(r.var_by_name("out2"), Some(2));
}

/// Figure 8: B1 on component 1 reads y from component 2's local memory
/// through the three-bus interface chain.
#[test]
fn figure8_bus_interface_chain() {
    let mut b = SpecBuilder::new("fig8");
    let y = b.var_int("y", 16, 44);
    let got = b.var_int("got", 16, 0);
    let b1 = b.leaf("B1", vec![stmt::assign(got, expr::var(y))]);
    let b2 = b.leaf(
        "B2",
        vec![stmt::assign(y, expr::add(expr::var(y), expr::lit(0)))],
    );
    let top = b.seq_in_order("Top", vec![b1, b2]);
    let spec = b.finish(top).expect("valid");
    let graph = AccessGraph::derive(&spec);
    let alloc = Allocation::proc_plus_asic();
    let proc = alloc.by_name("PROC").unwrap();
    let asic = alloc.by_name("ASIC").unwrap();
    let mut part = Partition::with_default(proc);
    part.assign_behavior(spec.behavior_by_name("B2").unwrap(), asic);
    part.assign_var(spec.variable_by_name("y").unwrap(), asic);
    part.assign_var(spec.variable_by_name("got").unwrap(), proc);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model4).expect("refines");

    // Both interface directions exist (PROC reads remote, ASIC's B2 is
    // local to y so only one chain is strictly needed; at least the
    // outbound + inbound pair for the PROC -> ASIC path).
    assert!(refined.architecture.interfaces.len() >= 2);
    let r = Simulator::new(&refined.spec).run().expect("runs");
    assert_eq!(r.var_by_name("got"), Some(44));
    // The remote read's channel is carried by three buses.
    let remote_chain = refined
        .channel_buses
        .values()
        .find(|buses| buses.len() == 3)
        .expect("a three-hop chain exists");
    assert_eq!(remote_chain.len(), 3);
    // Guard against misclassification: a local channel stays one-hop.
    assert!(refined.channel_buses.values().any(|b| b.len() == 1));
    let _ = graph
        .data_channels()
        .map(|c| c.kind())
        .filter(|k| matches!(k, ChannelKind::Data { .. }))
        .count();
}
