//! Dynamic-profile cross-checks: the simulator's activation counts
//! validate the static structure the estimators assume, on both the
//! original and the refined medical system.

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::sim::Simulator;
use modref::workloads::medical::CYCLES;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

#[test]
fn medical_session_children_activate_once_per_cycle() {
    let spec = medical_spec();
    let r = Simulator::new(&spec).run().expect("completes");
    // The Session composite loops CYCLES times over its four children.
    for phase in ["Acquire", "Process", "Compute", "Output"] {
        assert_eq!(
            r.activations_of(phase),
            Some(CYCLES as u64),
            "{phase} should run once per cycle"
        );
    }
    // Their leaves activate once per parent activation.
    for leaf in [
        "Excite", "Sample", "Lowpass", "Detect", "Display", "Alarm", "Log",
    ] {
        assert_eq!(r.activations_of(leaf), Some(CYCLES as u64), "{leaf}");
    }
    // Init runs once.
    assert_eq!(r.activations_of("Init"), Some(1));
}

#[test]
fn refinement_preserves_the_activation_profile_of_copied_behaviors() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let original = Simulator::new(&spec).run().expect("original");
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model2).expect("refines");
    let result = Simulator::new(&refined.spec).run().expect("refined runs");
    // Behaviors that survive under their original names (unmoved leaves
    // and composites) keep their activation counts.
    for name in [
        "Init", "Compute", "Distance", "Volume", "Output", "Display", "Alarm", "Log",
    ] {
        assert_eq!(
            result.activations_of(name),
            original.activations_of(name),
            "{name} activation count changed under refinement"
        );
    }
    // Moved behaviors execute via their wrappers the same number of
    // times: each B_CTRL activation drives one body execution.
    assert_eq!(
        result.activations_of("Acquire_CTRL"),
        original.activations_of("Acquire"),
        "the control stub activates once per original activation"
    );
}

#[test]
fn server_processes_activate_exactly_once() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
    let result = Simulator::new(&refined.spec).run().expect("runs");
    // Memories and arbiters are spawned once and loop forever.
    for (_, b) in refined.spec.behaviors() {
        if b.is_server() && !b.name().contains("_NEW") {
            assert_eq!(
                result.activations_of(b.name()),
                Some(1),
                "server {} should spawn exactly once",
                b.name()
            );
        }
    }
}
