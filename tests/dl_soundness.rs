//! Soundness of the deadlock/liveness lint family (`DL01`–`DL05`).
//!
//! The static analyzer promises: **every DL-flagged spec really fails**
//! — under all three scheduler kernels it either deadlocks or exhausts
//! the step budget, never completes. And the contrapositive guard:
//! every shipped workload is DL-clean, so the lints carry no false
//! positives on real designs.
//!
//! Three layers of evidence:
//!
//! 1. every named workload is DL-clean as shipped;
//! 2. tampering each workload into each DL defect is (a) caught
//!    statically with the expected code and (b) fatal dynamically on
//!    every kernel — the flagged ⇒ fails implication, instantiated;
//! 3. a randomized property over `SynthSpec` designs: generated specs
//!    stay clean, and a seed-rotated tamper of each keeps the
//!    implication honest on machine-made structure too.
//!
//! A final end-to-end check drives the `explore --verify` static gate
//! and asserts the `verify.static_deadlock` counter actually counts.

use modref::analyze::deadlock_lints;
use modref::core::api::{Codesign, ExploreOpts, VerifyOpts};
use modref::obs::{self, ClockMode, Event};
use modref::sim::{SimConfig, SimError, SimKernel, Simulator};
use modref::spec::expr::{add, eq, lit, signal, var};
use modref::spec::{Behavior, BehaviorId, BehaviorKind, DataType, LValue, Spec, Stmt, WaitCond};
use modref::workloads::{named_spec, SynthConfig, SynthSpec, WORKLOAD_NAMES};
use modref_rng::Rng;

const KERNELS: [SimKernel; 3] = [
    SimKernel::RoundRobin,
    SimKernel::EventDriven,
    SimKernel::Compiled,
];

/// Sorted, deduplicated DL codes the analyzer reports for `spec`.
fn dl_codes(spec: &Spec) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = deadlock_lints(spec, None, &[])
        .iter()
        .map(|d| d.code)
        .filter(|c| c.starts_with("DL"))
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

/// Asserts the spec fails on every kernel: `Deadlock` or
/// `StepLimitExceeded`, never completion. `max_steps` bounds the spin
/// cases; deadlock cases stop as soon as the live processes drain.
fn assert_never_completes(spec: &Spec, max_steps: u64, ctx: &str) {
    for kernel in KERNELS {
        let config = SimConfig {
            kernel,
            max_steps,
            ..SimConfig::default()
        };
        match Simulator::with_config(spec, config).run() {
            Err(SimError::Deadlock { .. }) | Err(SimError::StepLimitExceeded { .. }) => {}
            Ok(r) => panic!(
                "{ctx}: {kernel:?} completed at t={} despite DL flag — unsound lint",
                r.time
            ),
            Err(e) => panic!("{ctx}: {kernel:?} failed for the wrong reason: {e}"),
        }
    }
}

/// Grafts extra behaviors next to the existing top: the new top is a
/// concurrent composite running the old design and the tampered leaves
/// side by side, so the original workload still makes all its progress.
fn graft(base: &Spec, build: impl FnOnce(&mut Spec) -> Vec<BehaviorId>) -> Spec {
    let mut spec = base.clone();
    let mut children = vec![spec.top()];
    children.extend(build(&mut spec));
    let top = spec.add_behavior(Behavior::new(
        "tamper_top",
        BehaviorKind::Concurrent { children },
    ));
    spec.set_top(top);
    spec
}

/// DL01: the only write drives the gate to 1, the wait demands 2.
fn tamper_dl01(base: &Spec) -> Spec {
    graft(base, |s| {
        let gate = s.add_signal("tamper_gate", DataType::Int { width: 8 }, 0);
        let body = vec![
            Stmt::SignalSet {
                signal: gate,
                value: lit(1),
            },
            Stmt::Wait(WaitCond::Until(eq(signal(gate), lit(2)))),
        ];
        vec![s.add_behavior(Behavior::new("tamper_dl01", BehaviorKind::Leaf { body }))]
    })
}

/// DL02: wait on a signal nothing ever writes.
fn tamper_dl02(base: &Spec) -> Spec {
    graft(base, |s| {
        let ghost = s.add_signal("tamper_ghost", DataType::Bit, 0);
        let body = vec![Stmt::Wait(WaitCond::Until(signal(ghost)))];
        vec![s.add_behavior(Behavior::new("tamper_dl02", BehaviorKind::Leaf { body }))]
    })
}

/// DL03: a zero-time spin loop — no wait, no delay, no exit.
fn tamper_dl03(base: &Spec) -> Spec {
    graft(base, |s| {
        let spin = s.add_variable("tamper_spin", DataType::Int { width: 16 }, 0, None);
        let body = vec![Stmt::Loop {
            body: vec![Stmt::Assign {
                target: LValue::Var(spin),
                value: add(var(spin), lit(1)),
            }],
        }];
        vec![s.add_behavior(Behavior::new("tamper_dl03", BehaviorKind::Leaf { body }))]
    })
}

/// DL04: two leaves, each waiting on a signal only the other would set
/// after its own wait — a circular wait.
fn tamper_dl04(base: &Spec) -> Spec {
    graft(base, |s| {
        let a = s.add_signal("tamper_a", DataType::Bit, 0);
        let b = s.add_signal("tamper_b", DataType::Bit, 0);
        let p1 = vec![
            Stmt::Wait(WaitCond::Until(signal(b))),
            Stmt::SignalSet {
                signal: a,
                value: lit(1),
            },
        ];
        let p2 = vec![
            Stmt::Wait(WaitCond::Until(signal(a))),
            Stmt::SignalSet {
                signal: b,
                value: lit(1),
            },
        ];
        vec![
            s.add_behavior(Behavior::new("tamper_p1", BehaviorKind::Leaf { body: p1 })),
            s.add_behavior(Behavior::new("tamper_p2", BehaviorKind::Leaf { body: p2 })),
        ]
    })
}

/// DL05: a four-phase handshake whose master never drops its request —
/// the arbiter grants, then both sides block on the missing release.
fn tamper_dl05(base: &Spec) -> Spec {
    graft(base, |s| {
        let req = s.add_signal("tamper_req", DataType::Bit, 0);
        let ack = s.add_signal("tamper_ack", DataType::Bit, 0);
        let master = vec![
            Stmt::SignalSet {
                signal: req,
                value: lit(1),
            },
            Stmt::Wait(WaitCond::Until(eq(signal(ack), lit(1)))),
            // release of `req` missing here — the defect
            Stmt::Wait(WaitCond::Until(eq(signal(ack), lit(0)))),
        ];
        let server = vec![Stmt::Loop {
            body: vec![
                Stmt::Wait(WaitCond::Until(eq(signal(req), lit(1)))),
                Stmt::SignalSet {
                    signal: ack,
                    value: lit(1),
                },
                Stmt::Wait(WaitCond::Until(eq(signal(req), lit(0)))),
                Stmt::SignalSet {
                    signal: ack,
                    value: lit(0),
                },
            ],
        }];
        vec![
            s.add_behavior(Behavior::new(
                "tamper_master",
                BehaviorKind::Leaf { body: master },
            )),
            s.add_behavior(Behavior::new_server(
                "tamper_arbiter",
                BehaviorKind::Leaf { body: server },
            )),
        ]
    })
}

/// `(expected code, tamper, step budget)` — the spin case needs a small
/// budget because it *consumes* its whole limit; the deadlock cases
/// halt early on their own.
type Tamper = (&'static str, fn(&Spec) -> Spec, u64);

const TAMPERS: [Tamper; 5] = [
    ("DL01", tamper_dl01, 5_000_000),
    ("DL02", tamper_dl02, 5_000_000),
    ("DL03", tamper_dl03, 250_000),
    ("DL04", tamper_dl04, 5_000_000),
    ("DL05", tamper_dl05, 5_000_000),
];

#[test]
fn shipped_workloads_are_dl_clean() {
    for name in WORKLOAD_NAMES {
        let spec = named_spec(name).expect("known workload");
        let codes = dl_codes(&spec);
        assert!(codes.is_empty(), "workload `{name}` flagged: {codes:?}");
    }
}

#[test]
fn tampered_workloads_are_flagged_and_never_complete() {
    for name in WORKLOAD_NAMES {
        let base = named_spec(name).expect("known workload");
        for (code, tamper, max_steps) in TAMPERS {
            let bad = tamper(&base);
            let codes = dl_codes(&bad);
            assert!(
                codes.contains(&code),
                "{name}+{code}: expected {code}, analyzer said {codes:?}"
            );
            assert_never_completes(&bad, max_steps, &format!("{name}+{code}"));
        }
    }
}

/// The soundness property on machine-generated structure: synthesized
/// specs are DL-clean by construction (they never block on signals),
/// and after a seed-rotated tamper the flagged ⇒ fails implication
/// holds on every kernel.
#[test]
fn random_specs_uphold_flagged_implies_fails() {
    let mut rng = Rng::seed_from_u64(0x0d15_ea5e);
    for round in 0..25u64 {
        let seed = rng.gen_range(0..1u64 << 48);
        let config = SynthConfig {
            leaves: rng.gen_range(2..6usize),
            vars: rng.gen_range(2..6usize),
            stmts_per_leaf: rng.gen_range(1..5usize),
            fanout: rng.gen_range(2..4usize),
            loop_percent: rng.gen_range(0..60u32),
        };
        let clean = SynthSpec::generate(seed, &config).spec;
        let codes = dl_codes(&clean);
        assert!(
            codes.is_empty(),
            "synth seed {seed}: clean spec flagged {codes:?}"
        );

        let (code, tamper, max_steps) = TAMPERS[(round % 5) as usize];
        let bad = tamper(&clean);
        let codes = dl_codes(&bad);
        assert!(
            codes.contains(&code),
            "synth seed {seed}+{code}: analyzer said {codes:?}"
        );
        assert_never_completes(&bad, max_steps, &format!("synth seed {seed}+{code}"));
    }
}

fn counter_value(trace: &obs::Trace, name: &str) -> u64 {
    trace
        .events
        .iter()
        .find_map(|e| match e {
            Event::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or_else(|| panic!("counter `{name}` missing from trace"))
}

/// End-to-end: explore a DL-tampered medical system and verify its
/// Pareto front — the static gate must reject every candidate × model
/// with the DL code and bump `verify.static_deadlock`, spending zero
/// simulation time on provably-dead candidates.
#[test]
fn verify_gate_counts_static_deadlocks() {
    let bad = tamper_dl02(&modref::workloads::medical_spec());
    obs::init(ClockMode::Wall);
    let cd = Codesign::from_spec(bad);
    let exploration = cd
        .explore(&ExploreOpts::new().with_seeds(1))
        .expect("exploration succeeds");
    let verification = cd
        .verify(&exploration, &VerifyOpts::new())
        .expect("verification runs");
    let trace = obs::shutdown();

    assert!(!verification.records.is_empty());
    for record in &verification.records {
        assert!(!record.equivalent);
        // On the raw spec the ghost wait is DL02; refinement may wrap
        // the grafted leaf in control handshakes, in which case the
        // dead wait surfaces as the circular wait it induces (DL04).
        // Either way it must be a *static* DL rejection.
        assert!(
            record.detail.contains("static analysis rejected") && record.detail.contains("DL"),
            "expected a DL static rejection, got: {}",
            record.detail
        );
    }
    let rejected = counter_value(&trace, "verify.static_deadlock");
    assert!(
        rejected >= verification.records.len() as u64,
        "verify.static_deadlock = {rejected}, want >= {}",
        verification.records.len()
    );
}
