//! Observability integration: a traced exploration of the medical system
//! emits well-formed JSONL with non-trivial cache-hit counters, and —
//! the determinism guard — aggregated metrics are identical whether the
//! exploration ran on one thread or many.

use std::sync::{Mutex, MutexGuard, PoisonError};

use modref::core::api::{Codesign, ExploreOpts};
use modref::obs::{self, ClockMode, Event};
use modref::workloads::medical_spec;

/// The recorder is process-global; tests that flip it must not overlap.
static RECORDER: Mutex<()> = Mutex::new(());

fn hold() -> MutexGuard<'static, ()> {
    RECORDER.lock().unwrap_or_else(PoisonError::into_inner)
}

fn explore_medical(seeds: u64, threads: usize) {
    let cd = Codesign::from_spec(medical_spec());
    let result = cd
        .explore(&ExploreOpts::new().with_seeds(seeds).with_threads(threads))
        .expect("exploration succeeds");
    assert!(!result.points.is_empty());
}

fn counter_value(trace: &obs::Trace, name: &str) -> u64 {
    trace
        .events
        .iter()
        .find_map(|e| match e {
            Event::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
        .unwrap_or_else(|| panic!("counter `{name}` missing from trace"))
}

#[test]
fn traced_explore_emits_wellformed_jsonl_with_cache_hits() {
    let _l = hold();
    obs::init(ClockMode::Wall);
    explore_medical(2, 2);
    let trace = obs::shutdown();

    // The JSONL sink round-trips the whole trace exactly.
    let text = obs::jsonl::write(&trace);
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    let back = obs::jsonl::parse(&text).expect("trace parses back");
    assert_eq!(trace.events, back.events);

    // Span structure: one explore root with per-seed job children under it.
    let explore_id = trace
        .events
        .iter()
        .find_map(|e| match e {
            Event::Span { name, id, .. } if name == "explore" => Some(*id),
            _ => None,
        })
        .expect("explore span recorded");
    let jobs = trace
        .events
        .iter()
        .filter(|e| {
            matches!(e, Event::Span { name, parent, .. }
                if name == "explore.job" && *parent == explore_id)
        })
        .count();
    assert!(jobs >= 5, "expected >=5 explore jobs, saw {jobs}");

    // The warm lifetime table makes cache hits real work saved, not an
    // artifact: every job starts from the pre-computed leaf lifetimes.
    let hits = counter_value(&trace, "lifetime.hit");
    let misses = counter_value(&trace, "lifetime.miss");
    assert!(hits > 0, "expected non-zero lifetime cache hits");
    assert!(misses > 0, "warm-up itself must count misses");
    assert!(counter_value(&trace, "cache.move_evals") > 0);
    assert!(counter_value(&trace, "anneal.moves") > 0);

    // The report renderer accepts the trace and summarizes it.
    let rendered = obs::report::render(&trace);
    assert!(rendered.contains("explore"), "{rendered}");
    assert!(rendered.contains("lifetime.hit"), "{rendered}");
}

/// Determinism guard: under the logical clock, the aggregated metrics of
/// a 1-thread and a 4-thread exploration are bit-identical — counters
/// commute, durations are zero, and ids never leak into aggregation.
#[test]
fn aggregated_metrics_identical_across_thread_counts() {
    let _l = hold();

    let metrics_of = |threads: usize| {
        obs::init(ClockMode::Logical);
        explore_medical(2, threads);
        let trace = obs::shutdown();
        trace
            .events
            .into_iter()
            .filter(|e| match e {
                Event::Counter { .. } | Event::Hist { .. } => true,
                // The thread-count gauge *should* differ between runs;
                // every other gauge must match.
                Event::Gauge { name, .. } => name != "explore.threads",
                _ => false,
            })
            .collect::<Vec<_>>()
    };

    let single = metrics_of(1);
    let multi = metrics_of(4);
    assert!(
        single
            .iter()
            .any(|e| matches!(e, Event::Counter { name, value }
            if name == "lifetime.hit" && *value > 0)),
        "sanity: the runs did real work"
    );
    assert_eq!(
        single, multi,
        "aggregated metrics must not depend on thread count"
    );
}
