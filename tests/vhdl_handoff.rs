//! The synthesis hand-off story, end to end: the *functional* medical
//! model cannot export to VHDL (cross-behavior shared variables), while
//! every *refined* implementation model can — data-related refinement
//! made each variable process-local to its memory server.

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::spec::vhdl::{self, VhdlError};
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

#[test]
fn functional_model_is_rejected_refined_models_export() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();

    // The original model shares variables across behaviors... but note:
    // the original medical system is fully sequential (one process), so
    // it exports trivially. The sharing violation appears exactly when
    // behaviors become concurrent without refinement — simulate that by
    // refining (which introduces concurrency) by hand: take the original
    // top and a moved behavior running in parallel. Easiest faithful
    // check: the *refined* spec minus its protocol machinery would share
    // variables; we assert the refined spec passes and that a
    // deliberately shared concurrent spec fails.
    let part = medical_partition(&spec, &alloc, Design::Design1);
    for model in ImplModel::ALL {
        let refined =
            refine(&spec, &graph, &alloc, &part, model).unwrap_or_else(|e| panic!("{model}: {e}"));
        let vhdl_text = vhdl::export(&refined.spec)
            .unwrap_or_else(|e| panic!("{model}: refined spec must export: {e}"));
        assert!(vhdl_text.contains("entity medical_refined is"), "{model}");
        // Every memory module became a process.
        for mem in &refined.architecture.memories {
            assert!(
                vhdl_text.contains(&format!("{}_proc : process", mem.name)),
                "{model}: memory {} missing",
                mem.name
            );
        }
        // Protocol calls were inlined.
        assert!(vhdl_text.contains("-- inlined call: MST_"), "{model}");
    }
}

#[test]
fn unrefined_concurrent_sharing_is_rejected() {
    use modref::spec::builder::SpecBuilder;
    use modref::spec::{expr, stmt};
    let mut b = SpecBuilder::new("bad");
    let x = b.var_int("x", 16, 0);
    let p1 = b.leaf("P1", vec![stmt::assign(x, expr::lit(1))]);
    let p2 = b.leaf("P2", vec![stmt::assign(x, expr::lit(2))]);
    let top = b.concurrent("Top", vec![p1, p2]);
    let spec = b.finish(top).unwrap();
    assert!(matches!(
        vhdl::export(&spec),
        Err(VhdlError::SharedVariable { .. })
    ));
}

#[test]
fn refined_vhdl_mentions_the_full_architecture() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model4).expect("refines");
    let text = vhdl::export(&refined.spec).expect("exports");
    // Bus wires are architecture-level signals.
    assert!(text.contains("signal b1_start : integer := 0;"));
    // Interfaces and arbiters are processes.
    assert!(text.contains("Bus_interface_"));
    assert!(text.contains("Arbiter_"));
    // Moved subtrees run as their own processes (the B_NEW wrappers).
    assert!(text.contains("_NEW_proc : process"));
}
