//! Kernel-equivalence property tests: the event-driven scheduler and the
//! compiled bytecode kernel must be observationally indistinguishable
//! from the reference round-robin scheduler.
//!
//! The event-driven kernel only re-evaluates `wait until` conditions
//! whose sensitivity sets were written, wakes sleepers from a timer heap,
//! and counts pending children instead of rescanning — all pure
//! scheduling-work optimizations. The compiled kernel additionally lowers
//! every behavior to flat bytecode with slot-interned operands, replacing
//! the tree-walking interpreter entirely. These properties pin down that
//! both are *only* that: for the named workloads, for random synthetic
//! specs, and for their Model1–4 refinements (which add the signal
//! handshakes, protocol subroutines, arbiters and server loops the
//! optimizations target), all three kernels must produce identical
//! observable variable values, final time, step counts and — on failing
//! runs — identical deadlock/step-limit verdicts.

use modref_rng::Rng;

use modref::core::{refine, ImplModel};
use modref::partition::Allocation;
use modref::sim::{SimConfig, SimError, SimKernel, SimResult, Simulator};
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, stmt, Spec};
use modref::workloads::{
    dsp_partition, dsp_spec, fig2_partition, fig2_spec, medical_allocation, medical_partition,
    medical_spec, ring_spec, Design, SynthConfig, SynthSpec,
};

fn run_kernel(spec: &Spec, kernel: SimKernel, max_steps: u64) -> Result<SimResult, SimError> {
    Simulator::with_config(
        spec,
        SimConfig {
            max_steps,
            kernel,
            ..SimConfig::default()
        },
    )
    .run()
}

/// All three kernels on the same spec; results (or errors) must agree.
fn assert_kernels_agree(spec: &Spec, max_steps: u64, context: &str) {
    let compiled = run_kernel(spec, SimKernel::Compiled, max_steps);
    let event = run_kernel(spec, SimKernel::EventDriven, max_steps);
    let reference = run_kernel(spec, SimKernel::RoundRobin, max_steps);
    match (compiled, event, reference) {
        (Ok(c), Ok(e), Ok(r)) => {
            // `SimResult` equality covers time, steps, write counts,
            // variables, signals and activations — not scheduler stats.
            assert_eq!(e, r, "{context}: event vs reference diverge");
            assert_eq!(c, e, "{context}: compiled vs event diverge");
            assert!(
                e.sched.cond_evals <= r.sched.cond_evals,
                "{context}: event kernel re-evaluated more conditions \
                 ({} > {}) than the polling reference",
                e.sched.cond_evals,
                r.sched.cond_evals
            );
            // The compiled kernel reuses the event scheduler wholesale,
            // so its work counters must match *exactly*.
            assert_eq!(
                c.sched.cond_evals, e.sched.cond_evals,
                "{context}: compiled cond_evals"
            );
            assert_eq!(
                c.sched.timer_pops, e.sched.timer_pops,
                "{context}: timer_pops"
            );
            assert_eq!(e.sched.wakeups, r.sched.wakeups, "{context}: wakeups");
            assert_eq!(c.sched.wakeups, e.sched.wakeups, "{context}: wakeups");
            assert_eq!(e.sched.rounds, r.sched.rounds, "{context}: rounds");
            assert_eq!(c.sched.rounds, e.sched.rounds, "{context}: rounds");
            // One instruction per micro-step, and at least one dispatch.
            assert_eq!(c.sched.instrs, c.steps, "{context}: instrs == steps");
            assert!(c.sched.dispatches > 0, "{context}: dispatches counted");
        }
        (Err(c), Err(e), Err(r)) => {
            assert_eq!(e, r, "{context}: event vs reference verdicts diverge");
            assert_eq!(c, e, "{context}: compiled vs event verdicts diverge");
        }
        (compiled, event, reference) => panic!(
            "{context}: kernels disagree on success — compiled: {compiled:?}, \
             event: {event:?}, reference: {reference:?}"
        ),
    }
}

fn small_config(rng: &mut Rng) -> SynthConfig {
    SynthConfig {
        leaves: rng.gen_range(2..6usize),
        vars: rng.gen_range(2..6usize),
        stmts_per_leaf: rng.gen_range(1..5usize),
        fanout: rng.gen_range(2..4usize),
        loop_percent: rng.gen_range(0..60u32),
    }
}

/// Every named workload, original and refined to all four implementation
/// models: the kernels are interchangeable on the specs the benches,
/// examples and exploration paths actually run.
#[test]
fn kernels_agree_on_named_workloads_and_models() {
    let alloc = Allocation::proc_plus_asic();

    let fig2 = fig2_spec();
    let medical = medical_spec();
    let dsp = dsp_spec();
    let cases: Vec<(&str, &Spec)> = vec![("fig2", &fig2), ("medical", &medical), ("dsp", &dsp)];
    for (name, spec) in &cases {
        assert_kernels_agree(spec, 5_000_000, &format!("{name} original"));
        let graph = modref::graph::AccessGraph::derive(spec);
        let part = match *name {
            "fig2" => fig2_partition(spec, &alloc),
            "dsp" => dsp_partition(spec, &alloc),
            _ => medical_partition(spec, &medical_allocation(), Design::Design1),
        };
        for model in ImplModel::ALL {
            let refined = refine(spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("{name} {model}: {e}"));
            assert_kernels_agree(&refined.spec, 5_000_000, &format!("{name} {model}"));
        }
    }

    // The polling worst case the benches time: many concurrent stations
    // blocked on distinct signals, token passed with delays.
    assert_kernels_agree(&ring_spec(8, 12), 5_000_000, "ring8");
}

/// The headline property: across random specs and all four
/// implementation-model refinements, the kernels are interchangeable.
#[test]
fn kernels_agree_on_random_specs_and_refinements() {
    let mut rng = Rng::seed_from_u64(0xE0E0_0001);
    for case in 0..16 {
        let seed = rng.gen_range(0..500u64);
        let cfg = small_config(&mut rng);
        let salt = rng.gen_range(0..2u64);
        let synth = SynthSpec::generate(seed, &cfg);
        assert_kernels_agree(&synth.spec, 5_000_000, &format!("case {case} original"));

        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("case {case} seed {seed} {model}: {e}"));
            assert_kernels_agree(
                &refined.spec,
                5_000_000,
                &format!("case {case} seed {seed} {model}"),
            );
        }
    }
}

/// Step-limit verdicts agree: a zero-time livelock trips the same error
/// in all three kernels.
#[test]
fn kernels_agree_on_step_limit_verdict() {
    let mut b = SpecBuilder::new("spin");
    let x = b.var_int("x", 16, 0);
    let a = b.leaf(
        "A",
        vec![stmt::infinite_loop(vec![stmt::assign(x, expr::lit(1))])],
    );
    let top = b.seq_in_order("Top", vec![a]);
    let spec = b.finish(top).expect("valid");
    let compiled = run_kernel(&spec, SimKernel::Compiled, 1_000);
    let event = run_kernel(&spec, SimKernel::EventDriven, 1_000);
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 1_000);
    assert_eq!(event, reference);
    assert_eq!(compiled, event);
    assert!(matches!(
        compiled,
        Err(SimError::StepLimitExceeded { limit: 1_000 })
    ));
}

/// Deadlock verdicts agree, including the reported time and the list of
/// blocked behaviors: a waiter whose signal is never set deadlocks
/// identically under all three kernels.
#[test]
fn kernels_agree_on_deadlock_verdict() {
    let mut b = SpecBuilder::new("stuck");
    let go = b.signal_bit("go");
    let x = b.var_int("x", 16, 0);
    let waiter = b.leaf(
        "Waiter",
        vec![
            stmt::wait_until(expr::eq(expr::signal(go), expr::lit(1))),
            stmt::assign(x, expr::lit(7)),
        ],
    );
    let worker = b.leaf(
        "Worker",
        vec![stmt::delay(5), stmt::assign(x, expr::lit(1))],
    );
    let top = b.concurrent("Top", vec![waiter, worker]);
    let spec = b.finish(top).expect("valid");
    let compiled = run_kernel(&spec, SimKernel::Compiled, 100_000);
    let event = run_kernel(&spec, SimKernel::EventDriven, 100_000);
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 100_000);
    assert_eq!(event, reference);
    assert_eq!(compiled, event);
    match compiled {
        Err(SimError::Deadlock { time, blocked }) => {
            assert_eq!(time, 5, "worker's delay elapses before the deadlock");
            assert_eq!(blocked, vec!["Top".to_string(), "Waiter".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// A never-woken waiter must not leak unbounded scheduler work: the
/// event-driven and compiled kernels perform zero condition
/// re-evaluations when nothing in the sensitivity set is written, while
/// the polling reference performs one per round.
#[test]
fn event_kernel_skips_unwritten_sensitivities() {
    let mut b = SpecBuilder::new("quiet");
    let go = b.signal_bit("go");
    let x = b.var_int("x", 16, 0);
    let waiter = b.leaf(
        "Waiter",
        vec![stmt::wait_until(expr::eq(expr::signal(go), expr::lit(1)))],
    );
    // A ticker that advances time for a while without touching `go`,
    // then finally releases the waiter.
    let ticker = b.leaf(
        "Ticker",
        vec![
            stmt::for_loop(x, expr::lit(0), expr::lit(50), vec![stmt::delay(1)]),
            stmt::set_signal(go, expr::lit(1)),
        ],
    );
    let top = b.concurrent("Top", vec![waiter, ticker]);
    let spec = b.finish(top).expect("valid");
    let compiled = run_kernel(&spec, SimKernel::Compiled, 100_000).expect("completes");
    let event = run_kernel(&spec, SimKernel::EventDriven, 100_000).expect("completes");
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 100_000).expect("completes");
    assert_eq!(event, reference);
    assert_eq!(compiled, event);
    // Exactly one write to `go`, so exactly one re-evaluation (which
    // succeeds and wakes the waiter) in both sensitivity-driven kernels.
    assert_eq!(event.sched.cond_evals, 1);
    assert_eq!(event.sched.wakeups, 1);
    assert_eq!(compiled.sched.cond_evals, 1);
    assert_eq!(compiled.sched.wakeups, 1);
    // The polling reference re-checked the waiter every round.
    assert!(
        reference.sched.cond_evals > 50,
        "reference should poll each round, got {}",
        reference.sched.cond_evals
    );
}
