//! Kernel-equivalence property tests: the event-driven scheduler must be
//! observationally indistinguishable from the reference round-robin
//! scheduler.
//!
//! The event-driven kernel only re-evaluates `wait until` conditions
//! whose sensitivity sets were written, wakes sleepers from a timer heap,
//! and counts pending children instead of rescanning — all pure
//! scheduling-work optimizations. These properties pin down that they
//! are *only* that: for random synthetic specs and their Model1–4
//! refinements (which add the signal handshakes, protocol subroutines,
//! arbiters and server loops the optimizations target), both kernels
//! must produce identical observable variable values, final time, step
//! counts and — on failing runs — identical deadlock/step-limit
//! verdicts.

use modref_rng::Rng;

use modref::core::{refine, ImplModel};
use modref::partition::Allocation;
use modref::sim::{SimConfig, SimError, SimKernel, SimResult, Simulator};
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, stmt, Spec};
use modref::workloads::{SynthConfig, SynthSpec};

fn run_kernel(spec: &Spec, kernel: SimKernel, max_steps: u64) -> Result<SimResult, SimError> {
    Simulator::with_config(spec, SimConfig { max_steps, kernel }).run()
}

/// Both kernels on the same spec; results (or errors) must agree.
fn assert_kernels_agree(spec: &Spec, max_steps: u64, context: &str) {
    let event = run_kernel(spec, SimKernel::EventDriven, max_steps);
    let reference = run_kernel(spec, SimKernel::RoundRobin, max_steps);
    match (event, reference) {
        (Ok(e), Ok(r)) => {
            // `SimResult` equality covers time, steps, write counts,
            // variables, signals and activations — not scheduler stats.
            assert_eq!(e, r, "{context}: observable results diverge");
            assert!(
                e.sched.cond_evals <= r.sched.cond_evals,
                "{context}: event kernel re-evaluated more conditions \
                 ({} > {}) than the polling reference",
                e.sched.cond_evals,
                r.sched.cond_evals
            );
            assert_eq!(e.sched.wakeups, r.sched.wakeups, "{context}: wakeups");
            assert_eq!(e.sched.rounds, r.sched.rounds, "{context}: rounds");
        }
        (Err(e), Err(r)) => assert_eq!(e, r, "{context}: verdicts diverge"),
        (event, reference) => panic!(
            "{context}: kernels disagree on success — event: {event:?}, reference: {reference:?}"
        ),
    }
}

fn small_config(rng: &mut Rng) -> SynthConfig {
    SynthConfig {
        leaves: rng.gen_range(2..6usize),
        vars: rng.gen_range(2..6usize),
        stmts_per_leaf: rng.gen_range(1..5usize),
        fanout: rng.gen_range(2..4usize),
        loop_percent: rng.gen_range(0..60u32),
    }
}

/// The headline property: across random specs and all four
/// implementation-model refinements, the kernels are interchangeable.
#[test]
fn kernels_agree_on_random_specs_and_refinements() {
    let mut rng = Rng::seed_from_u64(0xE0E0_0001);
    for case in 0..16 {
        let seed = rng.gen_range(0..500u64);
        let cfg = small_config(&mut rng);
        let salt = rng.gen_range(0..2u64);
        let synth = SynthSpec::generate(seed, &cfg);
        assert_kernels_agree(&synth.spec, 5_000_000, &format!("case {case} original"));

        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("case {case} seed {seed} {model}: {e}"));
            assert_kernels_agree(
                &refined.spec,
                5_000_000,
                &format!("case {case} seed {seed} {model}"),
            );
        }
    }
}

/// Step-limit verdicts agree: a zero-time livelock trips the same error
/// in both kernels.
#[test]
fn kernels_agree_on_step_limit_verdict() {
    let mut b = SpecBuilder::new("spin");
    let x = b.var_int("x", 16, 0);
    let a = b.leaf(
        "A",
        vec![stmt::infinite_loop(vec![stmt::assign(x, expr::lit(1))])],
    );
    let top = b.seq_in_order("Top", vec![a]);
    let spec = b.finish(top).expect("valid");
    let event = run_kernel(&spec, SimKernel::EventDriven, 1_000);
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 1_000);
    assert_eq!(event, reference);
    assert!(matches!(
        event,
        Err(SimError::StepLimitExceeded { limit: 1_000 })
    ));
}

/// Deadlock verdicts agree, including the reported time and the list of
/// blocked behaviors: a waiter whose signal is never set deadlocks
/// identically under both kernels.
#[test]
fn kernels_agree_on_deadlock_verdict() {
    let mut b = SpecBuilder::new("stuck");
    let go = b.signal_bit("go");
    let x = b.var_int("x", 16, 0);
    let waiter = b.leaf(
        "Waiter",
        vec![
            stmt::wait_until(expr::eq(expr::signal(go), expr::lit(1))),
            stmt::assign(x, expr::lit(7)),
        ],
    );
    let worker = b.leaf(
        "Worker",
        vec![stmt::delay(5), stmt::assign(x, expr::lit(1))],
    );
    let top = b.concurrent("Top", vec![waiter, worker]);
    let spec = b.finish(top).expect("valid");
    let event = run_kernel(&spec, SimKernel::EventDriven, 100_000);
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 100_000);
    assert_eq!(event, reference);
    match event {
        Err(SimError::Deadlock { time, blocked }) => {
            assert_eq!(time, 5, "worker's delay elapses before the deadlock");
            assert_eq!(blocked, vec!["Top".to_string(), "Waiter".to_string()]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// A never-woken waiter must not leak unbounded scheduler work: the
/// event kernel performs zero condition re-evaluations when nothing in
/// the sensitivity set is written, while the polling reference performs
/// one per round.
#[test]
fn event_kernel_skips_unwritten_sensitivities() {
    let mut b = SpecBuilder::new("quiet");
    let go = b.signal_bit("go");
    let x = b.var_int("x", 16, 0);
    let waiter = b.leaf(
        "Waiter",
        vec![stmt::wait_until(expr::eq(expr::signal(go), expr::lit(1)))],
    );
    // A ticker that advances time for a while without touching `go`,
    // then finally releases the waiter.
    let ticker = b.leaf(
        "Ticker",
        vec![
            stmt::for_loop(x, expr::lit(0), expr::lit(50), vec![stmt::delay(1)]),
            stmt::set_signal(go, expr::lit(1)),
        ],
    );
    let top = b.concurrent("Top", vec![waiter, ticker]);
    let spec = b.finish(top).expect("valid");
    let event = run_kernel(&spec, SimKernel::EventDriven, 100_000).expect("completes");
    let reference = run_kernel(&spec, SimKernel::RoundRobin, 100_000).expect("completes");
    assert_eq!(event, reference);
    // Exactly one write to `go`, so exactly one re-evaluation (which
    // succeeds and wakes the waiter).
    assert_eq!(event.sched.cond_evals, 1);
    assert_eq!(event.sched.wakeups, 1);
    // The polling reference re-checked the waiter every round.
    assert!(
        reference.sched.cond_evals > 50,
        "reference should poll each round, got {}",
        reference.sched.cond_evals
    );
}
