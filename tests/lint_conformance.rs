//! Conformance property: every shipped workload, refined under every
//! implementation model, produces an architecture that passes the
//! `RC01`–`RC04` static lints — the refiner never emits an arbiterless
//! multi-master bus, overlapping decode ranges, a one-sided bus, or an
//! under-width bus. Tamper tests then break each invariant by hand and
//! check the corresponding lint fires, so the property is not passing
//! vacuously.

// The tamper tests mutate a `Refined` by hand, which
// `Codesign::lint` (refining internally) cannot express — they go
// through `Codesign::lint_refined`, the facade entry point for
// already-refined candidates.

use modref::analyze::Severity;
use modref::core::api::Codesign;
use modref::core::{refine, static_reject, ImplModel, Refined};
use modref::graph::AccessGraph;
use modref::partition::{Allocation, Partition};
use modref::spec::Spec;
use modref::workloads::{
    dsp_partition, dsp_spec, fig2_partition, fig2_spec, medical_allocation, medical_partition,
    medical_spec, Design,
};

/// Refines `spec` under every model and asserts the result is statically
/// sound: no error-severity conformance diagnostics, so the explorer's
/// static gate would let every candidate through to simulation.
fn assert_all_models_conform(label: &str, spec: &Spec, alloc: &Allocation, part: &Partition) {
    let graph = AccessGraph::derive(spec);
    let cd = Codesign::from_spec(spec.clone());
    for model in ImplModel::ALL {
        let refined = refine(spec, &graph, alloc, part, model)
            .unwrap_or_else(|e| panic!("{label}/{model}: refinement failed: {e}"));
        let diags = cd.lint_refined(&refined);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{label}/{model}: conformance errors: {diags:#?}"
        );
        assert_eq!(
            static_reject(&diags),
            None,
            "{label}/{model}: statically rejected"
        );
    }
}

#[test]
fn medical_conforms_under_every_design_and_model() {
    let spec = medical_spec();
    let alloc = medical_allocation();
    for design in [Design::Design1, Design::Design2, Design::Design3] {
        let part = medical_partition(&spec, &alloc, design);
        assert_all_models_conform(&format!("medical/{design:?}"), &spec, &alloc, &part);
    }
}

#[test]
fn fig2_conforms_under_every_model() {
    let spec = fig2_spec();
    let alloc = medical_allocation();
    let part = fig2_partition(&spec, &alloc);
    assert_all_models_conform("fig2", &spec, &alloc, &part);
}

#[test]
fn dsp_conforms_under_every_model() {
    let spec = dsp_spec();
    let alloc = medical_allocation();
    let part = dsp_partition(&spec, &alloc);
    assert_all_models_conform("dsp", &spec, &alloc, &part);
}

/// Refines medical/Design1 under `model` — the shared fixture the tamper
/// tests mutate.
fn medical_refined(model: ImplModel) -> (Codesign, Refined) {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
    (Codesign::from_spec(spec), refined)
}

fn reject_codes(cd: &Codesign, refined: &Refined) -> String {
    static_reject(&cd.lint_refined(refined)).expect("tampered candidate must be rejected")
}

#[test]
fn removing_arbiters_trips_rc01() {
    let (cd, mut refined) = medical_refined(ImplModel::Model1);
    refined.architecture.arbiters.clear();
    let codes = reject_codes(&cd, &refined);
    assert!(codes.contains("RC01"), "{codes}");
}

#[test]
fn overlapping_decode_ranges_trip_rc02() {
    let (cd, mut refined) = medical_refined(ImplModel::Model1);
    // Ghost module decoding the same variables as the real global memory:
    // identical (hence overlapping) address ranges.
    let original = refined
        .plan
        .memories
        .iter()
        .find(|m| m.global)
        .expect("Model1 has a global memory")
        .clone();
    let mut ghost = original;
    ghost.name = "Ghost".into();
    refined.plan.memories.push(ghost);
    let codes = reject_codes(&cd, &refined);
    assert!(codes.contains("RC02"), "{codes}");
}

#[test]
fn orphaning_a_bus_trips_rc03() {
    let (cd, mut refined) = medical_refined(ImplModel::Model1);
    for bus in &mut refined.architecture.buses {
        bus.slaves.clear();
    }
    let codes = reject_codes(&cd, &refined);
    assert!(codes.contains("RC03"), "{codes}");
}

#[test]
fn narrowing_every_bus_trips_rc04() {
    let (cd, mut refined) = medical_refined(ImplModel::Model1);
    for bus in &mut refined.architecture.buses {
        bus.data_bits = 1;
    }
    let codes = reject_codes(&cd, &refined);
    assert!(codes.contains("RC04"), "{codes}");
}
