//! Smoke tests for the Graphviz exports: structurally valid DOT with the
//! expected nodes for both the access graph and the architecture.

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

fn balanced(text: &str, open: char, close: char) -> bool {
    let mut depth = 0i64;
    for c in text.chars() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        }
    }
    depth == 0
}

#[test]
fn access_graph_dot_is_well_formed() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let dot = modref::graph::dot::to_dot(&spec, &graph);
    assert!(dot.starts_with("digraph \"medical\" {"));
    assert!(balanced(&dot, '{', '}'));
    assert!(balanced(&dot, '[', ']'));
    // Every behavior and variable with traffic appears as a node.
    for name in ["Sample", "Lowpass", "Log"] {
        assert!(dot.contains(&format!("\"b_{name}\"")), "{name} missing");
    }
    for var in ["samples", "volume", "cycle"] {
        assert!(dot.contains(&format!("\"v_{var}\"")), "{var} missing");
    }
}

#[test]
fn architecture_dot_is_well_formed_for_every_model() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    for model in ImplModel::ALL {
        let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
        let dot = modref::core::dot::to_dot(&refined.architecture);
        assert!(dot.starts_with("graph architecture {"), "{model}");
        assert!(balanced(&dot, '{', '}'), "{model}");
        for bus in &refined.architecture.buses {
            assert!(
                dot.contains(&format!("\"{}\"", bus.name)),
                "{model}: {}",
                bus.name
            );
        }
        for mem in &refined.architecture.memories {
            assert!(
                dot.contains(&format!("\"{}\"", mem.name)),
                "{model}: {}",
                mem.name
            );
        }
    }
}
