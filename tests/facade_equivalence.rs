//! Facade equivalence: the [`Codesign`] facade produces byte-identical
//! results to the open-coded library call chains it supersedes
//! (refine/lint/estimate/simulate assembled by hand from the per-crate
//! functions), on every shipped workload, and its explore/verify
//! pipeline is deterministic across thread counts. This is the
//! migration-safety net for the `api` redesign — callers moving from
//! hand-assembled pipelines to the facade must observe no behavioral
//! change whatsoever.

use modref::analyze::{analyze_spec, render_json_lines, sort_canonical, LintConfig};
use modref::core::api::{Codesign, ExploreOpts, LintOpts, SimOpts, VerifyOpts};
use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::partition::parse_partition;
use modref::spec::{printer, SourceMap};
use modref::workloads::{named_partition, named_spec};

/// Workloads that ship a published partition — the full pipeline runs.
const PARTITIONED: &[&str] = &["medical", "fig2", "dsp"];

fn session(workload: &str) -> (Codesign, String) {
    let cd = Codesign::from_spec(named_spec(workload).expect("shipped workload"));
    let part = named_partition(workload).expect("published partition");
    (cd, part)
}

#[test]
fn explore_and_verify_are_deterministic_across_thread_counts() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let opts = |threads: usize| {
            ExploreOpts::new()
                .with_part(part.clone())
                .with_seeds(2)
                .with_anneal_iterations(120)
                .with_migration_passes(3)
                .with_threads(threads)
        };

        let single = cd.explore(&opts(1)).expect("single-thread explore");
        let multi = cd.explore(&opts(4)).expect("multi-thread explore");
        assert_eq!(single, multi, "{workload}: exploration results differ");

        let verify = |threads: usize| {
            cd.verify(
                &multi,
                &VerifyOpts::new()
                    .with_part(part.clone())
                    .with_threads(threads),
            )
            .expect("facade verify")
        };
        assert_eq!(verify(1), verify(4), "{workload}: verification differs");
    }
}

#[test]
fn lint_matches_the_legacy_composition() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");

        // The legacy call chain `modref lint -p` used to hand-assemble.
        let map = SourceMap::new();
        let mut legacy = analyze_spec(cd.spec(), &map);
        for model in ImplModel::ALL {
            let refined = refine(cd.spec(), &graph, &alloc, &partition, model).expect("refines");
            legacy.extend(cd.lint_refined(&refined));
        }
        sort_canonical(&mut legacy);
        let legacy = LintConfig::new().apply_all(legacy);

        let facade = cd
            .lint(&LintOpts::new().with_part(part.clone()))
            .expect("facade lint");
        assert_eq!(
            render_json_lines(&legacy, workload),
            render_json_lines(&facade, workload),
            "{workload}: lint diagnostics differ"
        );
    }
}

#[test]
fn refine_output_is_byte_identical() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");
        for model in ImplModel::ALL {
            let legacy =
                refine(cd.spec(), &graph, &alloc, &partition, model).expect("legacy refine");
            let facade = cd.refine(&part, model).expect("facade refine");
            assert_eq!(
                printer::print(&legacy.spec),
                printer::print(&facade.spec),
                "{workload}/{model}: refined specs differ"
            );
        }
    }
}

#[test]
fn estimate_report_is_byte_identical() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");
        let model_of = |b| {
            partition
                .component_of_behavior(cd.spec(), b)
                .map(|c| alloc.component(c).timing_model())
                .unwrap_or_default()
        };
        let legacy = modref::estimate::estimation_report(
            cd.spec(),
            &graph,
            &model_of,
            &modref::estimate::LifetimeConfig::default(),
        );
        let facade = cd.estimate(&part).expect("facade estimate");
        assert_eq!(legacy, facade, "{workload}: estimation reports differ");
    }
}

#[test]
fn simulation_matches_on_every_workload() {
    // `ring` has no published partition but simulates fine — include it.
    for workload in ["medical", "fig2", "dsp", "ring"] {
        let spec = named_spec(workload).expect("shipped workload");
        let legacy = modref::sim::Simulator::new(&spec)
            .run()
            .expect("legacy sim");
        let cd = Codesign::from_spec(spec);
        let facade = cd.simulate(&SimOpts::new()).expect("facade sim");
        assert_eq!(legacy.time, facade.time, "{workload}: sim time differs");
        assert_eq!(legacy.steps, facade.steps, "{workload}: sim steps differ");
        assert_eq!(
            legacy.var_writes, facade.var_writes,
            "{workload}: var writes differ"
        );
        assert_eq!(
            legacy.scalar_vars().collect::<Vec<_>>(),
            facade.scalar_vars().collect::<Vec<_>>(),
            "{workload}: final state differs"
        );
    }
}
