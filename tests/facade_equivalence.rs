//! Facade equivalence: the [`Codesign`] facade produces byte-identical
//! results to the legacy free functions it supersedes, on every shipped
//! workload. This is the migration-safety net for the `api` redesign —
//! callers moving from `explore_designs`/`verify_pareto`/`lint_refined`
//! (and the open-coded refine/estimate/simulate call chains) to the
//! facade must observe no behavioral change whatsoever.

// The whole point of this suite is to call the deprecated shims and
// compare them against the facade.
#![allow(deprecated)]

use modref::analyze::{analyze_spec, render_json_lines, sort_canonical, LintConfig};
use modref::core::api::{Codesign, ExploreOpts, LintOpts, SimOpts, VerifyOpts};
use modref::core::{explore_designs, lint_refined, refine, verify_pareto, ImplModel};
use modref::graph::AccessGraph;
use modref::partition::explore::ExploreConfig;
use modref::partition::{parse_partition, CostConfig};
use modref::spec::{printer, SourceMap};
use modref::workloads::{named_partition, named_spec};

/// Workloads that ship a published partition — the full pipeline runs.
const PARTITIONED: &[&str] = &["medical", "fig2", "dsp"];

fn session(workload: &str) -> (Codesign, String) {
    let cd = Codesign::from_spec(named_spec(workload).expect("shipped workload"));
    let part = named_partition(workload).expect("published partition");
    (cd, part)
}

#[test]
fn explore_and_verify_match_the_legacy_functions() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let config = ExploreConfig {
            seeds: 2,
            anneal_iterations: 120,
            migration_passes: 3,
            threads: Some(2),
        };
        let opts = ExploreOpts::new()
            .part(part.clone())
            .seeds(config.seeds)
            .anneal_iterations(config.anneal_iterations)
            .migration_passes(config.migration_passes)
            .threads(2);

        let (alloc, _) = parse_partition(cd.spec(), &part).expect("partition parses");
        let graph = AccessGraph::derive(cd.spec());
        let legacy = explore_designs(cd.spec(), &graph, &alloc, &CostConfig::default(), &config)
            .expect("legacy explore");
        let facade = cd.explore(&opts).expect("facade explore");
        assert_eq!(legacy, facade, "{workload}: exploration results differ");

        let legacy_v = verify_pareto(cd.spec(), &graph, &alloc, &legacy, Some(2));
        let facade_v = cd
            .verify(&facade, &VerifyOpts::new().part(part.clone()).threads(2))
            .expect("facade verify");
        assert_eq!(legacy_v, facade_v, "{workload}: verification differs");
    }
}

#[test]
fn lint_matches_the_legacy_composition() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");

        // The legacy call chain `modref lint -p` used to hand-assemble.
        let map = SourceMap::new();
        let mut legacy = analyze_spec(cd.spec(), &map);
        for model in ImplModel::ALL {
            let refined = refine(cd.spec(), &graph, &alloc, &partition, model).expect("refines");
            legacy.extend(lint_refined(cd.spec(), &graph, &refined));
        }
        sort_canonical(&mut legacy);
        let legacy = LintConfig::new().apply_all(legacy);

        let facade = cd
            .lint(&LintOpts::new().part(part.clone()))
            .expect("facade lint");
        assert_eq!(
            render_json_lines(&legacy, workload),
            render_json_lines(&facade, workload),
            "{workload}: lint diagnostics differ"
        );
    }
}

#[test]
fn refine_output_is_byte_identical() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");
        for model in ImplModel::ALL {
            let legacy =
                refine(cd.spec(), &graph, &alloc, &partition, model).expect("legacy refine");
            let facade = cd.refine(&part, model).expect("facade refine");
            assert_eq!(
                printer::print(&legacy.spec),
                printer::print(&facade.spec),
                "{workload}/{model}: refined specs differ"
            );
        }
    }
}

#[test]
fn estimate_report_is_byte_identical() {
    for workload in PARTITIONED {
        let (cd, part) = session(workload);
        let graph = AccessGraph::derive(cd.spec());
        let (alloc, partition) = parse_partition(cd.spec(), &part).expect("partition parses");
        let model_of = |b| {
            partition
                .component_of_behavior(cd.spec(), b)
                .map(|c| alloc.component(c).timing_model())
                .unwrap_or_default()
        };
        let legacy = modref::estimate::estimation_report(
            cd.spec(),
            &graph,
            &model_of,
            &modref::estimate::LifetimeConfig::default(),
        );
        let facade = cd.estimate(&part).expect("facade estimate");
        assert_eq!(legacy, facade, "{workload}: estimation reports differ");
    }
}

#[test]
fn simulation_matches_on_every_workload() {
    // `ring` has no published partition but simulates fine — include it.
    for workload in ["medical", "fig2", "dsp", "ring"] {
        let spec = named_spec(workload).expect("shipped workload");
        let legacy = modref::sim::Simulator::new(&spec)
            .run()
            .expect("legacy sim");
        let cd = Codesign::from_spec(spec);
        let facade = cd.simulate(&SimOpts::new()).expect("facade sim");
        assert_eq!(legacy.time, facade.time, "{workload}: sim time differs");
        assert_eq!(legacy.steps, facade.steps, "{workload}: sim steps differ");
        assert_eq!(
            legacy.var_writes, facade.var_writes,
            "{workload}: var writes differ"
        );
        assert_eq!(
            legacy.scalar_vars().collect::<Vec<_>>(),
            facade.scalar_vars().collect::<Vec<_>>(),
            "{workload}: final state differs"
        );
    }
}
