//! The software-compilation hand-off, end to end: the processor-side
//! process of a refined medical system exports to C, and the generated
//! translation unit compiles with a real C compiler against a stub HAL.

use std::fs;
use std::process::Command;

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::spec::cgen;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

fn refined_medical(model: ImplModel) -> modref::core::Refined {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    refine(&spec, &graph, &alloc, &part, model).expect("refines")
}

#[test]
fn processor_side_exports_to_c() {
    for model in ImplModel::ALL {
        let refined = refined_medical(model);
        // The software process is the copied root hierarchy, named after
        // the original top behavior.
        let c = cgen::export_software(&refined.spec, "Medical")
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(c.contains("void Medical_process(void)"), "{model}");
        // The ASIC-side work is delegated: B_CTRL handshake signals show
        // up, not the ASIC computation (Sample's loop went to hardware).
        assert!(c.contains("SIG_Acquire_start"), "{model}");
        // Data access goes through protocol HAL calls.
        assert!(c.contains("extern void MST_"), "{model}");
    }
}

#[test]
fn generated_c_compiles_with_a_real_compiler() {
    let refined = refined_medical(ImplModel::Model2);
    let c = cgen::export_software(&refined.spec, "Medical").expect("exports");

    let dir = std::env::temp_dir().join(format!("modref_cgen_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmpdir");
    let src = dir.join("software.c");
    fs::write(&src, &c).expect("write");

    // `-c` only: the HAL externs stay unresolved, which is the point.
    let out = Command::new("cc")
        .args([
            "-std=c99",
            "-Wall",
            "-Werror",
            "-Wno-unused-but-set-variable",
            "-Wno-unused-variable",
            "-c",
            src.to_str().expect("utf8"),
            "-o",
        ])
        .arg(dir.join("software.o"))
        .output()
        .expect("cc runs");
    assert!(
        out.status.success(),
        "cc failed:\n{}\n--- source ---\n{c}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn memory_server_is_not_part_of_the_software() {
    let refined = refined_medical(ImplModel::Model1);
    let c = cgen::export_software(&refined.spec, "Medical").expect("exports");
    // The memory image lives on the other side of the bus.
    assert!(!c.contains("Gmem"), "software must not inline the memory");
}
