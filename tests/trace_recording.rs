//! Trace-recording property tests: with `SimConfig::trace` on, all three
//! kernels must record the *identical* event sequence — every variable,
//! array-element and signal write and every process wake, in the same
//! order with the same timestamps. This is strictly stronger than the
//! final-state equality `kernel_equivalence.rs` pins down: two schedulers
//! could agree on the final state while interleaving writes differently,
//! and the trace would show it.
//!
//! On top of kernel agreement, the stuttering-refinement checker must
//! accept every built-in workload against its Model 1–4 refinements
//! (the refined trace stutter-compresses onto the original projection),
//! and must reject a tampered trace with an injected divergence.

use modref::core::{check_stuttering_refinement, refine, ImplModel};
use modref::partition::Allocation;
use modref::sim::{SimConfig, SimKernel, SimTrace, Simulator, TraceId};
use modref::spec::span::SourceMap;
use modref::spec::Spec;
use modref::workloads::{
    dsp_partition, dsp_spec, fig2_partition, fig2_spec, medical_allocation, medical_partition,
    medical_spec, ring_spec, Design,
};

const MAX_STEPS: u64 = 5_000_000;

fn traced_run(spec: &Spec, kernel: SimKernel) -> SimTrace {
    let result = Simulator::with_config(
        spec,
        SimConfig {
            max_steps: MAX_STEPS,
            kernel,
            trace: true,
        },
    )
    .run()
    .expect("traced run succeeds");
    result.trace.expect("trace requested but not recorded")
}

/// All three kernels on the same spec; the recorded traces must be
/// byte-identical, and return the (shared) trace for further checks.
fn assert_traces_identical(spec: &Spec, context: &str) -> SimTrace {
    let reference = traced_run(spec, SimKernel::RoundRobin);
    let event = traced_run(spec, SimKernel::EventDriven);
    let compiled = traced_run(spec, SimKernel::Compiled);
    assert!(
        !reference.is_empty(),
        "{context}: workload recorded no events"
    );
    assert_eq!(event, reference, "{context}: event vs reference traces");
    assert_eq!(compiled, event, "{context}: compiled vs event traces");
    reference
}

fn workloads() -> Vec<(&'static str, Spec)> {
    vec![
        ("fig2", fig2_spec()),
        ("medical", medical_spec()),
        ("dsp", dsp_spec()),
    ]
}

/// The headline property: for every built-in workload, original and
/// refined to all four implementation models, the three kernels record
/// identical traces — and each refined trace is a stuttering refinement
/// of its original.
#[test]
fn kernels_record_identical_traces_and_refinements_stutter() {
    let alloc = Allocation::proc_plus_asic();
    let map = SourceMap::default();

    for (name, spec) in &workloads() {
        let orig_trace = assert_traces_identical(spec, &format!("{name} original"));

        let graph = modref::graph::AccessGraph::derive(spec);
        let part = match *name {
            "fig2" => fig2_partition(spec, &alloc),
            "dsp" => dsp_partition(spec, &alloc),
            _ => medical_partition(spec, &medical_allocation(), Design::Design1),
        };
        for model in ImplModel::ALL {
            let refined = refine(spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("{name} {model}: {e}"));
            let refined_trace = assert_traces_identical(&refined.spec, &format!("{name} {model}"));
            check_stuttering_refinement(spec, &orig_trace, &refined.spec, &refined_trace, &map)
                .unwrap_or_else(|m| panic!("{name} {model}: {m}"));
        }
    }

    // The polling worst case: many stations blocked on distinct signals.
    assert_traces_identical(&ring_spec(8, 12), "ring8");
}

/// Tracing is strictly opt-in: the default config records nothing, so
/// the untraced hot path stays allocation-free.
#[test]
fn trace_is_none_unless_requested() {
    let spec = fig2_spec();
    for kernel in [
        SimKernel::RoundRobin,
        SimKernel::EventDriven,
        SimKernel::Compiled,
    ] {
        let result = Simulator::with_config(
            &spec,
            SimConfig {
                max_steps: MAX_STEPS,
                kernel,
                ..SimConfig::default()
            },
        )
        .run()
        .expect("untraced run succeeds");
        assert!(result.trace.is_none(), "{kernel:?} recorded a trace");
    }
}

/// The checker is not vacuous on real workloads: tampering with a single
/// recorded value in the refined trace — a divergence no amount of
/// stuttering can absorb — is caught and names the observable.
#[test]
fn tampered_refined_trace_is_rejected() {
    let spec = medical_spec();
    let alloc = Allocation::proc_plus_asic();
    let graph = modref::graph::AccessGraph::derive(&spec);
    let part = medical_partition(&spec, &medical_allocation(), Design::Design1);
    let refined =
        refine(&spec, &graph, &alloc, &part, ImplModel::Model2).expect("medical Model2 refines");

    let orig_trace = traced_run(&spec, SimKernel::Compiled);
    let mut tampered = traced_run(&refined.spec, SimKernel::Compiled);

    // Flip the value of the last write to a variable *shared with the
    // original spec* — the checker projects onto shared observables, and
    // stuttering compression cannot hide a changed value.
    let orig_names: std::collections::BTreeSet<&str> =
        spec.variables().map(|(_, v)| v.name()).collect();
    let shared: Vec<bool> = refined
        .spec
        .variables()
        .map(|(_, v)| orig_names.contains(v.name()))
        .collect();
    let idx = tampered
        .events
        .iter()
        .rposition(|e| match e.id {
            TraceId::Var(v) | TraceId::Elem { var: v, .. } => shared[v as usize],
            _ => false,
        })
        .expect("refined trace writes an original-spec variable");
    tampered.events[idx].value = tampered.events[idx].value.wrapping_add(1);

    let map = SourceMap::default();
    let err = check_stuttering_refinement(&spec, &orig_trace, &refined.spec, &tampered, &map)
        .expect_err("tampered trace must be rejected");
    assert!(
        err.to_string().starts_with("trace divergence on `"),
        "unexpected report: {err}"
    );
}
