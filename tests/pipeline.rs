//! Full-pipeline integration tests: spec → access graph → partition →
//! refine (all four implementation models) → simulate, asserting
//! functional equivalence and the paper's architectural invariants.

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::sim::Simulator;
use modref::spec::printer;
use modref::workloads::{medical_allocation, medical_partition, medical_spec, Design};

#[test]
fn medical_system_refines_equivalently_under_all_designs_and_models() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let original = Simulator::new(&spec).run().expect("original completes");

    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("{design} {model}: refine failed: {e}"));
            let result = Simulator::new(&refined.spec)
                .run()
                .unwrap_or_else(|e| panic!("{design} {model}: simulation failed: {e}"));
            let diffs = original.diff_common_vars(&result);
            assert!(
                diffs.is_empty(),
                "{design} {model}: refined model diverges on {diffs:?}"
            );
        }
    }
}

#[test]
fn bus_counts_follow_the_section3_formulas() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let p = alloc.len();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            let buses = refined.architecture.bus_count();
            assert!(
                buses <= model.max_buses(p),
                "{design} {model}: {buses} buses exceeds the formula's {}",
                model.max_buses(p)
            );
            // Model1 always uses exactly one bus.
            if model == ImplModel::Model1 {
                assert_eq!(buses, 1, "{design}");
            }
        }
    }
}

#[test]
fn memory_module_counts_match_the_section5_discussion() {
    // "In Model1 and Model4, two memory modules are required. However, in
    // Model2 and Model3, four memory modules are required."
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        for (model, expected) in [
            (ImplModel::Model1, 2),
            (ImplModel::Model2, 4),
            (ImplModel::Model3, 4),
            (ImplModel::Model4, 2),
        ] {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            assert_eq!(
                refined.architecture.memory_count(),
                expected,
                "{design} {model}"
            );
        }
    }
}

#[test]
fn model3_global_memories_have_one_port_per_partition() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model3).expect("refines");
    for mem in &refined.architecture.memories {
        if mem.global {
            assert_eq!(mem.ports(), alloc.len(), "{}", mem.name);
        } else {
            assert_eq!(mem.ports(), 1, "{}", mem.name);
        }
    }
}

#[test]
fn refined_specs_expand_substantially() {
    // Figure 10's qualitative claim: the refined specification is an
    // order of magnitude larger than the original.
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let original_lines = printer::line_count(&spec);
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            let lines = printer::line_count(&refined.spec);
            let ratio = lines as f64 / original_lines as f64;
            assert!(
                ratio >= 5.0,
                "{design} {model}: only {ratio:.1}x larger ({lines} vs {original_lines})"
            );
        }
    }
}

#[test]
fn refined_specs_reparse_through_the_textual_syntax() {
    // The refined output is a real specification: print → parse →
    // print must be a fixpoint.
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    for model in ImplModel::ALL {
        let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
        let text = printer::print(&refined.spec);
        let reparsed = modref::spec::parser::parse(&text)
            .unwrap_or_else(|e| panic!("{model}: refined spec does not reparse: {e}"));
        assert_eq!(printer::print(&reparsed), text, "{model}");
    }
}

#[test]
fn reparsed_refined_spec_still_simulates_equivalently() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design2);
    let original = Simulator::new(&spec).run().expect("original completes");
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model2).expect("refines");
    let text = printer::print(&refined.spec);
    let reparsed = modref::spec::parser::parse(&text).expect("reparses");
    let result = Simulator::new(&reparsed).run().expect("reparsed runs");
    assert!(original.diff_common_vars(&result).is_empty());
}

#[test]
fn arbiters_exist_exactly_on_multimaster_buses() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    for model in ImplModel::ALL {
        let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
        for bus in &refined.architecture.buses {
            let has_arbiter = refined
                .architecture
                .arbiters
                .iter()
                .any(|a| a.bus == bus.name);
            assert_eq!(
                has_arbiter,
                bus.needs_arbiter(),
                "{model} bus {}: {} masters",
                bus.name,
                bus.masters.len()
            );
        }
    }
}

#[test]
fn model4_is_the_only_model_with_interfaces() {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design3);
    for model in ImplModel::ALL {
        let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
        let has_interfaces = !refined.architecture.interfaces.is_empty();
        assert_eq!(has_interfaces, model == ImplModel::Model4, "{model}");
    }
}

#[test]
fn round_robin_arbiters_preserve_equivalence_too() {
    use modref::core::{refine_with_options, ArbiterPolicy, RefineOptions};
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let original = Simulator::new(&spec).run().expect("original completes");
    let options = RefineOptions {
        arbiter_policy: ArbiterPolicy::RoundRobin,
        ..RefineOptions::default()
    };
    for model in ImplModel::ALL {
        let refined = refine_with_options(&spec, &graph, &alloc, &part, model, &options)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let result = Simulator::new(&refined.spec)
            .run()
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(
            original.diff_common_vars(&result).is_empty(),
            "{model}: round-robin arbitration diverges"
        );
    }
}

#[test]
fn coalesced_fetches_preserve_equivalence_and_reduce_traffic() {
    use modref::core::{refine_with_options, RefineOptions};
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let part = medical_partition(&spec, &alloc, Design::Design1);
    let original = Simulator::new(&spec).run().expect("original completes");

    let plain = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("plain");
    let coalesced = refine_with_options(
        &spec,
        &graph,
        &alloc,
        &part,
        ImplModel::Model1,
        &RefineOptions {
            coalesce_reads: true,
            ..RefineOptions::default()
        },
    )
    .expect("coalesced");

    let r_plain = Simulator::new(&plain.spec).run().expect("plain runs");
    let r_coal = Simulator::new(&coalesced.spec)
        .run()
        .expect("coalesced runs");
    assert!(original.diff_common_vars(&r_plain).is_empty());
    assert!(original.diff_common_vars(&r_coal).is_empty());
    // Fewer bus transactions => fewer signal writes and fewer steps.
    assert!(
        r_coal.signal_writes < r_plain.signal_writes,
        "coalescing should drop redundant fetches: {} vs {}",
        r_coal.signal_writes,
        r_plain.signal_writes
    );
    // And a smaller refined text (fewer protocol calls printed).
    assert!(printer::line_count(&coalesced.spec) <= printer::line_count(&plain.spec));
}
