//! Property-based tests over randomly generated specifications.
//!
//! The generator (`modref_workloads::synth`) produces deterministic,
//! terminating hierarchical specs; proptest drives seeds and structural
//! parameters. The headline property is the refinement engine's
//! soundness: *for every spec, partition and implementation model, the
//! refined specification simulates to the same final state as the
//! original.*

use proptest::prelude::*;

use modref::core::{refine, ImplModel, RefinePlan};
use modref::partition::{Allocation, VarClass};
use modref::sim::Simulator;
use modref::spec::{parser, printer};
use modref::workloads::{SynthConfig, SynthSpec};

fn small_config() -> impl Strategy<Value = SynthConfig> {
    (2usize..6, 2usize..6, 1usize..5, 2usize..4, 0u32..60).prop_map(
        |(leaves, vars, stmts, fanout, loop_percent)| SynthConfig {
            leaves,
            vars,
            stmts_per_leaf: stmts,
            fanout,
            loop_percent,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The soundness property: refinement preserves observable behavior
    /// under every implementation model.
    #[test]
    fn refinement_preserves_behavior(seed in 0u64..500, cfg in small_config(), salt in 0u64..2) {
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        let original = Simulator::new(&synth.spec).run().expect("original terminates");
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            let result = Simulator::new(&refined.spec)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            let diffs = original.diff_common_vars(&result);
            prop_assert!(
                diffs.is_empty(),
                "seed {seed} {model}: diverges on {diffs:?}"
            );
        }
    }

    /// print → parse → print is a fixpoint for generated specs.
    #[test]
    fn printer_parser_round_trip(seed in 0u64..1000, cfg in small_config()) {
        let synth = SynthSpec::generate(seed, &cfg);
        let text = printer::print(&synth.spec);
        let reparsed = parser::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        prop_assert_eq!(printer::print(&reparsed), text);
    }

    /// The plan maps every data channel to at least one bus, and the bus
    /// count never exceeds the paper's per-model formula.
    #[test]
    fn plan_invariants(seed in 0u64..500, cfg in small_config(), salt in 0u64..2) {
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for model in ImplModel::ALL {
            let plan = RefinePlan::build(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            prop_assert!(plan.buses.len() <= model.max_buses(alloc.len()));
            let map = plan.channel_buses(&synth.spec, &graph, &part);
            prop_assert_eq!(map.len(), graph.data_channels().count());
            for buses in map.values() {
                prop_assert!(!buses.is_empty());
                for bus in buses {
                    prop_assert!(plan.buses.iter().any(|b| &b.name == bus));
                }
            }
            // Every variable belongs to exactly one memory module.
            let mut seen = std::collections::HashSet::new();
            for mem in &plan.memories {
                for v in &mem.vars {
                    prop_assert!(seen.insert(*v), "variable in two memories");
                }
            }
            prop_assert_eq!(seen.len(), synth.spec.variable_count());
        }
    }

    /// Local/global classification matches its definition: a variable is
    /// global iff some accessor's component differs from its home.
    #[test]
    fn classification_matches_definition(seed in 0u64..500, cfg in small_config(), salt in 0u64..2) {
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for (v, _) in synth.spec.variables() {
            let home = part.component_of_var(&synth.spec, v);
            let cross = graph
                .behaviors_accessing(v)
                .into_iter()
                .any(|b| part.component_of_behavior(&synth.spec, b) != home);
            let class = part.classify_var(&synth.spec, &graph, v);
            prop_assert_eq!(class == VarClass::Global, cross);
        }
    }

    /// Simulation is deterministic: two runs of the same spec agree.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000, cfg in small_config()) {
        let synth = SynthSpec::generate(seed, &cfg);
        let a = Simulator::new(&synth.spec).run().expect("runs");
        let b = Simulator::new(&synth.spec).run().expect("runs");
        prop_assert!(a.diff_common_vars(&b).is_empty());
        prop_assert_eq!(a.time, b.time);
        prop_assert_eq!(a.steps, b.steps);
    }

    /// The refined spec always prints strictly more lines than the
    /// original (refinement adds, never removes).
    #[test]
    fn refinement_grows_the_spec(seed in 0u64..300, cfg in small_config()) {
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, 0);
        let before = printer::line_count(&synth.spec);
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            prop_assert!(printer::line_count(&refined.spec) > before);
        }
    }
}
