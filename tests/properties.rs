//! Property-based tests over randomly generated specifications.
//!
//! The generator (`modref_workloads::synth`) produces deterministic,
//! terminating hierarchical specs; a seeded PRNG (`modref_rng`) drives
//! seeds and structural parameters, replacing the external `proptest`
//! dependency so the suite runs offline. The headline property is the
//! refinement engine's soundness: *for every spec, partition and
//! implementation model, the refined specification simulates to the same
//! final state as the original.*

use modref_rng::Rng;

use modref::core::{refine, ImplModel, RefinePlan};
use modref::partition::{Allocation, VarClass};
use modref::sim::Simulator;
use modref::spec::{parser, printer};
use modref::workloads::{SynthConfig, SynthSpec};

/// Draws a small random generation config, mirroring the old proptest
/// strategy `(2..6, 2..6, 1..5, 2..4, 0..60)`.
fn small_config(rng: &mut Rng) -> SynthConfig {
    SynthConfig {
        leaves: rng.gen_range(2..6usize),
        vars: rng.gen_range(2..6usize),
        stmts_per_leaf: rng.gen_range(1..5usize),
        fanout: rng.gen_range(2..4usize),
        loop_percent: rng.gen_range(0..60u32),
    }
}

/// The soundness property: refinement preserves observable behavior
/// under every implementation model.
#[test]
fn refinement_preserves_behavior() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0001);
    for case in 0..24 {
        let seed = rng.gen_range(0..500u64);
        let cfg = small_config(&mut rng);
        let salt = rng.gen_range(0..2u64);
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        let original = Simulator::new(&synth.spec)
            .run()
            .expect("original terminates");
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("case {case} seed {seed} {model}: {e}"));
            let result = Simulator::new(&refined.spec)
                .run()
                .unwrap_or_else(|e| panic!("case {case} seed {seed} {model}: {e}"));
            let diffs = original.diff_common_vars(&result);
            assert!(
                diffs.is_empty(),
                "case {case} seed {seed} {model}: diverges on {diffs:?}"
            );
        }
    }
}

/// print → parse → print is a fixpoint for generated specs.
#[test]
fn printer_parser_round_trip() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0002);
    for _ in 0..32 {
        let seed = rng.gen_range(0..1000u64);
        let cfg = small_config(&mut rng);
        let synth = SynthSpec::generate(seed, &cfg);
        let text = printer::print(&synth.spec);
        let reparsed = parser::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(printer::print(&reparsed), text, "seed {seed}");
    }
}

/// The plan maps every data channel to at least one bus, and the bus
/// count never exceeds the paper's per-model formula.
#[test]
fn plan_invariants() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0003);
    for _ in 0..24 {
        let seed = rng.gen_range(0..500u64);
        let cfg = small_config(&mut rng);
        let salt = rng.gen_range(0..2u64);
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for model in ImplModel::ALL {
            let plan = RefinePlan::build(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            assert!(plan.buses.len() <= model.max_buses(alloc.len()));
            let map = plan.channel_buses(&synth.spec, &graph, &part);
            assert_eq!(map.len(), graph.data_channels().count());
            for buses in map.values() {
                assert!(!buses.is_empty());
                for bus in buses {
                    assert!(plan.buses.iter().any(|b| &b.name == bus));
                }
            }
            // Every variable belongs to exactly one memory module.
            let mut seen = std::collections::HashSet::new();
            for mem in &plan.memories {
                for v in &mem.vars {
                    assert!(seen.insert(*v), "variable in two memories");
                }
            }
            assert_eq!(seen.len(), synth.spec.variable_count());
        }
    }
}

/// Local/global classification matches its definition: a variable is
/// global iff some accessor's component differs from its home.
#[test]
fn classification_matches_definition() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0004);
    for _ in 0..24 {
        let seed = rng.gen_range(0..500u64);
        let cfg = small_config(&mut rng);
        let salt = rng.gen_range(0..2u64);
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, salt);
        for (v, _) in synth.spec.variables() {
            let home = part.component_of_var(&synth.spec, v);
            let cross = graph
                .behaviors_accessing(v)
                .into_iter()
                .any(|b| part.component_of_behavior(&synth.spec, b) != home);
            let class = part.classify_var(&synth.spec, &graph, v);
            assert_eq!(class == VarClass::Global, cross, "seed {seed} var {v:?}");
        }
    }
}

/// Simulation is deterministic: two runs of the same spec agree.
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0005);
    for _ in 0..24 {
        let seed = rng.gen_range(0..1000u64);
        let cfg = small_config(&mut rng);
        let synth = SynthSpec::generate(seed, &cfg);
        let a = Simulator::new(&synth.spec).run().expect("runs");
        let b = Simulator::new(&synth.spec).run().expect("runs");
        assert!(a.diff_common_vars(&b).is_empty(), "seed {seed}");
        assert_eq!(a.time, b.time);
        assert_eq!(a.steps, b.steps);
    }
}

/// The refined spec always prints strictly more lines than the
/// original (refinement adds, never removes).
#[test]
fn refinement_grows_the_spec() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0006);
    for _ in 0..16 {
        let seed = rng.gen_range(0..300u64);
        let cfg = small_config(&mut rng);
        let synth = SynthSpec::generate(seed, &cfg);
        let graph = synth.graph();
        let alloc = Allocation::proc_plus_asic();
        let part = synth.partition(&alloc, 0);
        let before = printer::line_count(&synth.spec);
        for model in ImplModel::ALL {
            let refined = refine(&synth.spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("seed {seed} {model}: {e}"));
            assert!(printer::line_count(&refined.spec) > before, "seed {seed}");
        }
    }
}
