//! Three-component generalization: the paper's bus-count formulas and
//! the refinement engine are parameterized by the number of partitions
//! `p`; everything in Section 3 is stated for general `p`. These tests
//! run the full pipeline over one processor and two ASICs.

use modref::core::{refine, ImplModel};
use modref::graph::AccessGraph;
use modref::partition::{Allocation, Component, Partition};
use modref::sim::Simulator;
use modref::spec::builder::SpecBuilder;
use modref::spec::{expr, stmt, Spec};

/// A pipeline across three components: produce (ASIC1) → transform
/// (ASIC2) → consume (PROC), with stage-local scratch variables and
/// global hand-off variables.
fn three_way() -> (Spec, Allocation, Partition) {
    let mut b = SpecBuilder::new("three");
    let raw = b.var_int("raw", 16, 0);
    let mid = b.var_int("mid", 16, 0);
    let out = b.var_int("out", 16, 0);
    let s1 = b.var_int("scratch1", 16, 0);
    let s2 = b.var_int("scratch2", 16, 0);

    let produce = b.leaf(
        "Produce",
        vec![
            stmt::assign(s1, expr::lit(21)),
            stmt::assign(raw, expr::mul(expr::var(s1), expr::lit(2))),
        ],
    );
    let transform = b.leaf(
        "Transform",
        vec![
            stmt::assign(s2, expr::add(expr::var(raw), expr::lit(8))),
            stmt::assign(mid, expr::var(s2)),
        ],
    );
    let consume = b.leaf(
        "Consume",
        vec![stmt::assign(out, expr::sub(expr::var(mid), expr::lit(7)))],
    );
    let top = b.seq_in_order("Pipeline", vec![produce, transform, consume]);
    let spec = b.finish(top).expect("valid");

    let mut alloc = Allocation::new();
    let proc = alloc.add(Component::processor("PROC", 64 * 1024));
    let asic1 = alloc.add(Component::asic("ASIC1", 10_000, 75));
    let asic2 = alloc.add(Component::asic("ASIC2", 10_000, 75));

    let mut part = Partition::with_default(proc);
    part.assign_behavior(spec.behavior_by_name("Produce").unwrap(), asic1);
    part.assign_behavior(spec.behavior_by_name("Transform").unwrap(), asic2);
    part.assign_var(spec.variable_by_name("scratch1").unwrap(), asic1);
    part.assign_var(spec.variable_by_name("scratch2").unwrap(), asic2);
    part.assign_var(spec.variable_by_name("raw").unwrap(), asic1);
    part.assign_var(spec.variable_by_name("mid").unwrap(), asic2);
    part.assign_var(spec.variable_by_name("out").unwrap(), proc);
    (spec, alloc, part)
}

#[test]
fn three_way_refinement_is_equivalent_under_all_models() {
    let (spec, alloc, part) = three_way();
    let graph = AccessGraph::derive(&spec);
    let original = Simulator::new(&spec).run().expect("original completes");
    assert_eq!(original.var_by_name("out"), Some(43)); // 21*2+8-7

    for model in ImplModel::ALL {
        let refined =
            refine(&spec, &graph, &alloc, &part, model).unwrap_or_else(|e| panic!("{model}: {e}"));
        let result = Simulator::new(&refined.spec)
            .run()
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(
            original.diff_common_vars(&result).is_empty(),
            "{model} diverges"
        );
    }
}

#[test]
fn three_way_bus_counts_respect_p3_formulas() {
    let (spec, alloc, part) = three_way();
    let graph = AccessGraph::derive(&spec);
    let p = alloc.len();
    assert_eq!(p, 3);
    for model in ImplModel::ALL {
        let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
        let buses = refined.architecture.bus_count();
        assert!(
            buses <= model.max_buses(p),
            "{model}: {buses} > {}",
            model.max_buses(p)
        );
    }
    // Model3's maximum is p + p^2 = 12; here: three local memories
    // (scratch1, scratch2, out) and two global memories (raw on ASIC1,
    // mid on ASIC2) with 3 ports each -> 3 + 6 = 9 buses.
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model3).expect("refines");
    assert_eq!(refined.architecture.bus_count(), 9);
    // And each global memory has p ports.
    for mem in refined.architecture.memories.iter().filter(|m| m.global) {
        assert_eq!(mem.ports(), 3, "{}", mem.name);
    }
}

#[test]
fn three_way_model4_chains_hop_between_all_components() {
    let (spec, alloc, part) = three_way();
    let graph = AccessGraph::derive(&spec);
    let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model4).expect("refines");
    // Transform (ASIC2) reads raw (homed ASIC1): a 3-hop chain exists,
    // and Consume (PROC) reads mid (ASIC2): another chain from a third
    // component.
    let chains: Vec<&Vec<String>> = refined
        .channel_buses
        .values()
        .filter(|b| b.len() == 3)
        .collect();
    assert!(chains.len() >= 2, "expected at least two remote chains");
    // All chains share the single inter-component bus in the middle.
    let inter: std::collections::HashSet<&String> = chains.iter().map(|c| &c[1]).collect();
    assert_eq!(inter.len(), 1, "one inter-component bus");
    // Interfaces exist for every component that sends or serves.
    assert!(refined.architecture.interfaces.len() >= 4);
}
