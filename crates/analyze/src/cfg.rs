//! Per-body statement control-flow graphs.
//!
//! Each leaf-behavior (or subroutine) body is lowered to a small CFG of
//! one node per statement, plus synthetic entry and exit nodes. The
//! lowering mirrors the simulator's structured-control semantics: an
//! `if` forks and rejoins, `while`/`for` loop back through their head
//! node, and `loop` has no exit edge at all. Dataflow analyses
//! ([`crate::dataflow`]) run over this graph.

use modref_spec::{LValue, SourceMap, Span, Stmt, StmtOwner, StmtPath, VarId, WaitCond};

/// Index of a node within its [`Cfg`].
pub type NodeId = usize;

/// One CFG node: a statement (or a synthetic entry/exit).
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// Structural address of the statement; `None` for entry/exit.
    pub path: Option<StmtPath>,
    /// Source position, when the spec was parsed from text.
    pub span: Option<Span>,
    /// Variables read when this node executes (guards, rhs, indices).
    pub uses: Vec<VarId>,
    /// Variables definitely (re)defined: scalar writes, which kill
    /// previous definitions.
    pub defs: Vec<VarId>,
    /// Variables partially defined: array-element writes, which define
    /// but do not kill (other elements survive).
    pub weak_defs: Vec<VarId>,
    /// A `for` head's loop variable: written *before* it is read on every
    /// iteration, so liveness treats it as used (the increment/compare
    /// read it) while may-uninit does not.
    pub loop_var: Option<VarId>,
    /// Set when the node is a plain `v := e` scalar assignment — the only
    /// shape the dead-store lint fires on (calls and loops have other
    /// effects).
    pub assign_scalar: Option<VarId>,
    /// Successor nodes.
    pub succs: Vec<NodeId>,
    /// Predecessor nodes.
    pub preds: Vec<NodeId>,
}

impl CfgNode {
    fn synthetic() -> Self {
        Self {
            path: None,
            span: None,
            uses: Vec::new(),
            defs: Vec::new(),
            weak_defs: Vec::new(),
            loop_var: None,
            assign_scalar: None,
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }
}

/// A per-body control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; `nodes[entry]` and `nodes[exit]` are synthetic.
    pub nodes: Vec<CfgNode>,
    /// The entry node (no statement).
    pub entry: NodeId,
    /// The exit node (no statement). Unreachable when the body ends in an
    /// infinite `loop`.
    pub exit: NodeId,
}

impl Cfg {
    /// Lowers a statement body to its CFG. `map` supplies statement
    /// positions when available; pass `None` for builder-built specs.
    pub fn build(owner: StmtOwner, body: &[Stmt], map: Option<&SourceMap>) -> Self {
        let mut cfg = Cfg {
            nodes: vec![CfgNode::synthetic(), CfgNode::synthetic()],
            entry: 0,
            exit: 1,
        };
        let root = StmtPath::root(owner);
        let frontier = cfg.lower_block(body, &root, 0, vec![cfg.entry], map);
        let exit = cfg.exit;
        for n in frontier {
            cfg.connect(n, exit);
        }
        cfg
    }

    fn connect(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from].succs.push(to);
        self.nodes[to].preds.push(from);
    }

    fn add_node(&mut self, path: StmtPath, map: Option<&SourceMap>, preds: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        let span = map.and_then(|m| m.stmt_span(&path));
        self.nodes.push(CfgNode {
            path: Some(path),
            span,
            ..CfgNode::synthetic()
        });
        for &p in preds {
            self.connect(p, id);
        }
        id
    }

    /// Lowers one block; returns the frontier of nodes whose control
    /// continues to whatever follows the block. An empty input block
    /// returns `preds` unchanged.
    fn lower_block(
        &mut self,
        stmts: &[Stmt],
        parent: &StmtPath,
        block: u8,
        mut preds: Vec<NodeId>,
        map: Option<&SourceMap>,
    ) -> Vec<NodeId> {
        for (i, s) in stmts.iter().enumerate() {
            let path = parent.child(block, i as u32);
            let node = self.add_node(path.clone(), map, &preds);
            self.nodes[node].uses = s.direct_reads();
            match s {
                Stmt::Assign { target, .. } => {
                    match target {
                        LValue::Var(v) => {
                            self.nodes[node].defs.push(*v);
                            self.nodes[node].assign_scalar = Some(*v);
                        }
                        LValue::Index(v, _) => self.nodes[node].weak_defs.push(*v),
                        LValue::Param(_) => {}
                    }
                    preds = vec![node];
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let then_frontier = self.lower_block(then_body, &path, 0, vec![node], map);
                    let else_frontier = self.lower_block(else_body, &path, 1, vec![node], map);
                    preds = then_frontier;
                    preds.extend(else_frontier);
                }
                Stmt::While { body, .. } => {
                    let back = self.lower_block(body, &path, 0, vec![node], map);
                    for b in back {
                        self.connect(b, node);
                    }
                    // Loop exit: the head's condition turning false.
                    preds = vec![node];
                }
                Stmt::For { var, body, .. } => {
                    self.nodes[node].defs.push(*var);
                    self.nodes[node].loop_var = Some(*var);
                    let back = self.lower_block(body, &path, 0, vec![node], map);
                    for b in back {
                        self.connect(b, node);
                    }
                    preds = vec![node];
                }
                Stmt::Loop { body } => {
                    let back = self.lower_block(body, &path, 0, vec![node], map);
                    for b in back {
                        self.connect(b, node);
                    }
                    // No exit edge: statements after an infinite loop are
                    // unreachable and get an empty frontier.
                    preds = Vec::new();
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        if let modref_spec::stmt::CallArg::Out(lv) = a {
                            match lv {
                                LValue::Var(v) => self.nodes[node].defs.push(*v),
                                LValue::Index(v, _) => self.nodes[node].weak_defs.push(*v),
                                LValue::Param(_) => {}
                            }
                        }
                    }
                    preds = vec![node];
                }
                Stmt::SignalSet { .. }
                | Stmt::Wait(WaitCond::Until(_))
                | Stmt::Wait(WaitCond::For(_))
                | Stmt::Delay(_)
                | Stmt::Skip => {
                    preds = vec![node];
                }
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::expr::{gt, lit, var};
    use modref_spec::ids::BehaviorId;
    use modref_spec::stmt::{assign, if_else, infinite_loop, while_loop};
    use modref_spec::VarId;

    fn owner() -> StmtOwner {
        StmtOwner::Behavior(BehaviorId::from_raw(0))
    }

    #[test]
    fn straight_line_chains_entry_to_exit() {
        let x = VarId::from_raw(0);
        let body = vec![assign(x, lit(1)), assign(x, lit(2))];
        let cfg = Cfg::build(owner(), &body, None);
        assert_eq!(cfg.nodes.len(), 4);
        assert_eq!(cfg.nodes[cfg.entry].succs, vec![2]);
        assert_eq!(cfg.nodes[2].succs, vec![3]);
        assert_eq!(cfg.nodes[3].succs, vec![cfg.exit]);
        assert_eq!(cfg.nodes[2].assign_scalar, Some(x));
    }

    #[test]
    fn if_forks_and_rejoins() {
        let x = VarId::from_raw(0);
        let y = VarId::from_raw(1);
        let body = vec![
            if_else(
                gt(var(x), lit(0)),
                vec![assign(y, lit(1))],
                vec![assign(y, lit(2))],
            ),
            assign(x, var(y)),
        ];
        let cfg = Cfg::build(owner(), &body, None);
        // entry, exit, if-head, then-assign, else-assign, join-assign.
        assert_eq!(cfg.nodes.len(), 6);
        let if_head = 2;
        assert_eq!(cfg.nodes[if_head].uses, vec![x]);
        assert_eq!(cfg.nodes[if_head].succs.len(), 2);
        // Both branch assigns flow into the final statement.
        let last = 5;
        assert_eq!(cfg.nodes[last].preds.len(), 2);
    }

    #[test]
    fn while_loops_back_and_exits_from_head() {
        let x = VarId::from_raw(0);
        let body = vec![while_loop(gt(var(x), lit(0)), vec![assign(x, lit(0))])];
        let cfg = Cfg::build(owner(), &body, None);
        let head = 2;
        let inner = 3;
        assert!(cfg.nodes[inner].succs.contains(&head));
        assert!(cfg.nodes[head].succs.contains(&cfg.exit));
    }

    #[test]
    fn infinite_loop_leaves_exit_unreachable() {
        let x = VarId::from_raw(0);
        let body = vec![infinite_loop(vec![assign(x, lit(1))])];
        let cfg = Cfg::build(owner(), &body, None);
        assert!(cfg.nodes[cfg.exit].preds.is_empty());
    }
}
