//! The lint registry: every lint the engine can emit, with stable codes,
//! default severities, and per-run enable/deny configuration.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Severity};

/// A registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable code, e.g. `"DF01"`.
    pub code: &'static str,
    /// Short kebab-case name, e.g. `"use-before-def"`.
    pub name: &'static str,
    /// Severity the lint fires at unless denied.
    pub default_severity: Severity,
    /// One-line description (shown by docs and `modref lint` help).
    pub description: &'static str,
    /// Longer documentation shown by `modref lint --explain CODE`: what
    /// the lint detects, why it matters, and how to fix it.
    pub explain: &'static str,
}

/// Every lint the engine knows, in code order. Structural (`ST`),
/// dataflow (`DF`), concurrency (`CC`), refinement-conformance (`RC`)
/// and deadlock/liveness (`DL`) families.
pub const LINTS: &[Lint] = &[
    Lint {
        code: "ST01",
        name: "duplicate-name",
        default_severity: Severity::Error,
        description: "two entities of the same kind share a name",
        explain: "Behaviors, variables, signals and subroutines each live in a flat \
                  namespace; a duplicate name makes every later reference ambiguous and \
                  the refiner's generated names can collide with it. Rename one of the \
                  two entities.",
    },
    Lint {
        code: "ST02",
        name: "broken-hierarchy",
        default_severity: Severity::Error,
        description: "behavior hierarchy is not a tree rooted at top (shared child, cycle, top used as child, dangling id)",
        explain: "The behavior hierarchy must form a tree rooted at `top`: every composite \
                  owns its children exclusively. A shared child, a cycle, `top` used as a \
                  child, or a dangling id breaks the execution semantics, so all deeper \
                  analyses are skipped until the hierarchy is fixed.",
    },
    Lint {
        code: "ST03",
        name: "foreign-transition",
        default_severity: Severity::Error,
        description: "transition endpoint is not a child of the composite declaring it",
        explain: "Sequential composites may only transition between their own direct \
                  children. An arc whose source or target lives elsewhere in the tree can \
                  never fire and usually indicates a copy-paste error in the composite \
                  body. Move the arc into the composite that owns both endpoints.",
    },
    Lint {
        code: "ST04",
        name: "call-arity",
        default_severity: Severity::Error,
        description: "call argument list does not match the subroutine signature",
        explain: "A `call` must supply exactly one argument per declared parameter, with \
                  `out` parameters bound to assignable lvalues. A mismatch would read or \
                  clobber arbitrary slots at simulation time, so it is rejected statically.",
    },
    Lint {
        code: "ST05",
        name: "indexing-mismatch",
        default_severity: Severity::Error,
        description: "array accessed without an index, or scalar with one",
        explain: "Array variables must always be accessed through an index expression and \
                  scalars never. Mixing the two up silently reads element 0 in some HDLs; \
                  here it is a hard error. Add or remove the index.",
    },
    Lint {
        code: "ST06",
        name: "unresolved-ref",
        default_severity: Severity::Error,
        description: "reference to a variable, signal or subroutine that does not exist",
        explain: "An expression or statement names an entity the spec never declares — \
                  typically a typo or a declaration deleted without its uses. Declare the \
                  entity or fix the reference.",
    },
    Lint {
        code: "DF01",
        name: "use-before-def",
        default_severity: Severity::Warning,
        description: "behavior-local variable may be read before any assignment on some path",
        explain: "On at least one control-flow path this behavior reads a private variable \
                  before any assignment reaches it, so the read sees the declared initial \
                  value. If that is intended, assign it explicitly at the body's start; \
                  otherwise a path is missing a definition.",
    },
    Lint {
        code: "DF02",
        name: "dead-store",
        default_severity: Severity::Warning,
        description: "assignment to a private variable whose value is never read afterwards",
        explain: "The assigned value can never be observed: every path to a read passes \
                  through another assignment first (or no read follows at all). Delete the \
                  store or move the read it was meant to feed.",
    },
    Lint {
        code: "DF03",
        name: "unused-variable",
        default_severity: Severity::Warning,
        description: "variable is never read or written anywhere in the spec",
        explain: "No statement or expression in any behavior or subroutine mentions this \
                  variable. It costs a state slot in every simulation and suggests an \
                  incomplete edit. Remove the declaration or wire it up.",
    },
    Lint {
        code: "DF04",
        name: "unused-subroutine",
        default_severity: Severity::Warning,
        description: "subroutine is never called",
        explain: "No behavior (or other subroutine) calls this subroutine, so its body is \
                  dead code that still gets validated, refined and compiled. Remove it or \
                  add the missing call.",
    },
    Lint {
        code: "DF05",
        name: "unreachable-behavior",
        default_severity: Severity::Warning,
        description: "behavior can never become active (not reachable from top, or no transition path reaches it)",
        explain: "The behavior is declared but can never execute: it hangs outside the \
                  tree reachable from `top`, or no chain of transitions inside its parent \
                  composite ever selects it. Connect it or delete it.",
    },
    Lint {
        code: "DF06",
        name: "shadowed-transition",
        default_severity: Severity::Warning,
        description: "transition can never fire (shadowed by an earlier unconditional arc from the same source, or guard is constant false)",
        explain: "Transitions from one source are tried in declaration order and the first \
                  match wins. An arc after an unconditional arc, or one whose guard is \
                  constant false, can never be chosen. Reorder the arcs or fix the guard.",
    },
    Lint {
        code: "CC01",
        name: "shared-write-race",
        default_severity: Severity::Note,
        description: "shared variable with concurrent accessors of which at least one writes — an access the refinement must serialize",
        explain: "Two concurrently-active behaviors access the same shared variable and at \
                  least one writes it. The abstract model interleaves them atomically, but \
                  any hardware refinement must serialize the access (bus + arbiter); the \
                  note marks exactly the accesses the refinement has to protect.",
    },
    Lint {
        code: "RC01",
        name: "arbiter-missing",
        default_severity: Severity::Error,
        description: "refined bus has multiple masters but no arbiter",
        explain: "A refined bus with two or more masters needs an arbiter to serialize \
                  transactions; without one, concurrent starts corrupt the address and \
                  data wires. Re-run refinement with arbitration enabled or assign the \
                  masters to different buses.",
    },
    Lint {
        code: "RC02",
        name: "address-overlap",
        default_severity: Severity::Error,
        description: "two memory modules map overlapping address ranges",
        explain: "Two memory modules on the same bus claim intersecting address ranges, so \
                  a transaction in the overlap would select both. Adjust the memory map so \
                  every address decodes to exactly one module.",
    },
    Lint {
        code: "RC03",
        name: "unmatched-send-recv",
        default_severity: Severity::Error,
        description: "message-passing bus with senders but no receivers (or vice versa) — a deadlock candidate",
        explain: "A message-passing channel's send blocks until a matching receive (and \
                  vice versa). A bus where only one side exists makes the first \
                  transaction block forever. Add the missing peer or remove the channel.",
    },
    Lint {
        code: "RC04",
        name: "width-mismatch",
        default_severity: Severity::Error,
        description: "channel data wider than the bus carrying it, or address range exceeding the bus address width",
        explain: "The refined bus physically cannot carry the mapped traffic: a data item \
                  wider than the data wires or an address beyond the address wires would \
                  be truncated in hardware. Widen the bus or split the transfer.",
    },
    Lint {
        code: "DL01",
        name: "never-enabled-wait",
        default_severity: Severity::Error,
        description: "wait whose condition is false for every value any write can produce",
        explain: "Interval analysis over every write in the spec proves this wait's \
                  condition can never evaluate true — e.g. waiting for `s == 2` when every \
                  write to `s` is 0 or 1. The process blocks forever the moment it reaches \
                  the wait, and the whole simulation deadlocks once its siblings finish or \
                  block. Fix the condition or the writes feeding it.",
    },
    Lint {
        code: "DL02",
        name: "unwritten-wait-signal",
        default_severity: Severity::Error,
        description: "wait on a signal that no concurrent process ever writes",
        explain: "The wait tests a signal that no behavior or subroutine anywhere assigns, \
                  and its initial value does not satisfy the condition — the classic \
                  forgotten half of a handshake. No execution can ever wake the process. \
                  Drive the signal from the peer process or wait on the right one.",
    },
    Lint {
        code: "DL03",
        name: "busy-loop",
        default_severity: Severity::Error,
        description: "statically-constant infinite loop containing no wait or delay",
        explain: "A `loop`, or a `while` whose guard interval analysis proves permanently \
                  true, contains no wait, delay or call: it spins forever within a single \
                  simulation instant, so time never advances and every kernel runs into \
                  its step limit. Add a `wait`/`delay` inside the loop or bound it.",
    },
    Lint {
        code: "DL04",
        name: "circular-wait",
        default_severity: Severity::Error,
        description: "circular wait: every write that could satisfy the condition sits behind waits that never pass",
        explain: "A greatest-fixpoint analysis over the inter-process wait-dependency \
                  graph (process -> wait condition -> writers) shows this wait can never \
                  pass: every write that could satisfy it is itself blocked behind waits \
                  in the same dead set. A strongly connected component in that graph is a \
                  classic circular-wait deadlock, e.g. two processes each waiting for the \
                  other to signal first. Reorder the handshake so one side signals before \
                  it waits.",
    },
    Lint {
        code: "DL05",
        name: "arbiter-no-release",
        default_severity: Severity::Error,
        description: "request raised to an arbiter with no path that ever releases it",
        explain: "A master raises a request line and waits for grant and release, but no \
                  write anywhere ever drives the request low again: the four-phase \
                  handshake's release leg is missing. If the grant never comes the master \
                  blocks at its grant wait; if it does come, the arbiter blocks \
                  re-arbitrating on `req == 0` and the acknowledge stays high, so the \
                  master's release wait blocks instead. Either way the system deadlocks. \
                  Drive the request low after the transaction completes.",
    },
];

/// Looks up a lint by code (`"DF01"`) or by name (`"use-before-def"`).
pub fn lint(code_or_name: &str) -> Option<&'static Lint> {
    LINTS
        .iter()
        .find(|l| l.code == code_or_name || l.name == code_or_name)
}

/// Per-run lint configuration: which lints are allowed (dropped), denied
/// (promoted to error), and whether all warnings are denied.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// When true, every `Warning` is promoted to `Error` (`--deny warnings`).
    pub deny_warnings: bool,
    /// Lint codes promoted to `Error` regardless of default severity.
    pub denied: BTreeSet<&'static str>,
    /// Lint codes suppressed entirely.
    pub allowed: BTreeSet<&'static str>,
}

impl LintConfig {
    /// Creates the default configuration (all lints at default severity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a `--deny` argument: a lint code/name, or the special
    /// value `warnings`.
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no known lint.
    pub fn deny(&mut self, code_or_name: &str) -> Result<(), String> {
        if code_or_name == "warnings" {
            self.deny_warnings = true;
            return Ok(());
        }
        match lint(code_or_name) {
            Some(l) => {
                self.denied.insert(l.code);
                Ok(())
            }
            None => Err(format!("unknown lint `{code_or_name}`")),
        }
    }

    /// Registers an `--allow` argument (suppresses the lint).
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no known lint.
    pub fn allow(&mut self, code_or_name: &str) -> Result<(), String> {
        match lint(code_or_name) {
            Some(l) => {
                self.allowed.insert(l.code);
                Ok(())
            }
            None => Err(format!("unknown lint `{code_or_name}`")),
        }
    }

    /// Applies the configuration to one diagnostic: `None` when the lint
    /// is allowed, otherwise the diagnostic with its effective severity.
    pub fn apply(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        if self.allowed.contains(d.code) {
            return None;
        }
        if self.denied.contains(d.code) || (self.deny_warnings && d.severity == Severity::Warning) {
            d.severity = Severity::Error;
        }
        Some(d)
    }

    /// Applies the configuration to a batch, dropping allowed lints and
    /// promoting denied ones.
    pub fn apply_all(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.into_iter().filter_map(|d| self.apply(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted_per_family() {
        let mut seen = BTreeSet::new();
        for l in LINTS {
            assert!(seen.insert(l.code), "duplicate code {}", l.code);
        }
        assert!(LINTS.len() >= 6, "ISSUE requires >= 6 distinct lint codes");
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(lint("DF01").unwrap().name, "use-before-def");
        assert_eq!(lint("use-before-def").unwrap().code, "DF01");
        assert!(lint("nope").is_none());
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut cfg = LintConfig::new();
        cfg.deny("warnings").unwrap();
        let w = Diagnostic::new("DF02", Severity::Warning, "w");
        let n = Diagnostic::new("CC01", Severity::Note, "n");
        assert_eq!(cfg.apply(w).unwrap().severity, Severity::Error);
        assert_eq!(cfg.apply(n).unwrap().severity, Severity::Note);
    }

    #[test]
    fn deny_specific_lint_promotes_notes_too() {
        let mut cfg = LintConfig::new();
        cfg.deny("shared-write-race").unwrap();
        let n = Diagnostic::new("CC01", Severity::Note, "n");
        assert_eq!(cfg.apply(n).unwrap().severity, Severity::Error);
    }

    #[test]
    fn allow_suppresses_and_unknown_errors() {
        let mut cfg = LintConfig::new();
        cfg.allow("DF03").unwrap();
        assert!(cfg
            .apply(Diagnostic::new("DF03", Severity::Warning, "x"))
            .is_none());
        assert!(cfg.deny("bogus").is_err());
        assert!(cfg.allow("bogus").is_err());
    }
}
