//! The lint registry: every lint the engine can emit, with stable codes,
//! default severities, and per-run enable/deny configuration.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Severity};

/// A registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable code, e.g. `"DF01"`.
    pub code: &'static str,
    /// Short kebab-case name, e.g. `"use-before-def"`.
    pub name: &'static str,
    /// Severity the lint fires at unless denied.
    pub default_severity: Severity,
    /// One-line description (shown by docs and `modref lint` help).
    pub description: &'static str,
}

/// Every lint the engine knows, in code order. Structural (`ST`),
/// dataflow (`DF`), concurrency (`CC`) and refinement-conformance (`RC`)
/// families.
pub const LINTS: &[Lint] = &[
    Lint {
        code: "ST01",
        name: "duplicate-name",
        default_severity: Severity::Error,
        description: "two entities of the same kind share a name",
    },
    Lint {
        code: "ST02",
        name: "broken-hierarchy",
        default_severity: Severity::Error,
        description: "behavior hierarchy is not a tree rooted at top (shared child, cycle, top used as child, dangling id)",
    },
    Lint {
        code: "ST03",
        name: "foreign-transition",
        default_severity: Severity::Error,
        description: "transition endpoint is not a child of the composite declaring it",
    },
    Lint {
        code: "ST04",
        name: "call-arity",
        default_severity: Severity::Error,
        description: "call argument list does not match the subroutine signature",
    },
    Lint {
        code: "ST05",
        name: "indexing-mismatch",
        default_severity: Severity::Error,
        description: "array accessed without an index, or scalar with one",
    },
    Lint {
        code: "ST06",
        name: "unresolved-ref",
        default_severity: Severity::Error,
        description: "reference to a variable, signal or subroutine that does not exist",
    },
    Lint {
        code: "DF01",
        name: "use-before-def",
        default_severity: Severity::Warning,
        description: "behavior-local variable may be read before any assignment on some path",
    },
    Lint {
        code: "DF02",
        name: "dead-store",
        default_severity: Severity::Warning,
        description: "assignment to a private variable whose value is never read afterwards",
    },
    Lint {
        code: "DF03",
        name: "unused-variable",
        default_severity: Severity::Warning,
        description: "variable is never read or written anywhere in the spec",
    },
    Lint {
        code: "DF04",
        name: "unused-subroutine",
        default_severity: Severity::Warning,
        description: "subroutine is never called",
    },
    Lint {
        code: "DF05",
        name: "unreachable-behavior",
        default_severity: Severity::Warning,
        description: "behavior can never become active (not reachable from top, or no transition path reaches it)",
    },
    Lint {
        code: "DF06",
        name: "shadowed-transition",
        default_severity: Severity::Warning,
        description: "transition can never fire (shadowed by an earlier unconditional arc from the same source, or guard is constant false)",
    },
    Lint {
        code: "CC01",
        name: "shared-write-race",
        default_severity: Severity::Note,
        description: "shared variable with concurrent accessors of which at least one writes — an access the refinement must serialize",
    },
    Lint {
        code: "RC01",
        name: "arbiter-missing",
        default_severity: Severity::Error,
        description: "refined bus has multiple masters but no arbiter",
    },
    Lint {
        code: "RC02",
        name: "address-overlap",
        default_severity: Severity::Error,
        description: "two memory modules map overlapping address ranges",
    },
    Lint {
        code: "RC03",
        name: "unmatched-send-recv",
        default_severity: Severity::Error,
        description: "message-passing bus with senders but no receivers (or vice versa) — a deadlock candidate",
    },
    Lint {
        code: "RC04",
        name: "width-mismatch",
        default_severity: Severity::Error,
        description: "channel data wider than the bus carrying it, or address range exceeding the bus address width",
    },
];

/// Looks up a lint by code (`"DF01"`) or by name (`"use-before-def"`).
pub fn lint(code_or_name: &str) -> Option<&'static Lint> {
    LINTS
        .iter()
        .find(|l| l.code == code_or_name || l.name == code_or_name)
}

/// Per-run lint configuration: which lints are allowed (dropped), denied
/// (promoted to error), and whether all warnings are denied.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// When true, every `Warning` is promoted to `Error` (`--deny warnings`).
    pub deny_warnings: bool,
    /// Lint codes promoted to `Error` regardless of default severity.
    pub denied: BTreeSet<&'static str>,
    /// Lint codes suppressed entirely.
    pub allowed: BTreeSet<&'static str>,
}

impl LintConfig {
    /// Creates the default configuration (all lints at default severity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a `--deny` argument: a lint code/name, or the special
    /// value `warnings`.
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no known lint.
    pub fn deny(&mut self, code_or_name: &str) -> Result<(), String> {
        if code_or_name == "warnings" {
            self.deny_warnings = true;
            return Ok(());
        }
        match lint(code_or_name) {
            Some(l) => {
                self.denied.insert(l.code);
                Ok(())
            }
            None => Err(format!("unknown lint `{code_or_name}`")),
        }
    }

    /// Registers an `--allow` argument (suppresses the lint).
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no known lint.
    pub fn allow(&mut self, code_or_name: &str) -> Result<(), String> {
        match lint(code_or_name) {
            Some(l) => {
                self.allowed.insert(l.code);
                Ok(())
            }
            None => Err(format!("unknown lint `{code_or_name}`")),
        }
    }

    /// Applies the configuration to one diagnostic: `None` when the lint
    /// is allowed, otherwise the diagnostic with its effective severity.
    pub fn apply(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        if self.allowed.contains(d.code) {
            return None;
        }
        if self.denied.contains(d.code) || (self.deny_warnings && d.severity == Severity::Warning) {
            d.severity = Severity::Error;
        }
        Some(d)
    }

    /// Applies the configuration to a batch, dropping allowed lints and
    /// promoting denied ones.
    pub fn apply_all(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.into_iter().filter_map(|d| self.apply(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted_per_family() {
        let mut seen = BTreeSet::new();
        for l in LINTS {
            assert!(seen.insert(l.code), "duplicate code {}", l.code);
        }
        assert!(LINTS.len() >= 6, "ISSUE requires >= 6 distinct lint codes");
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(lint("DF01").unwrap().name, "use-before-def");
        assert_eq!(lint("use-before-def").unwrap().code, "DF01");
        assert!(lint("nope").is_none());
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut cfg = LintConfig::new();
        cfg.deny("warnings").unwrap();
        let w = Diagnostic::new("DF02", Severity::Warning, "w");
        let n = Diagnostic::new("CC01", Severity::Note, "n");
        assert_eq!(cfg.apply(w).unwrap().severity, Severity::Error);
        assert_eq!(cfg.apply(n).unwrap().severity, Severity::Note);
    }

    #[test]
    fn deny_specific_lint_promotes_notes_too() {
        let mut cfg = LintConfig::new();
        cfg.deny("shared-write-race").unwrap();
        let n = Diagnostic::new("CC01", Severity::Note, "n");
        assert_eq!(cfg.apply(n).unwrap().severity, Severity::Error);
    }

    #[test]
    fn allow_suppresses_and_unknown_errors() {
        let mut cfg = LintConfig::new();
        cfg.allow("DF03").unwrap();
        assert!(cfg
            .apply(Diagnostic::new("DF03", Severity::Warning, "x"))
            .is_none());
        assert!(cfg.deny("bogus").is_err());
        assert!(cfg.allow("bogus").is_err());
    }
}
