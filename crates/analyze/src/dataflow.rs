//! Worklist dataflow over a [`Cfg`]: may-be-uninitialized (forward,
//! reaching-definitions flavored) and liveness (backward).
//!
//! Both analyses track a caller-supplied set of variables only — the
//! lints restrict themselves to behavior-private scalars, so there is no
//! point propagating facts about globals the body cannot reason about
//! alone.

use std::collections::HashSet;

use modref_spec::VarId;

use crate::cfg::{Cfg, NodeId};

/// A use of `var` at `node` that may execute before any assignment to
/// `var` on some path from entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UninitUse {
    /// The node performing the read.
    pub node: NodeId,
    /// The variable read.
    pub var: VarId,
}

/// Forward may-be-uninitialized analysis: at entry every tracked variable
/// is "uninitialized" (holds only its declared initializer); a strong def
/// clears the fact, a weak (array-element) def does not. Returns every
/// `(node, var)` where a tracked variable is read while possibly
/// uninitialized, in node order.
pub fn maybe_uninit_uses(cfg: &Cfg, tracked: &HashSet<VarId>) -> Vec<UninitUse> {
    let n = cfg.nodes.len();
    // IN[entry] = tracked; everything else starts empty (bottom) and grows.
    let mut input: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
    input[cfg.entry] = tracked.clone();
    let mut work: Vec<NodeId> = vec![cfg.entry];
    while let Some(node) = work.pop() {
        // OUT = IN - strong defs.
        let mut out = input[node].clone();
        for d in &cfg.nodes[node].defs {
            out.remove(d);
        }
        for &s in &cfg.nodes[node].succs {
            let before = input[s].len();
            input[s].extend(out.iter().copied());
            if input[s].len() != before {
                work.push(s);
            }
        }
    }
    let mut found = Vec::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        for &u in &node.uses {
            if tracked.contains(&u) && input[id].contains(&u) {
                found.push(UninitUse { node: id, var: u });
            }
        }
    }
    found
}

/// The set of tracked variables whose first use on some path precedes any
/// strong def — the "entry-exposed" uses. A behavior may re-activate, so
/// anything entry-exposed must be considered live at exit.
pub fn entry_exposed(cfg: &Cfg, tracked: &HashSet<VarId>) -> HashSet<VarId> {
    maybe_uninit_uses(cfg, tracked)
        .into_iter()
        .map(|u| u.var)
        .collect()
}

/// Backward liveness restricted to `tracked`. Returns per-node live-*out*
/// sets: `live_out[n]` holds the tracked variables whose current value may
/// be read after `n` executes. `live_at_exit` seeds the exit node (e.g.
/// entry-exposed vars, to model behavior re-activation).
pub fn liveness(
    cfg: &Cfg,
    tracked: &HashSet<VarId>,
    live_at_exit: &HashSet<VarId>,
) -> Vec<HashSet<VarId>> {
    let n = cfg.nodes.len();
    let mut live_out: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
    let mut live_in: Vec<HashSet<VarId>> = vec![HashSet::new(); n];
    live_in[cfg.exit] = live_at_exit
        .iter()
        .copied()
        .filter(|v| tracked.contains(v))
        .collect();
    let mut work: Vec<NodeId> = (0..n).collect();
    while let Some(node) = work.pop() {
        let mut out: HashSet<VarId> = HashSet::new();
        for &s in &cfg.nodes[node].succs {
            out.extend(live_in[s].iter().copied());
        }
        if node == cfg.exit {
            out.extend(live_in[cfg.exit].iter().copied());
        }
        // IN = (OUT - strong defs) ∪ uses ∪ weak defs. A weak def both
        // reads and writes part of the variable, so it keeps it live.
        let mut inn = out.clone();
        for d in &cfg.nodes[node].defs {
            inn.remove(d);
        }
        for u in cfg.nodes[node]
            .uses
            .iter()
            .chain(&cfg.nodes[node].weak_defs)
            .chain(cfg.nodes[node].loop_var.as_ref())
        {
            if tracked.contains(u) {
                inn.insert(*u);
            }
        }
        let changed = out != live_out[node] || inn != live_in[node];
        live_out[node] = out;
        if changed {
            live_in[node] = inn;
            for &p in &cfg.nodes[node].preds {
                work.push(p);
            }
        }
    }
    live_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::expr::{gt, lit, var};
    use modref_spec::ids::BehaviorId;
    use modref_spec::stmt::{assign, if_then, while_loop};
    use modref_spec::StmtOwner;

    fn build(body: &[modref_spec::Stmt]) -> Cfg {
        Cfg::build(StmtOwner::Behavior(BehaviorId::from_raw(0)), body, None)
    }

    #[test]
    fn read_before_write_is_flagged_and_after_is_not() {
        let x = VarId::from_raw(0);
        let y = VarId::from_raw(1);
        // y := x; x := 1; y := x  — first read of x precedes its def.
        let body = vec![assign(y, var(x)), assign(x, lit(1)), assign(y, var(x))];
        let cfg = build(&body);
        let tracked: HashSet<_> = [x].into();
        let uses = maybe_uninit_uses(&cfg, &tracked);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].var, x);
        assert_eq!(entry_exposed(&cfg, &tracked), [x].into());
    }

    #[test]
    fn branch_that_skips_the_def_still_counts() {
        let x = VarId::from_raw(0);
        let y = VarId::from_raw(1);
        // if (y > 0) { x := 1 }  ... y := x — x uninit on the else path.
        let body = vec![
            if_then(gt(var(y), lit(0)), vec![assign(x, lit(1))]),
            assign(y, var(x)),
        ];
        let cfg = build(&body);
        let uses = maybe_uninit_uses(&cfg, &[x].into());
        assert_eq!(uses.len(), 1);
    }

    #[test]
    fn dead_store_has_empty_live_out() {
        let x = VarId::from_raw(0);
        let y = VarId::from_raw(1);
        // x := 1 (dead: overwritten); x := 2; y := x.
        let body = vec![assign(x, lit(1)), assign(x, lit(2)), assign(y, var(x))];
        let cfg = build(&body);
        let tracked: HashSet<_> = [x].into();
        let live_out = liveness(&cfg, &tracked, &HashSet::new());
        // Node ids: 0 entry, 1 exit, 2..4 statements.
        assert!(!live_out[2].contains(&x), "first store is dead");
        assert!(live_out[3].contains(&x), "second store is read");
    }

    #[test]
    fn loop_keeps_loop_carried_values_live() {
        let x = VarId::from_raw(0);
        // while (x > 0) { x := x - 1 } — the body's store feeds the head.
        let body = vec![while_loop(
            gt(var(x), lit(0)),
            vec![assign(x, modref_spec::expr::sub(var(x), lit(1)))],
        )];
        let cfg = build(&body);
        let tracked: HashSet<_> = [x].into();
        let live_out = liveness(&cfg, &tracked, &HashSet::new());
        assert!(live_out[3].contains(&x), "store in body feeds loop head");
    }
}
