//! Interval abstract interpretation over specification expressions.
//!
//! The liveness lints ([`crate::deadlock`]) need to answer one question
//! about a wait condition: *can this expression ever evaluate non-zero?*
//! This module supplies the machinery: a classic interval domain
//! ([`Interval`], a non-empty `[lo, hi]` range with saturating
//! arithmetic), expression evaluation over an environment of per-entity
//! ranges ([`eval`]), and a whole-spec value-range fixpoint
//! ([`global_ranges`]) that joins every reachable write's right-hand
//! side into its target, widening after a few rounds so convergence is
//! immediate even for counting loops.
//!
//! Everything here errs toward *over*-approximation: `TOP` (the full
//! `i64` range) is always a sound answer, subroutine parameters are
//! `TOP`, array variables collapse to one interval per array, and
//! operators the simulator implements with bit-twiddling (`&`, `|`,
//! `^`, shifts, division) return `TOP` rather than risk disagreeing
//! with it. A *bigger* range can only make a wait condition look *more*
//! satisfiable, so over-approximation never produces a false deadlock
//! report — the soundness direction the DL lints need.

use std::collections::HashMap;

use modref_spec::expr::{BinOp, UnOp};
use modref_spec::stmt::CallArg;
use modref_spec::{Expr, LValue, SignalId, Spec, Stmt, VarId};

/// Rounds of plain joining before [`Interval::widen`] kicks in.
const WIDEN_AFTER: usize = 4;

/// Hard cap on fixpoint rounds; widening makes this unreachable in
/// practice, it only guards against a domain bug looping forever.
const MAX_ROUNDS: usize = 64;

/// A non-empty inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the entity may hold.
    pub lo: i64,
    /// Largest value the entity may hold.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range — "no information".
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The single value `v`.
    pub fn exact(v: i64) -> Self {
        Self { lo: v, hi: v }
    }

    /// An arbitrary range; swaps the bounds if given reversed.
    pub fn new(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// The boolean range `[0, 1]` — an unknown truth value.
    pub fn boolean() -> Self {
        Self { lo: 0, hi: 1 }
    }

    /// Whether this is the full range.
    pub fn is_top(self) -> bool {
        self == Self::TOP
    }

    /// Whether `v` lies within the range.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interpreted as a condition value: can never be non-zero.
    pub fn definitely_false(self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// Interpreted as a condition value: can never be zero.
    pub fn definitely_true(self) -> bool {
        !self.contains(0)
    }

    /// Least upper bound of two ranges.
    pub fn join(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Classic interval widening: any bound still growing after the
    /// initial joining rounds jumps straight to infinity, so ascending
    /// chains (counting loops) converge in one step.
    pub fn widen(self, next: Self) -> Self {
        Self {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn add(self, o: Self) -> Self {
        Self {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    fn sub(self, o: Self) -> Self {
        Self {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    fn mul(self, o: Self) -> Self {
        if self.is_top() || o.is_top() {
            return Self::TOP;
        }
        let products = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Self {
            lo: *products.iter().min().expect("nonempty"),
            hi: *products.iter().max().expect("nonempty"),
        }
    }

    fn neg(self) -> Self {
        Self {
            lo: self.hi.checked_neg().unwrap_or(i64::MIN),
            hi: self.lo.checked_neg().unwrap_or(i64::MAX),
        }
    }

    /// `[0,0]`, `[1,1]`, or `[0,1]` from a definite/unknown truth value.
    fn from_truth(definitely_true: bool, definitely_false: bool) -> Self {
        match (definitely_true, definitely_false) {
            (true, _) => Self::exact(1),
            (_, true) => Self::exact(0),
            _ => Self::boolean(),
        }
    }

    fn cmp_eq(self, o: Self) -> Self {
        let always = self.lo == self.hi && o.lo == o.hi && self.lo == o.lo;
        let never = self.hi < o.lo || o.hi < self.lo;
        Self::from_truth(always, never)
    }

    fn cmp_lt(self, o: Self) -> Self {
        Self::from_truth(self.hi < o.lo, self.lo >= o.hi)
    }

    fn cmp_le(self, o: Self) -> Self {
        Self::from_truth(self.hi <= o.lo, self.lo > o.hi)
    }

    fn logic_not(self) -> Self {
        Self::from_truth(self.definitely_false(), self.definitely_true())
    }

    fn logic_and(self, o: Self) -> Self {
        Self::from_truth(
            self.definitely_true() && o.definitely_true(),
            self.definitely_false() || o.definitely_false(),
        )
    }

    fn logic_or(self, o: Self) -> Self {
        Self::from_truth(
            self.definitely_true() || o.definitely_true(),
            self.definitely_false() && o.definitely_false(),
        )
    }
}

/// Per-entity value ranges for a whole specification, indexed by the
/// raw arena indices of [`VarId`] and [`SignalId`].
#[derive(Debug, Clone)]
pub struct Ranges {
    /// One interval per variable (whole array for array variables).
    pub vars: Vec<Interval>,
    /// One interval per signal.
    pub signals: Vec<Interval>,
}

impl Ranges {
    /// The range of a variable (`TOP` for foreign ids).
    pub fn var(&self, v: VarId) -> Interval {
        self.vars.get(v.index()).copied().unwrap_or(Interval::TOP)
    }

    /// The range of a signal (`TOP` for foreign ids).
    pub fn signal(&self, s: SignalId) -> Interval {
        self.signals
            .get(s.index())
            .copied()
            .unwrap_or(Interval::TOP)
    }
}

/// Evaluates an expression over `ranges`, with per-signal `overrides`
/// taking precedence (the DL05 check pins an acknowledge line low or
/// high and asks what a wait condition can still do).
pub fn eval_with(e: &Expr, ranges: &Ranges, overrides: &[(SignalId, Interval)]) -> Interval {
    match e {
        Expr::Lit(v) => Interval::exact(*v),
        Expr::Var(v) | Expr::Index(v, _) => ranges.var(*v),
        Expr::Signal(s) => overrides
            .iter()
            .find(|(id, _)| id == s)
            .map(|&(_, iv)| iv)
            .unwrap_or_else(|| ranges.signal(*s)),
        // Parameters are bound per call frame; without tracking call
        // sites the only sound answer is "anything".
        Expr::Param(_) => Interval::TOP,
        Expr::Unary(op, inner) => {
            let iv = eval_with(inner, ranges, overrides);
            match op {
                UnOp::Neg => iv.neg(),
                UnOp::Not => iv.logic_not(),
            }
        }
        Expr::Binary(op, l, r) => {
            let a = eval_with(l, ranges, overrides);
            let b = eval_with(r, ranges, overrides);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Eq => a.cmp_eq(b),
                BinOp::Ne => a.cmp_eq(b).logic_not(),
                BinOp::Lt => a.cmp_lt(b),
                BinOp::Le => a.cmp_le(b),
                BinOp::Gt => b.cmp_lt(a),
                BinOp::Ge => b.cmp_le(a),
                BinOp::And => a.logic_and(b),
                BinOp::Or => a.logic_or(b),
                // Bit-level and division operators: modelling them
                // precisely would have to match the simulator's exact
                // semantics (division by zero yields 0, shifts mask);
                // `TOP` is sound and these rarely appear in guards.
                BinOp::Div
                | BinOp::Rem
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Shl
                | BinOp::Shr => Interval::TOP,
            }
        }
    }
}

/// Evaluates an expression over `ranges` with no overrides.
pub fn eval(e: &Expr, ranges: &Ranges) -> Interval {
    eval_with(e, ranges, &[])
}

/// The target of one write site: a variable or a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// A variable (arrays write the whole-array interval).
    Var(VarId),
    /// A signal.
    Signal(SignalId),
}

/// Collects every `(entity, value)` write a statement performs, where
/// `None` means "unknown value" (a call's `out` argument). Recurses
/// into nested bodies.
pub fn collect_writes<'a>(stmt: &'a Stmt, out: &mut Vec<(Entity, Option<&'a Expr>)>) {
    match stmt {
        Stmt::Assign { target, value } => match target {
            LValue::Var(v) | LValue::Index(v, _) => out.push((Entity::Var(*v), Some(value))),
            LValue::Param(_) => {}
        },
        Stmt::SignalSet { signal, value } => out.push((Entity::Signal(*signal), Some(value))),
        Stmt::Call { args, .. } => {
            for a in args {
                if let CallArg::Out(LValue::Var(v) | LValue::Index(v, _)) = a {
                    out.push((Entity::Var(*v), None));
                }
            }
        }
        Stmt::For { var, from, to, .. } => {
            // The induction variable sweeps `from ..= to`; joining both
            // bound expressions covers every value it takes.
            out.push((Entity::Var(*var), Some(from)));
            out.push((Entity::Var(*var), Some(to)));
        }
        _ => {}
    }
    for body in stmt.bodies() {
        for s in body {
            collect_writes(s, out);
        }
    }
}

/// Computes sound value ranges for every variable and signal: the
/// initial value joined with the abstract value of every write anywhere
/// in the spec (all behavior bodies and all subroutine bodies),
/// iterated to a fixpoint with widening.
pub fn global_ranges(spec: &Spec) -> Ranges {
    let mut ranges = Ranges {
        vars: spec
            .variables()
            .map(|(_, v)| Interval::exact(v.init()))
            .collect(),
        signals: spec
            .signals()
            .map(|(_, s)| Interval::exact(s.init()))
            .collect(),
    };

    let mut writes: Vec<(Entity, Option<&Expr>)> = Vec::new();
    for (_, b) in spec.behaviors() {
        if let Some(body) = b.body() {
            for s in body {
                collect_writes(s, &mut writes);
            }
        }
    }
    for (_, sub) in spec.subroutines() {
        for s in sub.body() {
            collect_writes(s, &mut writes);
        }
    }

    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for (entity, value) in &writes {
            let written = match value {
                Some(e) => eval(e, &ranges),
                None => Interval::TOP,
            };
            let slot = match entity {
                Entity::Var(v) => &mut ranges.vars[v.index()],
                Entity::Signal(s) => &mut ranges.signals[s.index()],
            };
            let mut next = slot.join(written);
            if round >= WIDEN_AFTER {
                next = slot.widen(next);
            }
            if next != *slot {
                *slot = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ranges
}

/// Like [`global_ranges`] but with a caller-supplied filter deciding
/// which write sites participate; everything excluded contributes only
/// its entity's initial value. The deadlock engine uses this to drop
/// writes that sit behind never-satisfied waits. `site_values` carries
/// pre-evaluated write values (under the *full* ranges, which
/// over-approximates what the write can ever produce).
pub fn ranges_from_writes(
    spec: &Spec,
    site_values: &HashMap<usize, (Entity, Interval)>,
    live: impl Fn(usize) -> bool,
) -> Ranges {
    let mut ranges = Ranges {
        vars: spec
            .variables()
            .map(|(_, v)| Interval::exact(v.init()))
            .collect(),
        signals: spec
            .signals()
            .map(|(_, s)| Interval::exact(s.init()))
            .collect(),
    };
    for (&site, &(entity, written)) in site_values {
        if !live(site) {
            continue;
        }
        let slot = match entity {
            Entity::Var(v) => &mut ranges.vars[v.index()],
            Entity::Signal(s) => &mut ranges.signals[s.index()],
        };
        *slot = slot.join(written);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::behavior::{Behavior, BehaviorKind};
    use modref_spec::expr::{self, lit, signal, var};
    use modref_spec::stmt::{assign, if_then, set_signal, while_loop};
    use modref_spec::DataType;

    #[test]
    fn interval_comparisons_are_three_valued() {
        let a = Interval::new(0, 5);
        let b = Interval::new(10, 20);
        assert!(a.cmp_lt(b).definitely_true());
        assert!(b.cmp_lt(a).definitely_false());
        assert_eq!(a.cmp_eq(b), Interval::exact(0));
        assert_eq!(a.cmp_eq(Interval::new(3, 7)), Interval::boolean());
        assert!(Interval::exact(4)
            .cmp_eq(Interval::exact(4))
            .definitely_true());
    }

    #[test]
    fn widening_jumps_growing_bounds_to_infinity() {
        let prev = Interval::new(0, 10);
        let grown = Interval::new(0, 11);
        let w = prev.widen(grown);
        assert_eq!(w.lo, 0);
        assert_eq!(w.hi, i64::MAX);
    }

    #[test]
    fn saturating_arithmetic_never_wraps() {
        let big = Interval::exact(i64::MAX);
        assert_eq!(big.add(Interval::exact(1)).hi, i64::MAX);
        assert_eq!(Interval::exact(i64::MIN).neg().hi, i64::MAX);
    }

    #[test]
    fn global_ranges_join_writes_and_widen_loops() {
        let mut spec = Spec::new("t");
        let leaf = spec.add_behavior(Behavior::new("L", BehaviorKind::Leaf { body: vec![] }));
        let x = spec.add_variable("x", DataType::int(16), 0, Some(leaf));
        let m = spec.add_variable("mode", DataType::int(8), 1, Some(leaf));
        let s = spec.add_signal("go", DataType::Bit, 0);
        *spec.behavior_mut(leaf).body_mut().unwrap() = vec![
            assign(m, lit(2)),
            while_loop(
                expr::lt(var(x), lit(10)),
                vec![assign(x, expr::add(var(x), lit(1)))],
            ),
            set_signal(s, lit(1)),
        ];
        spec.set_top(leaf);
        let r = global_ranges(&spec);
        // mode holds 1 (init) or 2 (the write); never 3.
        assert_eq!(r.var(m), Interval::new(1, 2));
        assert!(!eval(&expr::eq(var(m), lit(3)), &r).contains(1));
        // x grows without a static bound on the joins -> widened above.
        assert!(r.var(x).hi >= 10);
        assert_eq!(r.var(x).lo, 0);
        // go is written 1, initialized 0.
        assert_eq!(r.signal(s), Interval::new(0, 1));
    }

    #[test]
    fn eval_with_overrides_pins_signals() {
        let mut spec = Spec::new("t");
        let leaf = spec.add_behavior(Behavior::new("L", BehaviorKind::Leaf { body: vec![] }));
        let ack = spec.add_signal("ack", DataType::Bit, 0);
        *spec.behavior_mut(leaf).body_mut().unwrap() = vec![set_signal(ack, lit(1))];
        spec.set_top(leaf);
        let r = global_ranges(&spec);
        let cond = expr::eq(signal(ack), lit(1));
        assert_eq!(eval(&cond, &r), Interval::boolean());
        let pinned = eval_with(&cond, &r, &[(ack, Interval::exact(0))]);
        assert!(pinned.definitely_false());
    }

    #[test]
    fn collect_writes_recurses_and_marks_out_args_unknown() {
        let mut spec = Spec::new("t");
        let leaf = spec.add_behavior(Behavior::new("L", BehaviorKind::Leaf { body: vec![] }));
        let x = spec.add_variable("x", DataType::int(16), 0, Some(leaf));
        let body = vec![if_then(lit(1), vec![assign(x, lit(7))])];
        let mut out = Vec::new();
        for s in &body {
            collect_writes(s, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Entity::Var(x));
        assert!(out[0].1.is_some());
    }
}
