//! Dataflow-powered lints (`DF01`–`DF06`): use-before-def, dead stores,
//! unused variables/subroutines, unreachable behaviors and shadowed
//! transitions.

use std::collections::HashSet;

use modref_graph::access::const_value;
use modref_spec::visit;
use modref_spec::{
    BehaviorId, BehaviorKind, SourceMap, Spec, StmtOwner, SubroutineId, TransitionTarget, VarId,
};

use crate::cfg::Cfg;
use crate::dataflow::{entry_exposed, liveness, maybe_uninit_uses};
use crate::diag::{Diagnostic, Severity};

/// Runs every dataflow lint over the spec. The spec must have a sane
/// hierarchy (no `ST02` findings) — the caller gates on that.
pub fn flow_lints(spec: &Spec, map: &SourceMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    per_body_lints(spec, map, &mut out);
    unused_decl_lints(spec, map, &mut out);
    unreachable_behavior_lints(spec, map, &mut out);
    transition_lints(spec, map, &mut out);
    out
}

/// The behavior-private scalar variables of `b` — the only variables a
/// per-body analysis can reason about completely.
fn private_scalars(spec: &Spec, b: BehaviorId) -> HashSet<VarId> {
    spec.variables()
        .filter(|(_, v)| v.scope() == Some(b) && !v.ty().is_array())
        .map(|(id, _)| id)
        .collect()
}

fn var_name(spec: &Spec, v: VarId) -> String {
    spec.variable(v).name().to_string()
}

/// DF01 (use-before-def) + DF02 (dead store), per leaf body.
fn per_body_lints(spec: &Spec, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    for (bid, b) in spec.behaviors() {
        let Some(body) = b.body() else { continue };
        let private = private_scalars(spec, bid);
        if private.is_empty() {
            continue;
        }
        let cfg = Cfg::build(StmtOwner::Behavior(bid), body, Some(map));

        // DF01: only for private scalars the body *does* assign somewhere —
        // reading a variable the body never writes just uses its declared
        // initializer, which is the normal way to consume a constant.
        let defined_somewhere: HashSet<VarId> = cfg
            .nodes
            .iter()
            .flat_map(|n| n.defs.iter().copied())
            .filter(|v| private.contains(v))
            .collect();
        let mut reported: HashSet<VarId> = HashSet::new();
        for u in maybe_uninit_uses(&cfg, &defined_somewhere) {
            // `x := x + 1` reads the initializer on purpose; skip
            // self-updates.
            if cfg.nodes[u.node].defs.contains(&u.var) {
                continue;
            }
            if !reported.insert(u.var) {
                continue;
            }
            let name = var_name(spec, u.var);
            out.push(
                Diagnostic::new(
                    "DF01",
                    Severity::Warning,
                    format!(
                        "variable `{name}` may be read before `{}` assigns it; only the declared initializer is available on that path",
                        b.name()
                    ),
                )
                .with_span(cfg.nodes[u.node].span.or_else(|| map.variable_span(u.var)))
                .with_object(name.clone())
                .with_fix(format!("assign `{name}` before the first read")),
            );
        }

        // DF02: a scalar store whose value no later read (nor a
        // re-activation of the behavior) can observe.
        let exposed = entry_exposed(&cfg, &private);
        let live_out = liveness(&cfg, &private, &exposed);
        for (id, node) in cfg.nodes.iter().enumerate() {
            let Some(v) = node.assign_scalar else {
                continue;
            };
            if !private.contains(&v) || live_out[id].contains(&v) {
                continue;
            }
            let name = var_name(spec, v);
            out.push(
                Diagnostic::new(
                    "DF02",
                    Severity::Warning,
                    format!("value assigned to `{name}` in `{}` is never read", b.name()),
                )
                .with_span(node.span.or_else(|| map.variable_span(v)))
                .with_object(name.clone())
                .with_fix(format!("remove the assignment or use `{name}` afterwards")),
            );
        }
    }
}

/// DF03 (unused variable) + DF04 (unused subroutine): declarations no
/// body, guard or call ever touches.
fn unused_decl_lints(spec: &Spec, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let mut used_vars: HashSet<VarId> = HashSet::new();
    let mut called: HashSet<SubroutineId> = HashSet::new();
    fn scan(
        stmts: &[modref_spec::Stmt],
        used_vars: &mut HashSet<VarId>,
        called: &mut HashSet<SubroutineId>,
    ) {
        visit::for_each_stmt(stmts, &mut |s| {
            used_vars.extend(s.direct_reads());
            used_vars.extend(s.direct_writes());
            if let modref_spec::Stmt::Call { sub, .. } = s {
                called.insert(*sub);
            }
        });
    }
    for (_, b) in spec.behaviors() {
        if let Some(body) = b.body() {
            scan(body, &mut used_vars, &mut called);
        }
        for t in b.transitions() {
            if let Some(cond) = &t.cond {
                used_vars.extend(cond.reads());
            }
        }
    }
    for (_, sub) in spec.subroutines() {
        scan(sub.body(), &mut used_vars, &mut called);
    }

    for (id, v) in spec.variables() {
        if !used_vars.contains(&id) {
            out.push(
                Diagnostic::new(
                    "DF03",
                    Severity::Warning,
                    format!("variable `{}` is never used", v.name()),
                )
                .with_span(map.variable_span(id))
                .with_object(v.name().to_string())
                .with_fix("remove the declaration".to_string()),
            );
        }
    }
    for (id, s) in spec.subroutines() {
        if !called.contains(&id) {
            out.push(
                Diagnostic::new(
                    "DF04",
                    Severity::Warning,
                    format!("subroutine `{}` is never called", s.name()),
                )
                .with_span(map.subroutine_span(id))
                .with_object(s.name().to_string())
                .with_fix("remove the subroutine".to_string()),
            );
        }
    }
}

/// DF05: behaviors that can never become active — either not part of the
/// hierarchy under top at all, or children of a `seq` composite no
/// transition path reaches.
fn unreachable_behavior_lints(spec: &Spec, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let reachable: HashSet<BehaviorId> = spec.reachable().into_iter().collect();
    for (id, b) in spec.behaviors() {
        if !reachable.contains(&id) {
            out.push(
                Diagnostic::new(
                    "DF05",
                    Severity::Warning,
                    format!(
                        "behavior `{}` is not reachable from the top hierarchy",
                        b.name()
                    ),
                )
                .with_span(map.behavior_span(id))
                .with_object(b.name().to_string())
                .with_fix("add it as a child of a reachable composite, or remove it".to_string()),
            );
        }
    }

    // Within each reachable seq composite, replay the scheduler's arc
    // semantics: execution starts at children[0]; when a child completes,
    // the first matching declared arc from it fires; a child with arcs
    // none of which fire completes the composite; a child with *no* arcs
    // falls through to the next child in declaration order.
    for (cid, b) in spec.behaviors() {
        if !reachable.contains(&cid) {
            continue;
        }
        let BehaviorKind::Seq {
            children,
            transitions,
        } = b.kind()
        else {
            continue;
        };
        let (Some(&first), false) = (children.first(), transitions.is_empty()) else {
            continue;
        };
        let mut active: HashSet<BehaviorId> = HashSet::new();
        let mut work = vec![first];
        while let Some(c) = work.pop() {
            if !active.insert(c) {
                continue;
            }
            let arcs: Vec<_> = transitions.iter().filter(|t| t.from == c).collect();
            if arcs.is_empty() {
                // Fall through to the next sibling by index.
                if let Some(pos) = children.iter().position(|&x| x == c) {
                    if let Some(&next) = children.get(pos + 1) {
                        work.push(next);
                    }
                }
                continue;
            }
            for t in arcs {
                let fires = match &t.cond {
                    None => Some(true),
                    Some(c) => const_value(c).map(|v| v != 0),
                };
                if fires != Some(false) {
                    if let TransitionTarget::Behavior(to) = t.to {
                        work.push(to);
                    }
                }
                if fires == Some(true) {
                    // Later arcs from this child can never be consulted.
                    break;
                }
            }
        }
        for &c in children {
            if !active.contains(&c) {
                let name = spec.behavior(c).name().to_string();
                out.push(
                    Diagnostic::new(
                        "DF05",
                        Severity::Warning,
                        format!(
                            "behavior `{name}` can never become active: no transition path in `{}` reaches it",
                            b.name()
                        ),
                    )
                    .with_span(map.behavior_span(c))
                    .with_object(name)
                    .with_fix("add a transition targeting it, or remove it from the composite".to_string()),
                );
            }
        }
    }
}

/// DF06: transitions that can never fire — shadowed by an earlier
/// always-firing arc from the same source, or guarded by a constant-false
/// expression.
fn transition_lints(spec: &Spec, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    for (cid, b) in spec.behaviors() {
        let mut always_fired: HashSet<BehaviorId> = HashSet::new();
        for (i, t) in b.transitions().iter().enumerate() {
            let from_name = spec.behavior(t.from).name().to_string();
            let span = map.transition_span(cid, i);
            if always_fired.contains(&t.from) {
                out.push(
                    Diagnostic::new(
                        "DF06",
                        Severity::Warning,
                        format!(
                            "transition {i} from `{from_name}` in `{}` can never fire; an earlier arc from `{from_name}` always fires first",
                            b.name()
                        ),
                    )
                    .with_span(span)
                    .with_object(from_name.clone())
                    .with_fix("reorder the arcs or tighten the earlier guard".to_string()),
                );
                continue;
            }
            match &t.cond {
                None => {
                    always_fired.insert(t.from);
                }
                Some(c) => match const_value(c) {
                    Some(0) => {
                        out.push(
                            Diagnostic::new(
                                "DF06",
                                Severity::Warning,
                                format!(
                                    "transition {i} from `{from_name}` in `{}` can never fire; its guard is constant false",
                                    b.name()
                                ),
                            )
                            .with_span(span)
                            .with_object(from_name.clone())
                            .with_fix("remove the arc or fix the guard".to_string()),
                        );
                    }
                    Some(_) => {
                        always_fired.insert(t.from);
                    }
                    None => {}
                },
            }
        }
    }
}
