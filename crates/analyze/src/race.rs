//! Concurrency race lint (`CC01`): shared variables with concurrent
//! accessors where at least one writes.
//!
//! In the functional model of the paper, such accesses are *expected* —
//! they are exactly the channels refinement must map onto arbitrated
//! memories and buses. The lint therefore reports a [`Severity::Note`],
//! surfacing the refinement obligation rather than condemning the spec.

use std::collections::HashMap;

use modref_graph::AccessGraph;
use modref_spec::{BehaviorId, BehaviorKind, SourceMap, Spec};

use crate::diag::{Diagnostic, Severity};

/// Walks the spec's concurrent composites and the access graph, emitting
/// one `CC01` note per shared variable with a concurrent writer.
pub fn race_lints(spec: &Spec, graph: &AccessGraph, map: &SourceMap) -> Vec<Diagnostic> {
    let parents = spec.parent_map();
    let mut out = Vec::new();
    for (vid, v) in spec.variables() {
        let accessors = graph.behaviors_accessing(vid);
        if accessors.len() < 2 {
            continue;
        }
        let writers = graph.writers_of(vid);
        if writers.is_empty() {
            continue;
        }
        if let Some((a, b)) = first_concurrent_pair(spec, &parents, &accessors, &writers) {
            out.push(
                Diagnostic::new(
                    "CC01",
                    Severity::Note,
                    format!(
                        "shared variable `{}` is written by `{}` and accessed by `{}`, which run concurrently; refinement must serialize these accesses",
                        v.name(),
                        spec.behavior(a).name(),
                        spec.behavior(b).name()
                    ),
                )
                .with_span(map.variable_span(vid))
                .with_object(v.name().to_string())
                .with_fix(
                    "map the variable to an arbitrated global memory (Models 1-4) during refinement"
                        .to_string(),
                ),
            );
        }
    }
    out
}

/// The first `(writer, other)` pair of accessors that can run at the same
/// time, in the deterministic order of the sorted accessor lists.
fn first_concurrent_pair(
    spec: &Spec,
    parents: &HashMap<BehaviorId, BehaviorId>,
    accessors: &[BehaviorId],
    writers: &[BehaviorId],
) -> Option<(BehaviorId, BehaviorId)> {
    for &w in writers {
        for &other in accessors {
            if other != w && concurrent(spec, parents, w, other) {
                return Some((w, other));
            }
        }
    }
    None
}

/// Two behaviors run concurrently iff their lowest common ancestor is a
/// `conc` composite and neither is an ancestor of the other (an ancestor
/// only touches the variable in guards, evaluated between child steps).
fn concurrent(
    spec: &Spec,
    parents: &HashMap<BehaviorId, BehaviorId>,
    a: BehaviorId,
    b: BehaviorId,
) -> bool {
    let path_a = path_to_root(parents, a);
    let mut cur = b;
    loop {
        if let Some(pos) = path_a.iter().position(|&x| x == cur) {
            // `cur` is the LCA. Concurrent only if it is a conc composite
            // strictly above both endpoints.
            if cur == a || cur == b {
                return false;
            }
            let _ = pos;
            return matches!(spec.behavior(cur).kind(), BehaviorKind::Concurrent { .. });
        }
        match parents.get(&cur) {
            Some(&p) => cur = p,
            None => return false,
        }
    }
}

fn path_to_root(parents: &HashMap<BehaviorId, BehaviorId>, mut b: BehaviorId) -> Vec<BehaviorId> {
    let mut path = vec![b];
    while let Some(&p) = parents.get(&b) {
        path.push(p);
        b = p;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt, SourceMap};

    #[test]
    fn concurrent_writer_and_reader_are_flagged() {
        let mut b = SpecBuilder::new("race");
        let x = b.var_int("x", 16, 0);
        let w = b.leaf("W", vec![stmt::assign(x, expr::lit(1))]);
        let y = b.var_int("y", 16, 0);
        let r = b.leaf("R", vec![stmt::assign(y, expr::var(x))]);
        let top = b.concurrent("Top", vec![w, r]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        let diags = race_lints(&spec, &graph, &SourceMap::default());
        let cc: Vec<_> = diags.iter().filter(|d| d.code == "CC01").collect();
        assert_eq!(cc.len(), 1, "{diags:?}");
        assert_eq!(cc[0].object.as_deref(), Some("x"));
        assert_eq!(cc[0].severity, Severity::Note);
    }

    #[test]
    fn sequential_accessors_do_not_race() {
        let mut b = SpecBuilder::new("seq");
        let x = b.var_int("x", 16, 0);
        let w = b.leaf("W", vec![stmt::assign(x, expr::lit(1))]);
        let y = b.var_int("y", 16, 0);
        let r = b.leaf("R", vec![stmt::assign(y, expr::var(x))]);
        let top = b.seq_in_order("Top", vec![w, r]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        let diags = race_lints(&spec, &graph, &SourceMap::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn concurrent_readers_without_writer_do_not_race() {
        let mut b = SpecBuilder::new("readers");
        let x = b.var_int("x", 16, 7);
        let y = b.var_int("y", 16, 0);
        let z = b.var_int("z", 16, 0);
        let r1 = b.leaf("R1", vec![stmt::assign(y, expr::var(x))]);
        let r2 = b.leaf("R2", vec![stmt::assign(z, expr::var(x))]);
        let top = b.concurrent("Top", vec![r1, r2]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        let diags = race_lints(&spec, &graph, &SourceMap::default());
        assert!(
            diags.iter().all(|d| d.object.as_deref() != Some("x")),
            "{diags:?}"
        );
    }
}
