//! The diagnostic type and its human/JSON renderers.
//!
//! A [`Diagnostic`] is one finding of one lint: a stable code, a
//! severity, a message, and optionally a source [`Span`], the name of the
//! object it concerns, and a suggested fix. Renderers follow the
//! `modref-obs` JSONL conventions — one `{"k": "diag", ...}` object per
//! line plus a trailing `{"k": "lint_summary", ...}` — so `modref report`
//! tooling and the CI JSON-parse check can consume lint output with the
//! same strict parser used for traces.

use std::fmt;

use modref_obs::json;
use modref_spec::Span;

/// How serious a diagnostic is. Ordering is `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, not necessarily wrong (e.g. a shared
    /// variable the refinement will have to serialize).
    Note,
    /// Likely defect that does not invalidate the model.
    Warning,
    /// Definite defect; `modref lint` exits nonzero.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderers ("note", "warning", "error").
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of one lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `"DF01"`.
    pub code: &'static str,
    /// Effective severity (after any `--deny` promotion).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source position, when the spec came from text.
    pub span: Option<Span>,
    /// Name of the object the finding concerns (variable, behavior, bus...).
    pub object: Option<String>,
    /// A suggested fix, when one is mechanical enough to state.
    pub fix: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no span, object or fix.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            span: None,
            object: None,
            fix: None,
        }
    }

    /// Attaches a source position.
    #[must_use]
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Names the object the finding concerns.
    #[must_use]
    pub fn with_object(mut self, object: impl Into<String>) -> Self {
        self.object = Some(object.into());
        self
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_fix(mut self, fix: impl Into<String>) -> Self {
        self.fix = Some(fix.into());
        self
    }

    /// Renders `file:line:col: severity[CODE] message` (position omitted
    /// when unknown, `file` omitted when empty).
    pub fn render_human(&self, file: &str) -> String {
        let mut out = String::new();
        if let Some(span) = self.span {
            if file.is_empty() {
                out.push_str(&format!("{span}: "));
            } else {
                out.push_str(&format!("{file}:{span}: "));
            }
        } else if !file.is_empty() {
            out.push_str(&format!("{file}: "));
        }
        out.push_str(&format!(
            "{}[{}] {}",
            self.severity.label(),
            self.code,
            self.message
        ));
        if let Some(fix) = &self.fix {
            out.push_str(&format!("\n  fix: {fix}"));
        }
        out
    }

    /// Renders the diagnostic as one JSONL object (no trailing newline).
    /// Absent fields (span/object/fix) are omitted, not nulled.
    pub fn render_json(&self, file: &str) -> String {
        let mut out = String::from("{\"k\": \"diag\", \"code\": ");
        json::write_str(&mut out, self.code);
        out.push_str(", \"severity\": ");
        json::write_str(&mut out, self.severity.label());
        if !file.is_empty() {
            out.push_str(", \"file\": ");
            json::write_str(&mut out, file);
        }
        if let Some(span) = self.span {
            out.push_str(", \"line\": ");
            json::write_u64(&mut out, u64::from(span.line));
            out.push_str(", \"col\": ");
            json::write_u64(&mut out, u64::from(span.col));
        }
        if let Some(object) = &self.object {
            out.push_str(", \"object\": ");
            json::write_str(&mut out, object);
        }
        out.push_str(", \"message\": ");
        json::write_str(&mut out, &self.message);
        if let Some(fix) = &self.fix {
            out.push_str(", \"fix\": ");
            json::write_str(&mut out, fix);
        }
        out.push('}');
        out
    }
}

/// Counts of diagnostics per severity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Number of error diagnostics.
    pub errors: usize,
    /// Number of warning diagnostics.
    pub warnings: usize,
    /// Number of note diagnostics.
    pub notes: usize,
}

impl Totals {
    /// Tallies a batch of diagnostics.
    pub fn of(diags: &[Diagnostic]) -> Self {
        let mut t = Totals::default();
        for d in diags {
            match d.severity {
                Severity::Error => t.errors += 1,
                Severity::Warning => t.warnings += 1,
                Severity::Note => t.notes += 1,
            }
        }
        t
    }

    /// Total diagnostic count.
    pub fn total(&self) -> usize {
        self.errors + self.warnings + self.notes
    }
}

/// Renders a batch of diagnostics as JSONL: one `diag` object per line
/// and a final `lint_summary` line with per-severity totals.
pub fn render_json_lines(diags: &[Diagnostic], file: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_json(file));
        out.push('\n');
    }
    let t = Totals::of(diags);
    out.push_str("{\"k\": \"lint_summary\", \"errors\": ");
    json::write_u64(&mut out, t.errors as u64);
    out.push_str(", \"warnings\": ");
    json::write_u64(&mut out, t.warnings as u64);
    out.push_str(", \"notes\": ");
    json::write_u64(&mut out, t.notes as u64);
    out.push_str(", \"total\": ");
    json::write_u64(&mut out, t.total() as u64);
    out.push_str("}\n");
    out
}

/// Sorts diagnostics into the canonical report order — by position
/// (unknown positions last), then code, then message — and drops exact
/// duplicates, so golden tests and `--format json` output are
/// byte-stable regardless of which pass emitted a finding first.
///
/// Dedup is by full equality, not by `(code, span)`: distinct findings
/// of one lint can legitimately share a position (or lack one), e.g.
/// the two sides of an unmatched send/receive pair.
pub fn sort_canonical(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        let ka = a.span.map_or((u32::MAX, u32::MAX), |s| (s.line, s.col));
        let kb = b.span.map_or((u32::MAX, u32::MAX), |s| (s.line, s.col));
        ka.cmp(&kb)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    diags.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn human_rendering_includes_position_and_code() {
        let d = Diagnostic::new("DF01", Severity::Warning, "use before def of `x`")
            .with_span(Some(Span::new(3, 7)))
            .with_fix("initialize `x` before the loop");
        let s = d.render_human("a.spec");
        assert!(s.starts_with("a.spec:3:7: warning[DF01]"), "{s}");
        assert!(s.contains("fix: initialize"), "{s}");
    }

    #[test]
    fn json_rendering_escapes_and_omits_absent_fields() {
        let d = Diagnostic::new("CC01", Severity::Note, "race on `v\"q`");
        let s = d.render_json("");
        assert!(s.contains("\"k\": \"diag\""), "{s}");
        assert!(s.contains("v\\\"q"), "{s}");
        assert!(!s.contains("line"), "{s}");
        assert!(!s.contains("fix"), "{s}");
        // Strict round-trip through the obs parser.
        let v = json::parse(&s).expect("valid json");
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["severity"].as_str(), Some("note"));
    }

    #[test]
    fn jsonl_batch_ends_with_summary() {
        let diags = vec![
            Diagnostic::new("DF02", Severity::Warning, "dead store"),
            Diagnostic::new("RC01", Severity::Error, "no arbiter"),
        ];
        let text = render_json_lines(&diags, "m.spec");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            json::parse(line).expect("each line parses");
        }
        assert!(lines[2].contains("\"lint_summary\""), "{}", lines[2]);
        assert!(lines[2].contains("\"errors\": 1"), "{}", lines[2]);
        assert!(lines[2].contains("\"total\": 2"), "{}", lines[2]);
    }

    #[test]
    fn canonical_sort_puts_unknown_positions_last() {
        let mut diags = vec![
            Diagnostic::new("ZZ", Severity::Note, "nowhere"),
            Diagnostic::new("AA", Severity::Note, "line9").with_span(Some(Span::new(9, 1))),
            Diagnostic::new("AA", Severity::Note, "line2").with_span(Some(Span::new(2, 5))),
        ];
        sort_canonical(&mut diags);
        assert_eq!(diags[0].message, "line2");
        assert_eq!(diags[1].message, "line9");
        assert_eq!(diags[2].message, "nowhere");
    }

    #[test]
    fn canonical_sort_drops_exact_duplicates_only() {
        let twice =
            Diagnostic::new("DL02", Severity::Error, "dup").with_span(Some(Span::new(4, 2)));
        let mut diags = vec![
            twice.clone(),
            // Same code + span, different message: both kept.
            Diagnostic::new("DL02", Severity::Error, "other").with_span(Some(Span::new(4, 2))),
            twice,
        ];
        sort_canonical(&mut diags);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].message, "dup");
        assert_eq!(diags[1].message, "other");
    }
}
