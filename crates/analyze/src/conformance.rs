//! Refinement-conformance lints (`RC01`–`RC04`), run against the *output*
//! of refinement under each implementation model.
//!
//! The lints operate on neutral view structs rather than the refiner's
//! own types, so this crate stays independent of `modref-core`: the core
//! crate builds a [`RefinedView`] from its `Refined` result and hands it
//! here. A candidate that trips any of these lints is structurally broken
//! — simulating it would waste time or deadlock — so the explorer rejects
//! it before simulation.

use crate::diag::{Diagnostic, Severity};

/// A bus of the refined architecture, as seen by the conformance lints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusView {
    /// Bus name (`b1`, `b2`, ...).
    pub name: String,
    /// Data-line width in bits.
    pub data_bits: u32,
    /// Address-line width in bits.
    pub addr_bits: u32,
    /// Master behaviors driving transactions.
    pub masters: Vec<String>,
    /// Slave behaviors serving requests.
    pub slaves: Vec<String>,
    /// Whether an arbiter guards the bus.
    pub has_arbiter: bool,
    /// The widest single access any channel routed over this bus
    /// performs; must not exceed `data_bits`.
    pub required_data_bits: u32,
}

/// A memory module of the refined architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryView {
    /// Module name (`Gmem_p0`, `Lmem_PROC`, ...).
    pub name: String,
    /// Whether the module holds globals.
    pub global: bool,
    /// Inclusive word-address range `[lo, hi]` the module decodes, when
    /// it stores any variables.
    pub range: Option<(u64, u64)>,
    /// The buses its ports serve.
    pub port_buses: Vec<String>,
}

/// Everything the conformance lints need to know about one refined
/// candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinedView {
    /// Implementation model number (1–4).
    pub model: u8,
    /// All buses.
    pub buses: Vec<BusView>,
    /// All memory modules.
    pub memories: Vec<MemoryView>,
}

/// Runs `RC01`–`RC04` over a refined candidate.
pub fn conformance_lints(view: &RefinedView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let model = view.model;
    for bus in &view.buses {
        // RC01: several masters race for the bus with nothing to
        // serialize their transactions.
        if bus.masters.len() > 1 && !bus.has_arbiter {
            out.push(
                Diagnostic::new(
                    "RC01",
                    Severity::Error,
                    format!(
                        "Model{model}: bus `{}` has {} masters ({}) but no arbiter",
                        bus.name,
                        bus.masters.len(),
                        bus.masters.join(", ")
                    ),
                )
                .with_object(bus.name.clone())
                .with_fix("insert a bus arbiter (the paper's Figure 7)".to_string()),
            );
        }
        // RC03: a one-sided bus deadlocks (masters wait for an ack that
        // never comes) or is dead weight (slaves nobody addresses).
        if !bus.masters.is_empty() && bus.slaves.is_empty() {
            out.push(
                Diagnostic::new(
                    "RC03",
                    Severity::Error,
                    format!(
                        "Model{model}: bus `{}` has masters ({}) but no slave to acknowledge them — every transaction deadlocks",
                        bus.name,
                        bus.masters.join(", ")
                    ),
                )
                .with_object(bus.name.clone())
                .with_fix("attach the memory port or bus interface that serves this bus".to_string()),
            );
        } else if bus.masters.is_empty() && !bus.slaves.is_empty() {
            out.push(
                Diagnostic::new(
                    "RC03",
                    Severity::Error,
                    format!(
                        "Model{model}: bus `{}` has slaves ({}) but no master ever drives it",
                        bus.name,
                        bus.slaves.join(", ")
                    ),
                )
                .with_object(bus.name.clone())
                .with_fix("remove the bus or route a channel over it".to_string()),
            );
        }
        // RC04 (data width): a channel moves wider words than the bus
        // carries per transfer.
        if bus.required_data_bits > bus.data_bits {
            out.push(
                Diagnostic::new(
                    "RC04",
                    Severity::Error,
                    format!(
                        "Model{model}: bus `{}` is {} bits wide but a channel routed over it needs {}-bit accesses",
                        bus.name, bus.data_bits, bus.required_data_bits
                    ),
                )
                .with_object(bus.name.clone())
                .with_fix(format!("widen the bus to {} data bits", bus.required_data_bits)),
            );
        }
        // RC04 (address width): a slave's decode range does not fit on the
        // address lines.
        let capacity = 1u64.checked_shl(bus.addr_bits).unwrap_or(u64::MAX);
        for m in &view.memories {
            if !m.port_buses.iter().any(|b| b == &bus.name) {
                continue;
            }
            if let Some((_, hi)) = m.range {
                if hi >= capacity {
                    out.push(
                        Diagnostic::new(
                            "RC04",
                            Severity::Error,
                            format!(
                                "Model{model}: memory `{}` decodes addresses up to {hi} but bus `{}` has only {} address bits ({} words)",
                                m.name, bus.name, bus.addr_bits, capacity
                            ),
                        )
                        .with_object(m.name.clone())
                        .with_fix(format!(
                            "widen `{}` to at least {} address bits",
                            bus.name,
                            64 - hi.leading_zeros()
                        )),
                    );
                }
            }
        }
    }

    // RC02: the address map must give every memory a disjoint slice —
    // overlapping ranges make slave decode ambiguous.
    for (i, a) in view.memories.iter().enumerate() {
        for b in &view.memories[i + 1..] {
            let (Some((alo, ahi)), Some((blo, bhi))) = (a.range, b.range) else {
                continue;
            };
            if alo <= bhi && blo <= ahi {
                out.push(
                    Diagnostic::new(
                        "RC02",
                        Severity::Error,
                        format!(
                            "Model{model}: memories `{}` [{alo}, {ahi}] and `{}` [{blo}, {bhi}] decode overlapping address ranges",
                            a.name, b.name
                        ),
                    )
                    .with_object(a.name.clone())
                    .with_fix("assign disjoint address ranges in the address map".to_string()),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(name: &str, masters: &[&str], slaves: &[&str], has_arbiter: bool) -> BusView {
        BusView {
            name: name.into(),
            data_bits: 16,
            addr_bits: 8,
            masters: masters.iter().map(|s| s.to_string()).collect(),
            slaves: slaves.iter().map(|s| s.to_string()).collect(),
            has_arbiter,
            required_data_bits: 16,
        }
    }

    fn mem(name: &str, range: Option<(u64, u64)>, buses: &[&str]) -> MemoryView {
        MemoryView {
            name: name.into(),
            global: true,
            range,
            port_buses: buses.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn codes(view: &RefinedView) -> Vec<&'static str> {
        conformance_lints(view)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_view_passes() {
        let view = RefinedView {
            model: 1,
            buses: vec![bus("b1", &["A", "B"], &["Gmem"], true)],
            memories: vec![mem("Gmem", Some((0, 9)), &["b1"])],
        };
        assert!(codes(&view).is_empty());
    }

    #[test]
    fn multi_master_without_arbiter_is_rc01() {
        let view = RefinedView {
            model: 2,
            buses: vec![bus("b1", &["A", "B"], &["Gmem"], false)],
            memories: vec![mem("Gmem", Some((0, 9)), &["b1"])],
        };
        assert_eq!(codes(&view), vec!["RC01"]);
    }

    #[test]
    fn overlapping_ranges_are_rc02() {
        let view = RefinedView {
            model: 3,
            buses: vec![
                bus("b1", &["A"], &["M1"], false),
                bus("b2", &["B"], &["M2"], false),
            ],
            memories: vec![
                mem("M1", Some((0, 9)), &["b1"]),
                mem("M2", Some((5, 12)), &["b2"]),
            ],
        };
        assert_eq!(codes(&view), vec!["RC02"]);
    }

    #[test]
    fn one_sided_buses_are_rc03() {
        let view = RefinedView {
            model: 4,
            buses: vec![
                bus("b1", &["A"], &[], false),
                bus("b2", &[], &["IF"], false),
            ],
            memories: vec![],
        };
        assert_eq!(codes(&view), vec!["RC03", "RC03"]);
    }

    #[test]
    fn width_mismatches_are_rc04() {
        let mut narrow = bus("b1", &["A"], &["Gmem"], false);
        narrow.required_data_bits = 32;
        let mut short_addr = bus("b2", &["B"], &["M2"], false);
        short_addr.addr_bits = 2;
        let view = RefinedView {
            model: 1,
            buses: vec![narrow, short_addr],
            memories: vec![
                mem("Gmem", Some((0, 3)), &["b1"]),
                mem("M2", Some((4, 9)), &["b2"]),
            ],
        };
        assert_eq!(codes(&view), vec!["RC04", "RC04"]);
    }
}
