//! Liveness and deadlock lints (`DL01`–`DL05`).
//!
//! Refinement trades atomic communication for explicit handshakes,
//! buses and arbiters — exactly the transformations that introduce
//! never-enabled waits and circular blocking. These lints prove such
//! defects *statically*, before a simulation burns its step budget
//! discovering them. Two engines carry the analysis:
//!
//! * the interval abstract interpreter ([`crate::absint`]) supplies
//!   sound value ranges for every variable and signal, which prove wait
//!   conditions never-satisfiable (`DL01`), and statically-constant
//!   infinite loops (`DL03`);
//! * an inter-process wait-dependency analysis computes the *greatest*
//!   set of waits that can never be passed: a wait stays "dead" while
//!   every write that could satisfy its condition is itself dominated
//!   by dead waits (or cannot produce a satisfying value). Waits on
//!   signals nothing ever writes are `DL02`; waits whose writers sit
//!   behind other dead waits form the wait-dependency graph whose
//!   strongly connected components are the classic circular-wait
//!   deadlocks (`DL04`). A four-phase handshake whose requester never
//!   releases its request line starves the arbiter's re-arbitration
//!   wait and hangs the requester's own release wait (`DL05`).
//!
//! # The soundness contract
//!
//! Every `DL` diagnostic implies the *specification* cannot complete:
//! simulation must end in a deadlock or run into its step limit, under
//! every kernel. The engine therefore only flags waits/loops that are
//! **must-executed**: reached on every run, in a behavior that is
//! activated on every run (*must-activation* follows concurrent
//! composites into all children and sequential composites only along
//! unconditional or provably-true transition arcs; *must-reach* walks a
//! body passing through constructs that either terminate or already
//! doom the run — a `wait` before the flagged site either passes or
//! blocks the spec forever, so it never excuses a later flag). Server
//! behaviors are never flagged: their infinite service loops block
//! nobody, because composites complete without them.

use std::collections::{HashMap, HashSet};

use modref_spec::behavior::{BehaviorKind, TransitionTarget};
use modref_spec::printer::expr_to_string;
use modref_spec::stmt::WaitCond;
use modref_spec::{
    BehaviorId, Expr, SignalId, SourceMap, Spec, Stmt, StmtOwner, StmtPath, SubroutineId,
};

use crate::absint::{self, Entity, Interval, Ranges};
use crate::cfg::{Cfg, NodeId};
use crate::diag::{Diagnostic, Severity};

/// A request/acknowledge handshake pair the `DL05` check should
/// examine, in addition to the pairs it infers from server bodies. The
/// refiner knows its arbiters' wiring exactly and passes them here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakePair {
    /// The request line the master drives.
    pub req: SignalId,
    /// The acknowledge line the server drives.
    pub ack: SignalId,
    /// The server (arbiter) behavior owning the grant protocol.
    pub server: BehaviorId,
}

/// One statement body under analysis (a leaf behavior's or a
/// subroutine's), with its CFG and the indices into it the fixpoint
/// needs.
struct Body<'a> {
    owner: StmtOwner,
    name: String,
    stmts: &'a [Stmt],
    cfg: Cfg,
    /// Wait-until nodes: `(node, condition)`.
    waits: Vec<(NodeId, &'a Expr)>,
}

/// One write site: a node of one body writing one entity, with the
/// value's hull under the full global ranges (`TOP` for call out-args).
#[derive(Debug, Clone, Copy)]
struct Site {
    body: usize,
    node: NodeId,
    entity: Entity,
    hull: Interval,
}

/// Key of a wait in the dead-wait fixpoint.
type WaitKey = (usize, NodeId);

/// Runs the `DL01`–`DL05` liveness lints over a specification.
///
/// `map` supplies statement positions for parsed specs (pass `None`
/// for builder-built ones); `extra_handshakes` carries arbiter wiring
/// from the refiner for the `DL05` check, merged with the pairs the
/// engine infers from server bodies on its own.
pub fn deadlock_lints(
    spec: &Spec,
    map: Option<&SourceMap>,
    extra_handshakes: &[HandshakePair],
) -> Vec<Diagnostic> {
    let Some(_top) = spec.top_opt() else {
        return Vec::new();
    };
    let full = absint::global_ranges(spec);

    // --- collect bodies, CFGs, waits and write sites -----------------
    let mut bodies: Vec<Body<'_>> = Vec::new();
    let mut behavior_body: HashMap<BehaviorId, usize> = HashMap::new();
    let mut sub_body: HashMap<SubroutineId, usize> = HashMap::new();
    for (id, b) in spec.behaviors() {
        if let Some(stmts) = b.body() {
            behavior_body.insert(id, bodies.len());
            bodies.push(make_body(
                StmtOwner::Behavior(id),
                b.name().to_string(),
                stmts,
                map,
            ));
        }
    }
    for (id, sub) in spec.subroutines() {
        sub_body.insert(id, bodies.len());
        bodies.push(make_body(
            StmtOwner::Subroutine(id),
            sub.name().to_string(),
            sub.body(),
            map,
        ));
    }

    let mut sites: Vec<Site> = Vec::new();
    for (bi, body) in bodies.iter().enumerate() {
        for (node, cn) in body.cfg.nodes.iter().enumerate() {
            let Some(path) = &cn.path else { continue };
            let Some(stmt) = stmt_at(body.stmts, path) else {
                continue;
            };
            for (entity, value) in direct_writes(stmt) {
                let hull = value.map_or(Interval::TOP, |e| absint::eval(e, &full));
                sites.push(Site {
                    body: bi,
                    node,
                    entity,
                    hull,
                });
            }
        }
    }
    let mut writes_to: HashMap<Entity, Vec<usize>> = HashMap::new();
    for (i, s) in sites.iter().enumerate() {
        writes_to.entry(s.entity).or_default().push(i);
    }

    // --- greatest dead-wait fixpoint ---------------------------------
    // Start from "every wait is dead" and remove any wait whose
    // condition could be satisfied by initial values or by a write not
    // itself trapped behind dead waits. What survives provably never
    // passes. Removal is monotone, so the result is the unique greatest
    // fixpoint regardless of iteration order.
    let mut dead: HashSet<WaitKey> = bodies
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.waits.iter().map(move |&(n, _)| (bi, n)))
        .collect();
    loop {
        let live_site = live_sites(&bodies, &sites, &dead);
        let site_values: HashMap<usize, (Entity, Interval)> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (i, (s.entity, s.hull)))
            .collect();
        let restricted = absint::ranges_from_writes(spec, &site_values, |i| live_site[i]);
        let mut removed = false;
        for (bi, body) in bodies.iter().enumerate() {
            for &(node, cond) in &body.waits {
                if dead.contains(&(bi, node)) && !absint::eval(cond, &restricted).definitely_false()
                {
                    dead.remove(&(bi, node));
                    removed = true;
                }
            }
        }
        if !removed {
            break;
        }
    }

    // Wait-dependency graph over the dead waits: an edge W -> W' says
    // "a write that could satisfy W is trapped behind dead wait W'".
    // Its strongly connected components name circular-wait cycles.
    let dead_list: Vec<WaitKey> = {
        let mut v: Vec<WaitKey> = dead.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let dead_index: HashMap<WaitKey, usize> =
        dead_list.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); dead_list.len()];
    for (wi, &(bi, node)) in dead_list.iter().enumerate() {
        let cond = bodies[bi]
            .waits
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, c)| c)
            .expect("dead wait is a wait");
        for entity in cond_entities(cond) {
            for &si in writes_to.get(&entity).into_iter().flatten() {
                for &(wb, wn) in &dead_list {
                    if wb == sites[si].body {
                        if let Some(&ti) = dead_index.get(&(wb, wn)) {
                            edges[wi].push(ti);
                        }
                    }
                }
            }
        }
    }
    let scc = tarjan_scc(&edges);

    // --- must-activation and the flagging walk -----------------------
    let active = must_active(spec, &full);
    let mut diags = Vec::new();
    let mut leaf_events: Vec<(BehaviorId, Vec<Ev<'_>>)> = Vec::new();
    for id in spec.reachable() {
        let b = spec.behavior(id);
        if !b.is_leaf() || b.is_server() || !active.contains(&id) {
            continue;
        }
        let Some(&bi) = behavior_body.get(&id) else {
            continue;
        };
        let mut walk = Walk {
            spec,
            map,
            full: &full,
            bodies: &bodies,
            sub_body: &sub_body,
            dead: &dead,
            dead_index: &dead_index,
            dead_list: &dead_list,
            scc: &scc,
            writes_to: &writes_to,
            call_stack: Vec::new(),
            events: Vec::new(),
            diags: Vec::new(),
        };
        walk.block(bi, bodies[bi].stmts, &StmtPath::root(bodies[bi].owner), 0);
        diags.extend(walk.diags);
        leaf_events.push((id, walk.events));
    }

    // --- DL05: acquired-but-never-released handshakes ----------------
    let mut pairs: Vec<HandshakePair> = extra_handshakes.to_vec();
    pairs.extend(infer_handshakes(spec, &bodies, &behavior_body));
    pairs.sort_by_key(|p| (p.req, p.ack, p.server));
    pairs.dedup();
    for pair in &pairs {
        diags.extend(check_handshake(
            spec,
            map,
            &full,
            &bodies,
            &behavior_body,
            &sites,
            &writes_to,
            pair,
            &leaf_events,
        ));
    }

    diags
}

/// Builds one [`Body`]: CFG plus its wait-until nodes.
fn make_body<'a>(
    owner: StmtOwner,
    name: String,
    stmts: &'a [Stmt],
    map: Option<&SourceMap>,
) -> Body<'a> {
    let cfg = Cfg::build(owner, stmts, map);
    let mut waits = Vec::new();
    for (node, cn) in cfg.nodes.iter().enumerate() {
        let Some(path) = &cn.path else { continue };
        if let Some(Stmt::Wait(WaitCond::Until(cond))) = stmt_at(stmts, path) {
            waits.push((node, cond));
        }
    }
    Body {
        owner,
        name,
        stmts,
        cfg,
        waits,
    }
}

/// Resolves a [`StmtPath`] back to its statement within `root`.
fn stmt_at<'a>(root: &'a [Stmt], path: &StmtPath) -> Option<&'a Stmt> {
    let mut current: Option<&'a Stmt> = None;
    for step in &path.steps {
        let block: &'a [Stmt] = match current {
            None => root,
            Some(s) => s.bodies().get(step.block as usize).copied()?,
        };
        current = Some(block.get(step.index as usize)?);
    }
    current
}

/// The writes this statement itself performs (no recursion; nested
/// statements are their own CFG nodes). `None` values are unknown.
fn direct_writes(stmt: &Stmt) -> Vec<(Entity, Option<&Expr>)> {
    let mut out = Vec::new();
    match stmt {
        Stmt::Assign { target, value } => {
            if let Some(v) = target.var_opt() {
                out.push((Entity::Var(v), Some(value)));
            }
        }
        Stmt::SignalSet { signal, value } => out.push((Entity::Signal(*signal), Some(value))),
        Stmt::Call { args, .. } => {
            for a in args {
                if let modref_spec::stmt::CallArg::Out(lv) = a {
                    if let Some(v) = lv.var_opt() {
                        out.push((Entity::Var(v), None));
                    }
                }
            }
        }
        Stmt::For { var, from, to, .. } => {
            out.push((Entity::Var(*var), Some(from)));
            out.push((Entity::Var(*var), Some(to)));
        }
        _ => {}
    }
    out
}

/// Entities a wait condition reads (variables and signals).
fn cond_entities(cond: &Expr) -> Vec<Entity> {
    let mut out: Vec<Entity> = cond.reads().into_iter().map(Entity::Var).collect();
    out.extend(cond.signal_reads().into_iter().map(Entity::Signal));
    out.sort_unstable_by_key(|e| match e {
        Entity::Var(v) => (0u8, v.index()),
        Entity::Signal(s) => (1u8, s.index()),
    });
    out.dedup();
    out
}

/// For every write site, whether it is still reachable from its body's
/// entry without passing through a dead wait (i.e. not dominated by the
/// dead set).
fn live_sites(bodies: &[Body<'_>], sites: &[Site], dead: &HashSet<WaitKey>) -> Vec<bool> {
    let mut reach: Vec<Vec<bool>> = Vec::with_capacity(bodies.len());
    for (bi, body) in bodies.iter().enumerate() {
        let cfg = &body.cfg;
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = vec![cfg.entry];
        seen[cfg.entry] = true;
        while let Some(n) = stack.pop() {
            // A dead wait is entered but never passed: its successors
            // stay unreachable through it.
            if dead.contains(&(bi, n)) {
                continue;
            }
            for &s in &cfg.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        reach.push(seen);
    }
    sites.iter().map(|s| reach[s.body][s.node]).collect()
}

/// Tarjan's strongly connected components; returns the component index
/// of each node, with a component counted "cyclic" when it has more
/// than one node or a self-edge.
fn tarjan_scc(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // Iterative Tarjan: (node, edge cursor).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        work.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*ei) {
                *ei += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
                work.pop();
                if let Some(&mut (p, _)) = work.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    comps
}

/// Behaviors that are activated on every run: the top, all children of
/// must-activated concurrent composites, and the forced transition
/// chains of must-activated sequential composites.
fn must_active(spec: &Spec, ranges: &Ranges) -> HashSet<BehaviorId> {
    let mut out = HashSet::new();
    let Some(top) = spec.top_opt() else {
        return out;
    };
    let mut stack = vec![top];
    while let Some(id) = stack.pop() {
        if !out.insert(id) {
            continue;
        }
        let b = spec.behavior(id);
        match b.kind() {
            BehaviorKind::Leaf { .. } => {}
            BehaviorKind::Concurrent { children } => stack.extend(children.iter().copied()),
            BehaviorKind::Seq {
                children,
                transitions,
            } => {
                let Some(&first) = children.first() else {
                    continue;
                };
                let mut cur = first;
                let mut seen = HashSet::new();
                loop {
                    if !seen.insert(cur) {
                        break;
                    }
                    stack.push(cur);
                    // First-matching-arc semantics, statically: arcs in
                    // order, unconditional or provably-true fires,
                    // provably-false is skipped, unknown stops the
                    // forced chain.
                    let mut next = None;
                    let mut unknown = false;
                    for arc in transitions.iter().filter(|t| t.from == cur) {
                        match &arc.cond {
                            None => {
                                next = Some(arc.to.clone());
                                break;
                            }
                            Some(e) => {
                                let iv = absint::eval(e, ranges);
                                if iv.definitely_true() {
                                    next = Some(arc.to.clone());
                                    break;
                                }
                                if !iv.definitely_false() {
                                    unknown = true;
                                    break;
                                }
                            }
                        }
                    }
                    if unknown {
                        break;
                    }
                    match next {
                        Some(TransitionTarget::Behavior(t)) => cur = t,
                        Some(TransitionTarget::Complete) => break,
                        // No arc fires: control falls through to the
                        // next child in declaration order.
                        None => {
                            let pos = children.iter().position(|&c| c == cur);
                            match pos.and_then(|i| children.get(i + 1)) {
                                Some(&n) => cur = n,
                                None => break,
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Whether a block can consume simulation time: any wait or delay, or a
/// call (whose body might wait). A loop without any of these spins at
/// one simulation instant forever.
fn can_pass_time(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| {
        matches!(s, Stmt::Wait(_) | Stmt::Delay(_) | Stmt::Call { .. })
            || s.bodies().iter().any(|b| can_pass_time(b))
    })
}

/// An event on a must-executed path, for the `DL05` scan.
enum Ev<'a> {
    /// `set sig := value` with the value's hull.
    SigSet {
        sig: SignalId,
        hull: Interval,
        path: StmtPath,
    },
    /// `wait until (cond)`.
    Wait { cond: &'a Expr },
}

/// The must-reach walker: flags `DL01`–`DL04` inline and records the
/// event stream for the handshake check.
struct Walk<'a, 'b> {
    spec: &'a Spec,
    map: Option<&'b SourceMap>,
    full: &'b Ranges,
    bodies: &'b [Body<'a>],
    sub_body: &'b HashMap<SubroutineId, usize>,
    dead: &'b HashSet<WaitKey>,
    dead_index: &'b HashMap<WaitKey, usize>,
    dead_list: &'b [WaitKey],
    scc: &'b [Vec<usize>],
    writes_to: &'b HashMap<Entity, Vec<usize>>,
    call_stack: Vec<SubroutineId>,
    events: Vec<Ev<'a>>,
    diags: Vec<Diagnostic>,
}

impl<'a> Walk<'a, '_> {
    /// Walks one block; returns `false` when control provably never
    /// passes beyond it (an infinite loop was entered).
    fn block(&mut self, bi: usize, stmts: &'a [Stmt], parent: &StmtPath, blk: u8) -> bool {
        for (i, s) in stmts.iter().enumerate() {
            let path = parent.child(blk, i as u32);
            match s {
                Stmt::Wait(WaitCond::Until(cond)) => {
                    self.flag_wait(bi, &path, cond);
                    self.events.push(Ev::Wait { cond });
                }
                Stmt::SignalSet { signal, value } => {
                    self.events.push(Ev::SigSet {
                        sig: *signal,
                        hull: absint::eval(value, self.full),
                        path: path.clone(),
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let iv = absint::eval(cond, self.full);
                    if iv.definitely_true() {
                        if !self.block(bi, then_body, &path, 0) {
                            return false;
                        }
                    } else if iv.definitely_false() && !self.block(bi, else_body, &path, 1) {
                        return false;
                    }
                    // Unknown guard: neither branch is must-executed,
                    // but control always rejoins after the `if`.
                }
                Stmt::While { cond, body, .. } => {
                    let iv = absint::eval(cond, self.full);
                    if iv.definitely_true() {
                        // No write anywhere can falsify the guard: the
                        // loop never exits. Without a wait or delay it
                        // additionally never yields -> DL03.
                        if !can_pass_time(body) {
                            self.flag_dl03(bi, &path, "while", cond);
                            return false;
                        }
                        self.block(bi, body, &path, 0);
                        return false;
                    }
                    // Possibly-zero guard: body is not must-executed,
                    // and the walk passes through (either the loop
                    // terminates or the run is already doomed).
                }
                Stmt::For { from, to, body, .. } => {
                    let f = absint::eval(from, self.full);
                    let t = absint::eval(to, self.full);
                    // `for` runs `from < to` iterations; the body is
                    // must-executed when that holds for every value.
                    if f.hi < t.lo && !self.block(bi, body, &path, 0) {
                        return false;
                    }
                }
                Stmt::Loop { body } => {
                    if !can_pass_time(body) {
                        self.flag_dl03(bi, &path, "loop", &Expr::Lit(1));
                        return false;
                    }
                    // The first iteration is must-executed; nothing
                    // after an infinite loop ever runs.
                    self.block(bi, body, &path, 0);
                    return false;
                }
                Stmt::Call { sub, .. } => {
                    if !self.call_stack.contains(sub) {
                        if let Some(&sbi) = self.sub_body.get(sub) {
                            self.call_stack.push(*sub);
                            let root = StmtPath::root(self.bodies[sbi].owner);
                            let through = self.block(sbi, self.bodies[sbi].stmts, &root, 0);
                            self.call_stack.pop();
                            if !through {
                                return false;
                            }
                        }
                    }
                }
                Stmt::Assign { .. }
                | Stmt::Wait(WaitCond::For(_))
                | Stmt::Delay(_)
                | Stmt::Skip => {}
            }
        }
        true
    }

    fn span_of(&self, bi: usize, path: &StmtPath) -> Option<modref_spec::Span> {
        let _ = bi;
        self.map.and_then(|m| m.stmt_span(path))
    }

    fn flag_dl03(&mut self, bi: usize, path: &StmtPath, kind: &str, cond: &Expr) {
        let body = &self.bodies[bi];
        let detail = if kind == "while" {
            format!(
                " (`{}` is always true and nothing ever falsifies it)",
                expr_to_string(self.spec, cond)
            )
        } else {
            String::new()
        };
        self.diags.push(
            Diagnostic::new(
                "DL03",
                Severity::Error,
                format!(
                    "infinite `{kind}` in `{}` contains no wait or delay: it spins forever \
                     at one simulation instant{detail}",
                    body.name
                ),
            )
            .with_span(self.span_of(bi, path))
            .with_object(body.name.clone())
            .with_fix("add a `wait` or `delay` inside the loop, or bound it".to_string()),
        );
    }

    fn flag_wait(&mut self, bi: usize, path: &StmtPath, cond: &'a Expr) {
        let body = &self.bodies[bi];
        let span = self.span_of(bi, path);
        let cond_text = expr_to_string(self.spec, cond);
        // DL02: the condition needs a signal that no process ever
        // writes — the forgotten half of a handshake. The check is
        // precise: freeze only the unwritten signals at their initial
        // values, leave everything written unconstrained, and show the
        // condition still cannot hold. DL02 is checked before DL01
        // because it names the actual culprit.
        let unwritten: Vec<SignalId> = cond
            .signal_reads()
            .into_iter()
            .filter(|s| !self.writes_to.contains_key(&Entity::Signal(*s)))
            .collect();
        if !unwritten.is_empty() {
            let mut loose = Ranges {
                vars: vec![Interval::TOP; self.spec.variables().count()],
                signals: vec![Interval::TOP; self.spec.signals().count()],
            };
            for &s in &unwritten {
                loose.signals[s.index()] = Interval::exact(self.spec.signal(s).init());
            }
            if absint::eval(cond, &loose).definitely_false() {
                let name = self.spec.signal(unwritten[0]).name().to_string();
                self.diags.push(
                    Diagnostic::new(
                        "DL02",
                        Severity::Error,
                        format!(
                            "wait in `{}` blocks forever: no process ever writes signal \
                             `{name}` (condition `{cond_text}`)",
                            body.name
                        ),
                    )
                    .with_span(span)
                    .with_object(name.clone())
                    .with_fix(format!("drive `{name}` from a concurrent process")),
                );
                return;
            }
        }
        // DL01: the condition is value-impossible — no reachable write
        // anywhere can produce a satisfying valuation.
        if absint::eval(cond, self.full).definitely_false() {
            self.diags.push(
                Diagnostic::new(
                    "DL01",
                    Severity::Error,
                    format!(
                        "wait in `{}` can never be enabled: `{cond_text}` is false for every \
                         value any write can produce",
                        body.name
                    ),
                )
                .with_span(span)
                .with_object(body.name.clone())
                .with_fix("fix the condition or add a write that can satisfy it".to_string()),
            );
            return;
        }
        let Some(node) = body
            .cfg
            .nodes
            .iter()
            .position(|n| n.path.as_ref() == Some(path))
        else {
            return;
        };
        if !self.dead.contains(&(bi, node)) {
            return;
        }
        // DL04: writers exist, but every one is trapped behind a wait
        // that is itself dead — report the cycle when there is one.
        let key = (bi, node);
        let participants = self
            .dead_index
            .get(&key)
            .and_then(|&wi| self.scc.iter().find(|c| c.contains(&wi)))
            .filter(|c| c.len() > 1)
            .map(|c| {
                let mut names: Vec<&str> = c
                    .iter()
                    .map(|&wi| self.bodies[self.dead_list[wi].0].name.as_str())
                    .collect();
                names.sort_unstable();
                names.dedup();
                names.join("`, `")
            });
        let message = match participants {
            Some(names) => format!(
                "circular wait deadlock: `{}` waits on `{cond_text}`, but every write that \
                 could satisfy it is blocked behind the waits of `{names}`",
                body.name
            ),
            None => format!(
                "wait in `{}` blocks forever: every write that could satisfy `{cond_text}` \
                 sits behind a wait that itself never passes",
                body.name
            ),
        };
        self.diags.push(
            Diagnostic::new("DL04", Severity::Error, message)
                .with_span(span)
                .with_object(body.name.clone())
                .with_fix(
                    "break the cycle: reorder the handshake so one side signals first".to_string(),
                ),
        );
    }
}

/// Infers candidate handshake pairs from server bodies: a signal the
/// server's waits test for zero (`req`) paired with the signals the
/// server drives (`ack`). Every candidate still has to pass the full
/// [`check_handshake`] criteria, so over-generation is harmless.
fn infer_handshakes(
    spec: &Spec,
    bodies: &[Body<'_>],
    behavior_body: &HashMap<BehaviorId, usize>,
) -> Vec<HandshakePair> {
    let mut out = Vec::new();
    for id in spec.reachable() {
        let b = spec.behavior(id);
        if !b.is_server() || !b.is_leaf() {
            continue;
        }
        let Some(&bi) = behavior_body.get(&id) else {
            continue;
        };
        let body = &bodies[bi];
        let mut reqs: Vec<SignalId> = body
            .waits
            .iter()
            .flat_map(|&(_, cond)| cond.signal_reads())
            .collect();
        reqs.sort_unstable();
        reqs.dedup();
        let mut acks: Vec<SignalId> = Vec::new();
        for cn in &body.cfg.nodes {
            let Some(path) = &cn.path else { continue };
            if let Some(Stmt::SignalSet { signal, .. }) = stmt_at(body.stmts, path) {
                acks.push(*signal);
            }
        }
        acks.sort_unstable();
        acks.dedup();
        for &req in &reqs {
            for &ack in &acks {
                if req != ack {
                    out.push(HandshakePair {
                        req,
                        ack,
                        server: id,
                    });
                }
            }
        }
    }
    out
}

/// The `DL05` criteria for one handshake pair. All five must hold:
///
/// 1. joined over every write, the request line can never go back to
///    zero (the release was dropped);
/// 2. some must-executed path raises the request and then waits for a
///    grant (a wait that is false while `ack` is low);
/// 3. the same path later waits for the release (a wait that is false
///    while `ack` is high);
/// 4. only the server drives `ack`;
/// 5. every write that could lower `ack` is dominated by a server wait
///    that is false while the request is held high.
///
/// Under these, whichever way arbitration goes the spec hangs: never
/// granted leaves the requester at its grant wait; granted leaves the
/// server stuck re-arbitrating on a request that stays high, so the
/// acknowledge never drops and the requester's release wait blocks.
#[allow(clippy::too_many_arguments)] // one internal call site
fn check_handshake(
    spec: &Spec,
    map: Option<&SourceMap>,
    full: &Ranges,
    bodies: &[Body<'_>],
    behavior_body: &HashMap<BehaviorId, usize>,
    sites: &[Site],
    writes_to: &HashMap<Entity, Vec<usize>>,
    pair: &HandshakePair,
    leaf_events: &[(BehaviorId, Vec<Ev<'_>>)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let req_sites = writes_to.get(&Entity::Signal(pair.req));
    let ack_sites = writes_to.get(&Entity::Signal(pair.ack));
    let (Some(req_sites), Some(ack_sites)) = (req_sites, ack_sites) else {
        return out;
    };
    // (1) the request line, once raised, stays raised: the hull of
    // everything ever written to it excludes zero.
    let post = req_sites
        .iter()
        .map(|&i| sites[i].hull)
        .reduce(Interval::join)
        .expect("nonempty write list");
    if post.contains(0) {
        return out;
    }
    // (4) only the server drives the acknowledge line.
    let Some(&server_bi) = behavior_body.get(&pair.server) else {
        return out;
    };
    if ack_sites.iter().any(|&i| sites[i].body != server_bi) {
        return out;
    }
    // (5) each possibly-zero ack write sits behind a server wait that
    // is false while the request is held (the re-arbitration wait).
    let server = &bodies[server_bi];
    let guards: HashSet<NodeId> = server
        .waits
        .iter()
        .filter(|&&(_, cond)| absint::eval_with(cond, full, &[(pair.req, post)]).definitely_false())
        .map(|&(n, _)| n)
        .collect();
    if guards.is_empty() {
        return out;
    }
    let cfg = &server.cfg;
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(n) = stack.pop() {
        if guards.contains(&n) {
            continue;
        }
        for &s in &cfg.nodes[n].succs {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    let lowering_escapes = ack_sites
        .iter()
        .any(|&i| sites[i].hull.contains(0) && seen[sites[i].node]);
    if lowering_escapes {
        return out;
    }
    // (2)+(3): a must-executed raise followed by a grant wait and a
    // release wait.
    let low = [(pair.ack, Interval::exact(0))];
    let high = [(pair.ack, Interval::exact(1))];
    for (leaf, events) in leaf_events {
        let mut raise: Option<&StmtPath> = None;
        let mut granted = false;
        for ev in events {
            match ev {
                Ev::SigSet { sig, hull, path }
                    if *sig == pair.req && !hull.contains(0) && raise.is_none() =>
                {
                    raise = Some(path);
                }
                Ev::Wait { cond } if raise.is_some() => {
                    if !granted {
                        granted = absint::eval_with(cond, full, &low).definitely_false();
                    } else if absint::eval_with(cond, full, &high).definitely_false() {
                        // Full acquire/grant/release shape found.
                        let leaf_name = spec.behavior(*leaf).name().to_string();
                        let span = raise.and_then(|p| map.and_then(|m| m.stmt_span(p)));
                        out.push(
                            Diagnostic::new(
                                "DL05",
                                Severity::Error,
                                format!(
                                    "`{leaf_name}` raises request `{}` and waits on `{}` for \
                                     grant and release, but nothing ever drives `{}` low \
                                     again — the arbiter `{}` can never re-arbitrate and the \
                                     release wait blocks forever",
                                    spec.signal(pair.req).name(),
                                    spec.signal(pair.ack).name(),
                                    spec.signal(pair.req).name(),
                                    spec.behavior(pair.server).name(),
                                ),
                            )
                            .with_span(span)
                            .with_object(leaf_name)
                            .with_fix(format!(
                                "release the bus: drive `{}` low after the transaction",
                                spec.signal(pair.req).name()
                            )),
                        );
                        raise = None;
                        granted = false;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::parser::parse_with_spans;

    fn lints(src: &str) -> Vec<Diagnostic> {
        let (spec, map) = parse_with_spans(src).expect("syntax ok");
        let mut diags = deadlock_lints(&spec, Some(&map), &[]);
        crate::diag::sort_canonical(&mut diags);
        diags
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_ping_pong_handshake_is_silent() {
        let diags = lints(
            "spec s;\nsignal a : bit = 0;\nsignal b : bit = 0;\n\
             behavior P1 leaf { set a := 1; wait until (b == 1); }\n\
             behavior P2 leaf { wait until (a == 1); set b := 1; }\n\
             behavior T conc { children { P1; P2; } }\ntop T;\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dl01_value_impossible_wait() {
        let diags = lints(
            "spec s;\nsignal d : int<8> = 0;\n\
             behavior P1 leaf { set d := 1; }\n\
             behavior P2 leaf { wait until (d == 2); }\n\
             behavior T conc { children { P1; P2; } }\ntop T;\n",
        );
        assert_eq!(codes(&diags), ["DL01"], "{diags:?}");
        assert!(diags[0].message.contains("d == 2"), "{diags:?}");
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn dl02_wait_on_unwritten_signal() {
        let diags = lints(
            "spec s;\nsignal rdy : bit = 0;\n\
             behavior P leaf { wait until (rdy == 1); }\ntop P;\n",
        );
        assert_eq!(codes(&diags), ["DL02"], "{diags:?}");
        assert_eq!(diags[0].object.as_deref(), Some("rdy"));
    }

    #[test]
    fn dl03_busy_loop_and_constant_while() {
        let diags = lints(
            "spec s;\nvar x : int<16> = 0;\n\
             behavior P leaf { loop { x := x + 1; } }\ntop P;\n",
        );
        assert_eq!(codes(&diags), ["DL03"], "{diags:?}");
        let diags = lints(
            "spec s;\nvar x : int<16> = 0;\n\
             behavior P leaf { while (0 == 0) { x := x + 1; } }\ntop P;\n",
        );
        assert_eq!(codes(&diags), ["DL03"], "{diags:?}");
        // A loop that lets time pass is a server pattern, not a defect.
        let diags = lints(
            "spec s;\nvar x : int<16> = 0;\n\
             behavior P leaf { loop { delay 1; x := x + 1; } }\ntop P;\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dl04_crossed_waits_name_both_parties() {
        let diags = lints(
            "spec s;\nsignal sa : bit = 0;\nsignal sb : bit = 0;\n\
             behavior P1 leaf { wait until (sb == 1); set sa := 1; }\n\
             behavior P2 leaf { wait until (sa == 1); set sb := 1; }\n\
             behavior T conc { children { P1; P2; } }\ntop T;\n",
        );
        assert_eq!(codes(&diags), ["DL04", "DL04"], "{diags:?}");
        for d in &diags {
            assert!(d.message.contains("circular wait"), "{d:?}");
            assert!(
                d.message.contains("P1") && d.message.contains("P2"),
                "{d:?}"
            );
        }
    }

    const FOUR_PHASE_NO_RELEASE: &str = "spec s;\n\
        signal req : bit = 0;\nsignal ack : bit = 0;\nvar data : int<16> = 0;\n\
        behavior M leaf { set req := 1; wait until (ack == 1); data := 5; \
        wait until (ack == 0); }\n\
        behavior A leaf server { loop { wait until (req == 1); set ack := 1; \
        wait until (req == 0); set ack := 0; } }\n\
        behavior T conc { children { M; A; } }\ntop T;\n";

    #[test]
    fn dl05_missing_release_is_flagged_and_inferred() {
        let diags = lints(FOUR_PHASE_NO_RELEASE);
        assert_eq!(codes(&diags), ["DL05"], "{diags:?}");
        assert!(diags[0].message.contains("req"), "{diags:?}");
        assert_eq!(diags[0].object.as_deref(), Some("M"));
    }

    #[test]
    fn dl05_explicit_pair_dedups_with_inference() {
        let (spec, map) = parse_with_spans(FOUR_PHASE_NO_RELEASE).expect("syntax ok");
        let pair = HandshakePair {
            req: spec.signal_by_name("req").unwrap(),
            ack: spec.signal_by_name("ack").unwrap(),
            server: spec.behavior_by_name("A").unwrap(),
        };
        let diags = deadlock_lints(&spec, Some(&map), &[pair]);
        assert_eq!(codes(&diags), ["DL05"], "{diags:?}");
    }

    #[test]
    fn dl05_silent_when_release_present() {
        let diags = lints(
            "spec s;\n\
             signal req : bit = 0;\nsignal ack : bit = 0;\nvar data : int<16> = 0;\n\
             behavior M leaf { set req := 1; wait until (ack == 1); data := 5; \
             set req := 0; wait until (ack == 0); }\n\
             behavior A leaf server { loop { wait until (req == 1); set ack := 1; \
             wait until (req == 0); set ack := 0; } }\n\
             behavior T conc { children { M; A; } }\ntop T;\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn servers_are_never_flagged() {
        let diags = lints(
            "spec s;\nsignal go : bit = 0;\n\
             behavior A leaf server { wait until (go == 1); }\n\
             behavior M leaf { skip; }\n\
             behavior T conc { children { M; A; } }\ntop T;\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn seq_transition_guards_gate_must_activation() {
        // Unconditionally-true guard: L2 runs on every execution, so its
        // dead wait is flagged.
        let diags = lints(
            "spec s;\nsignal u : bit = 0;\nsignal go : bit = 0;\n\
             behavior L1 leaf { skip; }\n\
             behavior L2 leaf { wait until (go == 1); }\n\
             behavior T seq { children { L1; L2; } \
             transitions { L1 -> L2 when (u == 0); } }\ntop T;\n",
        );
        assert_eq!(codes(&diags), ["DL02"], "{diags:?}");
        // Statically-unknown guard: L2 is not must-activated, so the
        // same wait stays unflagged (soundness before completeness).
        let diags = lints(
            "spec s;\nvar c : int<8> = 0;\nsignal go : bit = 0;\n\
             behavior L1 leaf { c := 1; }\n\
             behavior L2 leaf { wait until (go == 1); }\n\
             behavior T seq { children { L1; L2; } \
             transitions { L1 -> L2 when (c == 1); } }\ntop T;\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wait_after_possibly_terminating_while_is_still_flagged() {
        // The walk passes through an unknown-guard `while`: either the
        // loop exits and the dead wait is reached, or the loop never
        // exits and the behavior diverges — both verdicts are
        // non-completions, so flagging stays sound.
        let diags = lints(
            "spec s;\nvar c : int<8> = 0;\nsignal go : bit = 0;\n\
             behavior P leaf { while (c == 0) { c := 1; } \
             wait until (go == 1); }\ntop P;\n",
        );
        assert_eq!(codes(&diags), ["DL02"], "{diags:?}");
    }

    #[test]
    fn waits_inside_called_subroutines_are_flagged() {
        let diags = lints(
            "spec s;\nsignal go : bit = 0;\n\
             subroutine helper() { wait until (go == 1); }\n\
             behavior P leaf { call helper(); }\ntop P;\n",
        );
        assert_eq!(codes(&diags), ["DL02"], "{diags:?}");
    }
}
