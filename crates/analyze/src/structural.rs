//! Structural lints (`ST01`–`ST06`): [`modref_spec::validate::check_all`]
//! violations mapped to diagnostics with positions from the
//! [`SourceMap`].

use modref_spec::validate;
use modref_spec::{spec_error_span, SourceMap, Spec, SpecError};

use crate::diag::{Diagnostic, Severity};

fn behavior_name(spec: &Spec, id: modref_spec::BehaviorId) -> String {
    spec.behaviors()
        .find(|(b, _)| *b == id)
        .map(|(_, b)| b.name().to_string())
        .unwrap_or_else(|| id.to_string())
}

fn variable_name(spec: &Spec, id: modref_spec::VarId) -> String {
    spec.variables()
        .find(|(v, _)| *v == id)
        .map(|(_, v)| v.name().to_string())
        .unwrap_or_else(|| id.to_string())
}

/// Runs the structural checks and renders every violation as a
/// diagnostic. The default map is empty, so builder-built specs get
/// object names but no positions.
pub fn structural_lints(spec: &Spec, map: &SourceMap) -> Vec<Diagnostic> {
    validate::check_all(spec)
        .into_iter()
        .map(|e| to_diagnostic(spec, map, e))
        .collect()
}

fn to_diagnostic(spec: &Spec, map: &SourceMap, e: SpecError) -> Diagnostic {
    let span = spec_error_span(spec, map, &e);
    let d = match &e {
        SpecError::DuplicateName { kind, name } => {
            Diagnostic::new("ST01", Severity::Error, e.to_string())
                .with_object(name.clone())
                .with_fix(format!("rename one of the `{name}` {kind}s"))
        }
        SpecError::UnknownBehavior(_)
        | SpecError::SharedChild(_)
        | SpecError::HierarchyCycle(_)
        | SpecError::TopIsChild(_) => {
            let b = match &e {
                SpecError::UnknownBehavior(b)
                | SpecError::SharedChild(b)
                | SpecError::HierarchyCycle(b)
                | SpecError::TopIsChild(b) => *b,
                _ => unreachable!(),
            };
            let name = behavior_name(spec, b);
            let message = match &e {
                SpecError::UnknownBehavior(_) => {
                    format!("child reference to behavior `{name}` that does not exist")
                }
                SpecError::SharedChild(_) => {
                    format!("behavior `{name}` is a child of more than one composite")
                }
                SpecError::HierarchyCycle(_) => {
                    format!("behavior hierarchy contains a cycle through `{name}`")
                }
                SpecError::TopIsChild(_) => {
                    format!("top behavior `{name}` is also a child of another behavior")
                }
                _ => unreachable!(),
            };
            Diagnostic::new("ST02", Severity::Error, message).with_object(name)
        }
        SpecError::TransitionNotSibling { parent, endpoint } => {
            let p = behavior_name(spec, *parent);
            let c = behavior_name(spec, *endpoint);
            Diagnostic::new(
                "ST03",
                Severity::Error,
                format!("transition in `{p}` references `{c}`, which is not one of its children"),
            )
            .with_object(p)
            .with_fix(format!(
                "add `{c}` to the children of the composite, or retarget the arc"
            ))
        }
        SpecError::CallArityMismatch {
            sub,
            expected,
            found,
        } => {
            let name = spec
                .subroutines()
                .find(|(id, _)| id == sub)
                .map(|(_, s)| s.name().to_string())
                .unwrap_or_else(|| sub.to_string());
            Diagnostic::new(
                "ST04",
                Severity::Error,
                format!("call to `{name}` has {found} arguments, expected {expected}"),
            )
            .with_object(name)
        }
        SpecError::IndexingMismatch(v) => {
            let name = variable_name(spec, *v);
            Diagnostic::new(
                "ST05",
                Severity::Error,
                format!("variable `{name}` indexed as array but declared scalar, or vice versa"),
            )
            .with_object(name)
        }
        SpecError::UnknownVar(v) => Diagnostic::new(
            "ST06",
            Severity::Error,
            format!("reference to variable {v} that does not exist"),
        ),
        SpecError::UnknownSignal(s) => Diagnostic::new(
            "ST06",
            Severity::Error,
            format!("reference to signal {s} that does not exist"),
        ),
        SpecError::UnknownSubroutine(s) => Diagnostic::new(
            "ST06",
            Severity::Error,
            format!("call to subroutine {s} that does not exist"),
        ),
        SpecError::UnresolvedName(n) => {
            Diagnostic::new("ST06", Severity::Error, format!("unresolved name `{n}`"))
                .with_object(n.clone())
        }
    };
    d.with_span(span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::parser::parse_with_spans;

    #[test]
    fn duplicate_names_point_at_second_declaration() {
        let src = "spec s;\nvar x : int<16> = 0;\nvar x : int<16> = 1;\nbehavior L leaf { }\nbehavior T seq { children { L; } }\ntop T;\n";
        let (spec, map) = parse_with_spans(src).expect("syntax ok");
        let diags = structural_lints(&spec, &map);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "ST01");
        let span = diags[0].span.expect("span");
        assert_eq!((span.line, span.col), (3, 1));
    }

    #[test]
    fn all_violations_collected_not_just_first() {
        // Both an indexing mismatch and a duplicate behavior name.
        let src = "spec s;\nvar x : int<16> = 0;\nbehavior L leaf {\n  x[0] := 1;\n}\nbehavior L leaf { }\nbehavior T seq { children { L; } }\ntop T;\n";
        let (spec, map) = parse_with_spans(src).expect("syntax ok");
        let diags = structural_lints(&spec, &map);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"ST01"), "{codes:?}");
        assert!(codes.contains(&"ST05"), "{codes:?}");
    }
}
