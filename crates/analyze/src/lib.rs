//! modref-analyze: the static-analysis subsystem.
//!
//! Everything in this crate answers one question: *what is wrong with a
//! specification (or a refined candidate) without running it?* Four lint
//! families cover the pipeline:
//!
//! * **structural** (`ST01`–`ST06`) — the [`modref_spec::validate`]
//!   well-formedness rules, collected exhaustively and rendered with
//!   source positions;
//! * **dataflow** (`DF01`–`DF06`) — per-body CFG analyses (reaching
//!   definitions, liveness) finding use-before-def, dead stores, unused
//!   declarations, unreachable behaviors and shadowed transitions;
//! * **concurrency** (`CC01`) — shared variables with concurrent
//!   accessors where at least one writes: the paper's refinement
//!   obligations, reported as notes;
//! * **conformance** (`RC01`–`RC04`) — checks on *refined* output per
//!   implementation model: missing arbiters, overlapping address ranges,
//!   one-sided (deadlocking) buses, width mismatches;
//! * **deadlock/liveness** (`DL01`–`DL05`) — abstract interpretation
//!   (interval domain with widening, see [`absint`]) plus an
//!   inter-process wait-dependency fixpoint (see [`deadlock`]) proving
//!   never-enabled waits, waits on unwritten signals, busy loops,
//!   circular waits and arbiter requests with no release path. Every
//!   `DL` diagnostic is *sound*: the flagged spec provably deadlocks or
//!   exceeds any step limit under every simulation kernel.
//!
//! The [`analyze_spec`] entry point runs the spec-level families over a
//! spec; [`conformance::conformance_lints`] runs conformance over a
//! [`conformance::RefinedView`] built by the refiner. Diagnostics render
//! as human-readable `file:line:col` lines or as JSONL following the
//! modref-obs conventions.
//!
//! # Example
//!
//! ```
//! use modref_spec::parser::parse_with_spans;
//! use modref_analyze::analyze_spec;
//!
//! let src = "spec s;\nvar x : int<16> = 0;\nvar unused : int<16> = 0;\n\
//!            behavior L leaf { x := 1; }\n\
//!            behavior T seq { children { L; } }\ntop T;\n";
//! let (spec, map) = parse_with_spans(src)?;
//! let diags = analyze_spec(&spec, &map);
//! assert!(diags.iter().any(|d| d.code == "DF03")); // `unused` is never used
//! # Ok::<(), modref_spec::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod absint;
pub mod cfg;
pub mod conformance;
pub mod dataflow;
pub mod deadlock;
pub mod diag;
pub mod flow;
pub mod race;
pub mod registry;
pub mod structural;

pub use conformance::{conformance_lints, BusView, MemoryView, RefinedView};
pub use deadlock::{deadlock_lints, HandshakePair};
pub use diag::{render_json_lines, sort_canonical, Diagnostic, Severity, Totals};
pub use registry::{lint, Lint, LintConfig, LINTS};

use modref_graph::AccessGraph;
use modref_spec::{SourceMap, Spec};

/// Runs every spec-level lint family (structural, dataflow, concurrency)
/// and returns the diagnostics in canonical order.
///
/// When structural analysis finds a broken hierarchy (`ST02`), the
/// dataflow and concurrency passes are skipped — they walk the hierarchy
/// and cannot run on a malformed one.
pub fn analyze_spec(spec: &Spec, map: &SourceMap) -> Vec<Diagnostic> {
    let mut diags = structural::structural_lints(spec, map);
    let hierarchy_broken = diags.iter().any(|d| d.code == "ST02");
    if !hierarchy_broken {
        diags.extend(flow::flow_lints(spec, map));
        let graph = AccessGraph::derive(spec);
        diags.extend(race::race_lints(spec, &graph, map));
        diags.extend(deadlock::deadlock_lints(spec, Some(map), &[]));
    }
    sort_canonical(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::parser::parse_with_spans;

    #[test]
    fn broken_hierarchy_skips_dataflow() {
        let src = "spec s;\nbehavior L leaf { }\nbehavior T seq { children { L; L; } }\ntop T;\n";
        // `L` listed twice: SharedChild. No panic, only ST02 family.
        let (spec, map) = parse_with_spans(src).expect("syntax ok");
        let diags = analyze_spec(&spec, &map);
        assert!(diags.iter().all(|d| d.code.starts_with("ST")), "{diags:?}");
    }

    #[test]
    fn clean_spec_with_unused_var_reports_exactly_df03() {
        let src = "spec s;\nvar x : int<16> = 0;\nvar dead : int<16> = 0;\n\
                   behavior L leaf { x := 1; }\nbehavior T seq { children { L; } }\ntop T;\n";
        let (spec, map) = parse_with_spans(src).expect("syntax ok");
        let diags = analyze_spec(&spec, &map);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "DF03");
        assert_eq!(diags[0].object.as_deref(), Some("dead"));
    }
}
