//! Golden-file diagnostics: one malformed fixture per lint family,
//! asserting the exact JSONL each produces. These pin both the finding
//! logic and the rendered output format — any change to either shows up
//! as a diff here.

use modref_analyze::{
    analyze_spec, conformance_lints, render_json_lines, BusView, MemoryView, RefinedView,
};
use modref_spec::parser::parse_with_spans;

/// Parses a fixture, lints it, and renders the JSONL batch under the
/// given file name.
fn lint_json(src: &str, file: &str) -> String {
    let (spec, map) = parse_with_spans(src).expect("fixture must be syntactically valid");
    let diags = analyze_spec(&spec, &map);
    render_json_lines(&diags, file)
}

#[test]
fn golden_st01_duplicate_name() {
    let src = "spec g;\nvar x : int<16> = 0;\nvar x : int<16> = 1;\n\
               behavior L leaf { x := 1; }\nbehavior T seq { children { L; } }\ntop T;\n";
    // Two findings at the same position: the second `x` is a duplicate
    // *and*, because the body's `x` resolves to the first declaration,
    // it is also unused.
    let json = lint_json(src, "dup.spec");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"DF03\", \"severity\": \"warning\", \"file\": \"dup.spec\", ",
            "\"line\": 3, \"col\": 1, \"object\": \"x\", ",
            "\"message\": \"variable `x` is never used\", ",
            "\"fix\": \"remove the declaration\"}\n",
            "{\"k\": \"diag\", \"code\": \"ST01\", \"severity\": \"error\", \"file\": \"dup.spec\", ",
            "\"line\": 3, \"col\": 1, \"object\": \"x\", ",
            "\"message\": \"duplicate variable name `x`\", ",
            "\"fix\": \"rename one of the `x` variables\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 1, \"warnings\": 1, \"notes\": 0, \"total\": 2}\n",
        )
    );
}

#[test]
fn golden_df01_use_before_def() {
    let src = "spec g;\nvar x : int<16> = 0;\nbehavior A leaf {\n  var t : int<16> = 0;\n\
               \x20 x := t;\n  t := 1;\n}\nbehavior T seq { children { A; } }\ntop T;\n";
    let json = lint_json(src, "ubd.spec");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"DF01\", \"severity\": \"warning\", \"file\": \"ubd.spec\", ",
            "\"line\": 5, \"col\": 3, \"object\": \"t\", ",
            "\"message\": \"variable `t` may be read before `A` assigns it; ",
            "only the declared initializer is available on that path\", ",
            "\"fix\": \"assign `t` before the first read\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 0, \"warnings\": 1, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_df02_dead_store() {
    let src = "spec g;\nvar x : int<16> = 0;\nbehavior A leaf {\n  var t : int<16> = 0;\n\
               \x20 t := 1;\n  t := 2;\n  x := t;\n}\nbehavior T seq { children { A; } }\ntop T;\n";
    let json = lint_json(src, "ds.spec");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"DF02\", \"severity\": \"warning\", \"file\": \"ds.spec\", ",
            "\"line\": 5, \"col\": 3, \"object\": \"t\", ",
            "\"message\": \"value assigned to `t` in `A` is never read\", ",
            "\"fix\": \"remove the assignment or use `t` afterwards\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 0, \"warnings\": 1, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_df05_unreachable_behavior() {
    // `C` has no inbound arc: execution starts at `A`, `A -> B`, and `B`
    // completes the composite.
    let src = "spec g;\nvar x : int<16> = 0;\n\
               behavior A leaf { x := 1; }\nbehavior B leaf { x := 2; }\n\
               behavior C leaf { x := 3; }\n\
               behavior T seq {\n  children { A; B; C; }\n  transitions {\n\
               \x20   A -> B;\n    B -> complete;\n  }\n}\ntop T;\n";
    let json = lint_json(src, "unreach.spec");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"DF05\", \"severity\": \"warning\", \"file\": \"unreach.spec\", ",
            "\"line\": 5, \"col\": 1, \"object\": \"C\", ",
            "\"message\": \"behavior `C` can never become active: no transition path in `T` reaches it\", ",
            "\"fix\": \"add a transition targeting it, or remove it from the composite\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 0, \"warnings\": 1, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_cc01_shared_write_race() {
    let src = "spec g;\nvar shared : int<16> = 0;\nvar y : int<16> = 0;\n\
               behavior W leaf { shared := 1; }\nbehavior R leaf { y := shared; }\n\
               behavior P conc {\n  children { W; R; }\n}\ntop P;\n";
    let json = lint_json(src, "race.spec");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"CC01\", \"severity\": \"note\", \"file\": \"race.spec\", ",
            "\"line\": 2, \"col\": 1, \"object\": \"shared\", ",
            "\"message\": \"shared variable `shared` is written by `W` and accessed by `R`, ",
            "which run concurrently; refinement must serialize these accesses\", ",
            "\"fix\": \"map the variable to an arbitrated global memory (Models 1-4) during refinement\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 0, \"warnings\": 0, \"notes\": 1, \"total\": 1}\n",
        )
    );
}

fn bus(name: &str, masters: &[&str], slaves: &[&str], has_arbiter: bool) -> BusView {
    BusView {
        name: name.into(),
        data_bits: 16,
        addr_bits: 8,
        masters: masters.iter().map(|s| s.to_string()).collect(),
        slaves: slaves.iter().map(|s| s.to_string()).collect(),
        has_arbiter,
        required_data_bits: 16,
    }
}

fn mem(name: &str, range: Option<(u64, u64)>, buses: &[&str]) -> MemoryView {
    MemoryView {
        name: name.into(),
        global: true,
        range,
        port_buses: buses.iter().map(|s| s.to_string()).collect(),
    }
}

#[test]
fn golden_rc01_arbiter_missing() {
    let view = RefinedView {
        model: 1,
        buses: vec![bus("b1", &["A", "B"], &["Gmem"], false)],
        memories: vec![mem("Gmem", Some((0, 9)), &["b1"])],
    };
    let json = render_json_lines(&conformance_lints(&view), "");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"RC01\", \"severity\": \"error\", \"object\": \"b1\", ",
            "\"message\": \"Model1: bus `b1` has 2 masters (A, B) but no arbiter\", ",
            "\"fix\": \"insert a bus arbiter (the paper's Figure 7)\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 1, \"warnings\": 0, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_rc02_address_overlap() {
    let view = RefinedView {
        model: 2,
        buses: vec![
            bus("b1", &["A"], &["M1"], false),
            bus("b2", &["B"], &["M2"], false),
        ],
        memories: vec![
            mem("M1", Some((0, 9)), &["b1"]),
            mem("M2", Some((5, 12)), &["b2"]),
        ],
    };
    let json = render_json_lines(&conformance_lints(&view), "");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"RC02\", \"severity\": \"error\", \"object\": \"M1\", ",
            "\"message\": \"Model2: memories `M1` [0, 9] and `M2` [5, 12] decode overlapping address ranges\", ",
            "\"fix\": \"assign disjoint address ranges in the address map\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 1, \"warnings\": 0, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_rc03_unmatched_send_recv() {
    let view = RefinedView {
        model: 4,
        buses: vec![bus("b3", &["IF_p0"], &[], false)],
        memories: vec![],
    };
    let json = render_json_lines(&conformance_lints(&view), "");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"RC03\", \"severity\": \"error\", \"object\": \"b3\", ",
            "\"message\": \"Model4: bus `b3` has masters (IF_p0) but no slave to acknowledge them ",
            "\u{2014} every transaction deadlocks\", ",
            "\"fix\": \"attach the memory port or bus interface that serves this bus\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 1, \"warnings\": 0, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn golden_rc04_width_mismatch() {
    let mut narrow = bus("b1", &["A"], &["Gmem"], false);
    narrow.required_data_bits = 32;
    let view = RefinedView {
        model: 3,
        buses: vec![narrow],
        memories: vec![mem("Gmem", Some((0, 9)), &["b1"])],
    };
    let json = render_json_lines(&conformance_lints(&view), "");
    assert_eq!(
        json,
        concat!(
            "{\"k\": \"diag\", \"code\": \"RC04\", \"severity\": \"error\", \"object\": \"b1\", ",
            "\"message\": \"Model3: bus `b1` is 16 bits wide but a channel routed over it ",
            "needs 32-bit accesses\", ",
            "\"fix\": \"widen the bus to 32 data bits\"}\n",
            "{\"k\": \"lint_summary\", \"errors\": 1, \"warnings\": 0, \"notes\": 0, \"total\": 1}\n",
        )
    );
}

#[test]
fn every_json_line_round_trips_through_the_strict_parser() {
    let src = "spec g;\nvar x : int<16> = 0;\nvar x : int<16> = 1;\n\
               behavior L leaf { x := 1; }\nbehavior T seq { children { L; } }\ntop T;\n";
    for line in lint_json(src, "dup.spec").lines() {
        modref_obs::json::parse(line).expect("strict JSON");
    }
}
