//! The shipped workloads must lint clean: no errors, no warnings. (Notes
//! are allowed — CC01 flags refinement obligations, not defects.) This is
//! the same bar CI's lint-smoke job enforces with `--deny warnings`.

use modref_analyze::{analyze_spec, Severity};
use modref_spec::{SourceMap, Spec};

fn assert_clean(name: &str, spec: &Spec) {
    let diags = analyze_spec(spec, &SourceMap::default());
    let offending: Vec<_> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert!(
        offending.is_empty(),
        "workload `{name}` must produce no errors or warnings, got: {offending:#?}"
    );
}

#[test]
fn medical_is_clean() {
    assert_clean("medical", &modref_workloads::medical_spec());
}

#[test]
fn fig2_is_clean() {
    assert_clean("fig2", &modref_workloads::fig2_spec());
}

#[test]
fn dsp_is_clean() {
    assert_clean("dsp", &modref_workloads::dsp_spec());
}

#[test]
fn ring_is_clean() {
    assert_clean("ring", &modref_workloads::ring_spec(4, 3));
}

#[test]
fn parsed_demo_spec_matches_builder_spec_verdict() {
    // The printer/parser round trip must not introduce or hide findings:
    // printing the medical spec and re-linting the parsed text (now with
    // real positions) stays clean too.
    let spec = modref_workloads::medical_spec();
    let text = modref_spec::printer::print(&spec);
    let (reparsed, map) = modref_spec::parser::parse_with_spans(&text).expect("round trip");
    let diags = analyze_spec(&reparsed, &map);
    let offending: Vec<_> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert!(offending.is_empty(), "{offending:#?}");
}
