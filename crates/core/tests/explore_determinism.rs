//! Exploration determinism: the ranked design points are identical across
//! repeated runs and across every way of choosing the thread count —
//! explicit config, `RAYON_NUM_THREADS`/`MODREF_THREADS` environment
//! overrides, and the machine default. Runs through the [`Codesign`]
//! facade, the entry point the CLI and `modref serve` share.
//!
//! This lives in its own integration-test binary (its own process) so the
//! environment-variable manipulation cannot race other tests; the single
//! `#[test]` keeps the env mutations sequential within the process too.

use modref_core::api::{Codesign, ExploreOpts, VerifyOpts};
use modref_workloads::medical_spec;

#[test]
fn ranked_results_are_identical_across_runs_and_thread_counts() {
    let cd = Codesign::from_spec(medical_spec());
    let opts = |threads: Option<usize>| {
        let mut o = ExploreOpts::new()
            .with_seeds(2)
            .with_anneal_iterations(120)
            .with_migration_passes(3);
        if let Some(t) = threads {
            o = o.with_threads(t);
        }
        o
    };

    // Two identical runs agree point-for-point.
    let first = cd.explore(&opts(None)).expect("run 1");
    let second = cd.explore(&opts(None)).expect("run 2");
    assert_eq!(first, second, "repeat runs must be identical");

    // Explicit thread counts, serial through oversubscribed.
    for threads in [1, 2, 5, 16] {
        let run = cd
            .explore(&opts(Some(threads)))
            .unwrap_or_else(|e| panic!("{threads}-thread run: {e}"));
        assert_eq!(first, run, "results differ at {threads} threads");
    }

    // RAYON_NUM_THREADS=1 versus the unconstrained default, the knob the
    // acceptance criterion names. Restore the environment afterwards.
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    assert_eq!(modref_partition::thread_count(None), 1);
    let pinned = cd.explore(&opts(None)).expect("pinned run");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(first, pinned, "RAYON_NUM_THREADS=1 changed the results");

    // MODREF_THREADS takes precedence over RAYON_NUM_THREADS.
    std::env::set_var("RAYON_NUM_THREADS", "7");
    std::env::set_var("MODREF_THREADS", "3");
    assert_eq!(modref_partition::thread_count(None), 3);
    let overridden = cd.explore(&opts(None)).expect("override run");
    std::env::remove_var("MODREF_THREADS");
    std::env::remove_var("RAYON_NUM_THREADS");
    if let Some(v) = saved {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }
    assert_eq!(first, overridden, "MODREF_THREADS=3 changed the results");

    // Sanity: the ranking is a total order over the evaluated points.
    for w in first.points.windows(2) {
        assert!(
            (w[0].cost.total, w[0].max_bus_rate) <= (w[1].cost.total, w[1].max_bus_rate),
            "points out of order"
        );
    }

    // The `--verify` stage is deterministic too: the simulation-backed
    // verdict set for the Pareto front is identical for 1 thread and any
    // oversubscribed count, and under the env-var knobs. `Verification`
    // derives `Eq` over exact fields only (no floats), so equality here
    // really is byte-for-byte.
    let verified_single = cd
        .verify(&first, &VerifyOpts::new().with_threads(1))
        .expect("verify 1 thread");
    assert!(
        !verified_single.records.is_empty(),
        "front must produce verification records"
    );
    assert!(
        verified_single.all_equivalent(),
        "medical front refinements must verify: {:?}",
        verified_single.records
    );
    for threads in [2, 5, 16] {
        let run = cd
            .verify(&first, &VerifyOpts::new().with_threads(threads))
            .expect("verify");
        assert_eq!(
            verified_single, run,
            "verification differs at {threads} threads"
        );
    }
    std::env::set_var("MODREF_THREADS", "4");
    let enved = cd.verify(&first, &VerifyOpts::new()).expect("verify env");
    std::env::remove_var("MODREF_THREADS");
    assert_eq!(
        verified_single, enved,
        "MODREF_THREADS=4 changed the verification"
    );
}
