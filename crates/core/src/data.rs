//! Data-related refinement — the paper's Figures 5 and 6.
//!
//! Once a variable is mapped to a memory module, behaviors can no longer
//! name it directly: every access becomes a protocol transaction. The
//! [`DataRefiner`] rewrites one *master context* (a leaf body, or the
//! guard-fetch code of a composite) so that:
//!
//! * each read of a memory variable is preceded by
//!   `call MST_receive(addr, tmp)` and the expression reads `tmp` — the
//!   paper's temporary variable;
//! * each write becomes `tmp := value; call MST_send(addr, tmp)`;
//! * array elements are addressed as `base + index`;
//! * `while` conditions re-fetch their variables at the end of each
//!   iteration; `wait until` conditions poll;
//! * `for` loops over a memory-resident induction variable run on a
//!   register copy and store the index back each iteration, preserving
//!   the observable per-iteration writes.
//!
//! Variables absent from the refiner's table (refinement-introduced
//! registers) pass through untouched.

use std::collections::HashMap;

use modref_spec::stmt::CallArg;
use modref_spec::{expr, stmt, DataType, Expr, LValue, Spec, Stmt, SubroutineId, VarId, WaitCond};

/// How one memory-resident variable is accessed from this master context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarAccess {
    /// Base word address in the global address map.
    pub base: u64,
    /// Element count (1 for scalars).
    pub elems: u32,
    /// The `MST_receive` subroutine for the bus this context uses.
    pub recv: SubroutineId,
    /// The `MST_send` subroutine for the bus this context uses.
    pub send: SubroutineId,
}

/// Rewrites the statements of one master context.
#[derive(Debug)]
pub struct DataRefiner<'a> {
    spec: &'a mut Spec,
    /// Memory-resident variables (refined-spec ids) this context touches.
    table: HashMap<VarId, VarAccess>,
    /// Name prefix for generated temporaries (the context's name).
    prefix: String,
    /// Lazily created scalar temporaries, one per variable.
    tmp_of: HashMap<VarId, VarId>,
    /// Counter for array-element temporaries.
    elem_tmps: u32,
    /// Counter for loop-bound temporaries.
    bound_tmps: u32,
    /// When set, scalar fetches are reused across *consecutive
    /// assignments* (redundant-fetch elimination): the temporary tracks
    /// the memory value through the block, invalidated at any statement
    /// that branches, loops, waits or calls.
    coalesce: bool,
    /// The live fetch cache for the current straight-line run.
    block_cache: HashMap<VarId, VarId>,
}

impl<'a> DataRefiner<'a> {
    /// Creates a refiner for one context over the (refined) spec.
    pub fn new(
        spec: &'a mut Spec,
        prefix: impl Into<String>,
        table: HashMap<VarId, VarAccess>,
    ) -> Self {
        Self::with_coalescing(spec, prefix, table, false)
    }

    /// Like [`DataRefiner::new`], optionally enabling redundant-fetch
    /// elimination across consecutive assignments.
    pub fn with_coalescing(
        spec: &'a mut Spec,
        prefix: impl Into<String>,
        table: HashMap<VarId, VarAccess>,
        coalesce: bool,
    ) -> Self {
        Self {
            spec,
            table,
            prefix: prefix.into(),
            tmp_of: HashMap::new(),
            elem_tmps: 0,
            bound_tmps: 0,
            coalesce,
            block_cache: HashMap::new(),
        }
    }

    /// Consumes the refiner, returning the underlying spec borrow.
    pub fn into_spec(self) -> &'a mut Spec {
        self.spec
    }

    /// The register temporary mirroring `var` (created on first use).
    pub fn tmp_for(&mut self, var: VarId) -> VarId {
        if let Some(&t) = self.tmp_of.get(&var) {
            return t;
        }
        let base_name = format!("{}_tmp_{}", self.prefix, self.spec.variable(var).name());
        let name = self.spec.fresh_variable_name(&base_name);
        let ty = match self.spec.variable(var).ty() {
            DataType::Array { elem, .. } => match elem {
                modref_spec::types::ScalarType::Bit => DataType::Bit,
                modref_spec::types::ScalarType::Bool => DataType::Bool,
                modref_spec::types::ScalarType::Int(w) => DataType::int(*w),
                modref_spec::types::ScalarType::Uint(w) => DataType::uint(*w),
            },
            scalar => *scalar,
        };
        let t = self.spec.add_variable(name, ty, 0, None);
        self.tmp_of.insert(var, t);
        t
    }

    fn fresh_elem_tmp(&mut self, var: VarId) -> VarId {
        let n = self.elem_tmps;
        self.elem_tmps += 1;
        let base_name = format!(
            "{}_tmp_{}_e{n}",
            self.prefix,
            self.spec.variable(var).name()
        );
        let name = self.spec.fresh_variable_name(&base_name);
        let elem_ty = match self.spec.variable(var).ty() {
            DataType::Array { elem, .. } => match elem {
                modref_spec::types::ScalarType::Bit => DataType::Bit,
                modref_spec::types::ScalarType::Bool => DataType::Bool,
                modref_spec::types::ScalarType::Int(w) => DataType::int(*w),
                modref_spec::types::ScalarType::Uint(w) => DataType::uint(*w),
            },
            scalar => *scalar,
        };
        self.spec.add_variable(name, elem_ty, 0, None)
    }

    fn fresh_bound_tmp(&mut self) -> VarId {
        let n = self.bound_tmps;
        self.bound_tmps += 1;
        let name = self
            .spec
            .fresh_variable_name(&format!("{}_bound_{n}", self.prefix));
        self.spec.add_variable(name, DataType::int(32), 0, None)
    }

    /// `call MST_receive(addr_expr, out target)`
    fn fetch_call(&self, access: VarAccess, addr: Expr, target: VarId) -> Stmt {
        stmt::call(
            access.recv,
            vec![CallArg::In(addr), CallArg::Out(LValue::Var(target))],
        )
    }

    /// `call MST_send(addr_expr, in value)`
    fn send_call(&self, access: VarAccess, addr: Expr, value: Expr) -> Stmt {
        stmt::call(access.send, vec![CallArg::In(addr), CallArg::In(value)])
    }

    /// Emits a fetch of `var` into its temporary; public for the guard
    /// (non-leaf) scheme, where the composite appends fetches to its
    /// predecessor children (Figure 6).
    pub fn fetch_scalar(&mut self, var: VarId) -> Vec<Stmt> {
        let Some(&access) = self.table.get(&var) else {
            return Vec::new();
        };
        let tmp = self.tmp_for(var);
        vec![self.fetch_call(access, expr::lit(access.base as i64), tmp)]
    }

    /// Rewrites an expression: every memory-variable read is replaced by
    /// its temporary and the required fetches are appended to `pre`, in
    /// evaluation order. `cache` dedupes scalar fetches within one
    /// statement.
    fn rewrite_expr(
        &mut self,
        e: Expr,
        pre: &mut Vec<Stmt>,
        cache: &mut HashMap<VarId, VarId>,
    ) -> Expr {
        match e {
            Expr::Var(v) => {
                if let Some(&access) = self.table.get(&v) {
                    if let Some(&tmp) = cache.get(&v) {
                        return Expr::Var(tmp);
                    }
                    let tmp = self.tmp_for(v);
                    pre.push(self.fetch_call(access, expr::lit(access.base as i64), tmp));
                    cache.insert(v, tmp);
                    Expr::Var(tmp)
                } else {
                    Expr::Var(v)
                }
            }
            Expr::Index(v, idx) => {
                let idx = self.rewrite_expr(*idx, pre, cache);
                if let Some(&access) = self.table.get(&v) {
                    let tmp = self.fresh_elem_tmp(v);
                    let addr = expr::add(expr::lit(access.base as i64), idx);
                    pre.push(self.fetch_call(access, addr, tmp));
                    Expr::Var(tmp)
                } else {
                    Expr::Index(v, Box::new(idx))
                }
            }
            Expr::Unary(op, inner) => {
                Expr::Unary(op, Box::new(self.rewrite_expr(*inner, pre, cache)))
            }
            Expr::Binary(op, l, r) => Expr::Binary(
                op,
                Box::new(self.rewrite_expr(*l, pre, cache)),
                Box::new(self.rewrite_expr(*r, pre, cache)),
            ),
            leaf @ (Expr::Lit(_) | Expr::Signal(_) | Expr::Param(_)) => leaf,
        }
    }

    fn rewrite_cond(&mut self, e: &Expr) -> (Vec<Stmt>, Expr) {
        let mut pre = Vec::new();
        let mut cache = HashMap::new();
        let e = self.rewrite_expr(e.clone(), &mut pre, &mut cache);
        (pre, e)
    }

    /// Rewrites a whole statement list.
    pub fn refine_body(&mut self, body: Vec<Stmt>) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in body {
            self.refine_stmt(s, &mut out);
        }
        out
    }

    fn refine_stmt(&mut self, s: Stmt, out: &mut Vec<Stmt>) {
        // Only straight runs of assignments keep the fetch cache alive.
        if !matches!(s, Stmt::Assign { .. }) {
            self.block_cache.clear();
        }
        match s {
            Stmt::Assign { target, value } => {
                let mut cache = if self.coalesce {
                    std::mem::take(&mut self.block_cache)
                } else {
                    HashMap::new()
                };
                let mut pre = Vec::new();
                let value = self.rewrite_expr(value, &mut pre, &mut cache);
                match target {
                    LValue::Var(v) => {
                        if let Some(&access) = self.table.get(&v) {
                            let tmp = self.tmp_for(v);
                            out.extend(pre);
                            out.push(stmt::assign(tmp, value));
                            out.push(self.send_call(
                                access,
                                expr::lit(access.base as i64),
                                expr::var(tmp),
                            ));
                            // The temporary now mirrors the stored value.
                            cache.insert(v, tmp);
                        } else {
                            out.extend(pre);
                            out.push(stmt::assign(v, value));
                        }
                    }
                    LValue::Index(v, idx) => {
                        let idx = self.rewrite_expr(idx, &mut pre, &mut cache);
                        if let Some(&access) = self.table.get(&v) {
                            let tmp = self.tmp_for(v);
                            out.extend(pre);
                            out.push(stmt::assign(tmp, value));
                            let addr = expr::add(expr::lit(access.base as i64), idx);
                            out.push(self.send_call(access, addr, expr::var(tmp)));
                            // Element writes do not map to a scalar cache
                            // entry; drop any stale scalar alias.
                            cache.remove(&v);
                        } else {
                            out.extend(pre);
                            out.push(Stmt::Assign {
                                target: LValue::Index(v, idx),
                                value,
                            });
                        }
                    }
                    LValue::Param(name) => {
                        out.extend(pre);
                        out.push(Stmt::Assign {
                            target: LValue::Param(name),
                            value,
                        });
                    }
                }
                if self.coalesce {
                    self.block_cache = cache;
                }
            }
            Stmt::SignalSet { signal, value } => {
                let (pre, value) = self.rewrite_cond(&value);
                out.extend(pre);
                out.push(Stmt::SignalSet { signal, value });
            }
            Stmt::Wait(WaitCond::Until(cond)) => {
                let (pre, cond) = self.rewrite_cond(&cond);
                if pre.is_empty() {
                    out.push(stmt::wait_until(cond));
                } else {
                    // Poll: fetch, then while the condition is false,
                    // pause one tick and re-fetch.
                    let mut poll = vec![stmt::delay(1)];
                    poll.extend(pre.clone());
                    out.extend(pre);
                    out.push(stmt::while_loop(expr::eq(cond, expr::lit(0)), poll));
                }
            }
            Stmt::Wait(WaitCond::For(n)) => out.push(stmt::wait_for(n)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (pre, cond) = self.rewrite_cond(&cond);
                out.extend(pre);
                out.push(Stmt::If {
                    cond,
                    then_body: self.refine_body(then_body),
                    else_body: self.refine_body(else_body),
                });
            }
            Stmt::While {
                cond,
                body,
                trip_hint,
            } => {
                let (pre, cond) = self.rewrite_cond(&cond);
                let mut new_body = self.refine_body(body);
                // Re-fetch the condition's variables before re-testing.
                new_body.extend(pre.clone());
                out.extend(pre);
                out.push(Stmt::While {
                    cond,
                    body: new_body,
                    trip_hint,
                });
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let mut cache = HashMap::new();
                let mut pre = Vec::new();
                let from = self.rewrite_expr(from, &mut pre, &mut cache);
                let to = self.rewrite_expr(to, &mut pre, &mut cache);
                if let Some(&access) = self.table.get(&var) {
                    // Register-resident induction with per-iteration
                    // store-back, preserving observable writes.
                    let tmp_i = self.tmp_for(var);
                    let bound = self.fresh_bound_tmp();
                    let trip_hint = match (&from, &to) {
                        (Expr::Lit(f), Expr::Lit(t)) if t > f => Some((t - f) as u32),
                        _ => None,
                    };
                    out.extend(pre);
                    out.push(stmt::assign(tmp_i, from));
                    out.push(stmt::assign(bound, to));
                    let mut loop_body = vec![self.send_call(
                        access,
                        expr::lit(access.base as i64),
                        expr::var(tmp_i),
                    )];
                    loop_body.extend(self.refine_body(body));
                    loop_body.push(stmt::assign(
                        tmp_i,
                        expr::add(expr::var(tmp_i), expr::lit(1)),
                    ));
                    out.push(Stmt::While {
                        cond: expr::lt(expr::var(tmp_i), expr::var(bound)),
                        body: loop_body,
                        trip_hint,
                    });
                } else {
                    out.extend(pre);
                    out.push(Stmt::For {
                        var,
                        from,
                        to,
                        body: self.refine_body(body),
                    });
                }
            }
            Stmt::Loop { body } => {
                out.push(Stmt::Loop {
                    body: self.refine_body(body),
                });
            }
            Stmt::Call { sub, args } => {
                let mut cache = HashMap::new();
                let mut pre = Vec::new();
                let mut post = Vec::new();
                let args = args
                    .into_iter()
                    .map(|a| match a {
                        CallArg::In(e) => CallArg::In(self.rewrite_expr(e, &mut pre, &mut cache)),
                        CallArg::Out(LValue::Var(v)) => {
                            if let Some(&access) = self.table.get(&v) {
                                let tmp = self.tmp_for(v);
                                post.push(self.send_call(
                                    access,
                                    expr::lit(access.base as i64),
                                    expr::var(tmp),
                                ));
                                CallArg::Out(LValue::Var(tmp))
                            } else {
                                CallArg::Out(LValue::Var(v))
                            }
                        }
                        CallArg::Out(other) => CallArg::Out(other),
                    })
                    .collect();
                out.extend(pre);
                out.push(Stmt::Call { sub, args });
                out.extend(post);
            }
            other @ (Stmt::Delay(_) | Stmt::Skip) => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::subroutine::{param_in, param_out, Subroutine};

    fn setup() -> (Spec, VarId, SubroutineId, SubroutineId) {
        let mut b = SpecBuilder::new("d");
        let x = b.var_int("x", 16, 0);
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let recv = spec.add_subroutine(Subroutine::new(
            "MST_receive_b1",
            vec![
                param_in("addr", DataType::uint(4)),
                param_out("data", DataType::int(16)),
            ],
            vec![],
        ));
        let send = spec.add_subroutine(Subroutine::new(
            "MST_send_b1",
            vec![
                param_in("addr", DataType::uint(4)),
                param_in("data", DataType::int(16)),
            ],
            vec![],
        ));
        (spec, x, recv, send)
    }

    fn table(x: VarId, recv: SubroutineId, send: SubroutineId) -> HashMap<VarId, VarAccess> {
        let mut t = HashMap::new();
        t.insert(
            x,
            VarAccess {
                base: 3,
                elems: 1,
                recv,
                send,
            },
        );
        t
    }

    #[test]
    fn read_modify_write_matches_figure5() {
        let (mut spec, x, recv, send) = setup();
        let mut refiner = DataRefiner::new(&mut spec, "L", table(x, recv, send));
        // x := x + 5  ==>  receive(3, tmp); tmp := tmp + 5; send(3, tmp)
        let out = refiner.refine_body(vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(5)))]);
        assert_eq!(out.len(), 3);
        assert!(matches!(&out[0], Stmt::Call { sub, .. } if *sub == recv));
        assert!(matches!(&out[1], Stmt::Assign { .. }));
        assert!(matches!(&out[2], Stmt::Call { sub, .. } if *sub == send));
    }

    #[test]
    fn repeated_reads_fetch_once_per_statement() {
        let (mut spec, x, recv, send) = setup();
        let mut refiner = DataRefiner::new(&mut spec, "L", table(x, recv, send));
        // y-not-mapped := x * x  => one fetch, product of tmp by tmp.
        let y = refiner.spec.add_variable("y", DataType::int(16), 0, None);
        let out = refiner.refine_body(vec![stmt::assign(y, expr::mul(expr::var(x), expr::var(x)))]);
        let fetches = out
            .iter()
            .filter(|s| matches!(s, Stmt::Call { sub, .. } if *sub == recv))
            .count();
        assert_eq!(fetches, 1);
    }

    #[test]
    fn while_condition_refetches_each_iteration() {
        let (mut spec, x, recv, send) = setup();
        let mut refiner = DataRefiner::new(&mut spec, "L", table(x, recv, send));
        let out = refiner.refine_body(vec![stmt::while_loop(
            expr::lt(expr::var(x), expr::lit(5)),
            vec![stmt::skip()],
        )]);
        // pre-fetch + while
        assert_eq!(out.len(), 2);
        match &out[1] {
            Stmt::While { body, .. } => {
                // skip + re-fetch at end of body
                assert!(matches!(body.last(), Some(Stmt::Call { sub, .. }) if *sub == recv));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_rewrites_to_register_while() {
        let (mut spec, x, recv, send) = setup();
        let mut refiner = DataRefiner::new(&mut spec, "L", table(x, recv, send));
        let out = refiner.refine_body(vec![stmt::for_loop(
            x,
            expr::lit(0),
            expr::lit(4),
            vec![stmt::skip()],
        )]);
        // tmp := 0; bound := 4; while ...
        assert!(out.len() >= 3);
        match out.last().unwrap() {
            Stmt::While {
                body, trip_hint, ..
            } => {
                assert_eq!(*trip_hint, Some(4));
                // store-back send at loop head.
                assert!(matches!(&body[0], Stmt::Call { sub, .. } if *sub == send));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn untracked_variables_pass_through() {
        let (mut spec, _x, recv, send) = setup();
        let reg = spec.add_variable("reg", DataType::int(16), 0, None);
        let mut refiner = DataRefiner::new(&mut spec, "L", HashMap::new());
        let body = vec![stmt::assign(reg, expr::lit(1))];
        let out = refiner.refine_body(body.clone());
        assert_eq!(out, body);
        let _ = (recv, send);
    }

    #[test]
    fn wait_until_polls_memory() {
        let (mut spec, x, recv, send) = setup();
        let mut refiner = DataRefiner::new(&mut spec, "L", table(x, recv, send));
        let out = refiner.refine_body(vec![stmt::wait_until(expr::gt(expr::var(x), expr::lit(0)))]);
        // fetch + poll-while
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Stmt::Call { sub, .. } if *sub == recv));
        assert!(matches!(&out[1], Stmt::While { .. }));
        let _ = send;
    }
}
