//! The refinement orchestrator: applies control-, data- and
//! architecture-related refinement to produce the implementation model.
//!
//! [`refine`] rebuilds the specification from scratch:
//!
//! 1. memory-module placeholder behaviors are created and every original
//!    variable is re-declared inside its module;
//! 2. bus wires and protocol subroutines are generated — per-master
//!    variants with request/acknowledge arbitration where a bus has more
//!    than one master;
//! 3. the behavior hierarchy is copied: children assigned to a different
//!    component than their parent become `B_CTRL` stubs plus concurrent
//!    `B_NEW` wrappers (control refinement), leaf bodies have their
//!    variable accesses replaced by protocol calls (data refinement,
//!    Figure 5), and transition guards read register temporaries fetched
//!    at the end of predecessor children (non-leaf scheme, Figure 6);
//! 4. memory-port serve loops, bus arbiters (Figure 7) and Model4 bus
//!    interfaces (Figure 8) are generated;
//! 5. the refined top is a concurrent composite of the copied hierarchy
//!    and every server behavior.

use std::collections::{BTreeSet, HashMap};

use modref_graph::{AccessGraph, ChannelId};
use modref_partition::{Allocation, ComponentId, Partition};
use modref_spec::stmt::CallArg;
use modref_spec::subroutine::Subroutine;
use modref_spec::{
    validate, Behavior, BehaviorId, BehaviorKind, Expr, LValue, SignalId, Spec, Stmt, SubroutineId,
    Transition, TransitionTarget, VarId, WaitCond,
};

use crate::arbiter::{make_arbiter_with_policy, ArbiterPolicy};
use crate::arch::{ArbiterDesc, Architecture, Bus, InterfaceDesc, MemoryModule};
use crate::control::{make_bctrl, make_bnew_composite, make_bnew_leaf, ControlSignals};
use crate::data::{DataRefiner, VarAccess};
use crate::error::RefineError;
use crate::interface::{make_interface, ForwardSubs};
use crate::memory::{memory_port_body, MemoryVar, SlvSubs};
use crate::model::ImplModel;
use crate::plan::RefinePlan;
use crate::protocol::{
    make_mst_receive, make_mst_send, make_slv_receive, make_slv_send, BusWires, ReqAck,
};

/// Options controlling refinement details beyond the implementation
/// model: the knobs of architecture-related refinement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineOptions {
    /// Grant policy for generated bus arbiters.
    pub arbiter_policy: ArbiterPolicy,
    /// Redundant-fetch elimination: reuse a fetched value across
    /// consecutive assignments instead of re-reading memory per
    /// statement (an optimization ablation; the paper's scheme fetches
    /// per access).
    pub coalesce_reads: bool,
}

/// The output of refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct Refined {
    /// The refined, implementation-model specification.
    pub spec: Spec,
    /// The emerging architecture (buses, memories, arbiters, interfaces).
    pub architecture: Architecture,
    /// The analysis plan the refinement followed.
    pub plan: RefinePlan,
    /// For every original data channel, the buses that now carry it.
    pub channel_buses: HashMap<ChannelId, Vec<String>>,
}

/// Refines `spec` into the implementation model `model` under the given
/// allocation and partition. See the [module docs](self) for the steps.
///
/// # Errors
///
/// Propagates planning errors ([`RefineError::EmptyAllocation`],
/// unassigned objects) and reports internal inconsistencies as
/// [`RefineError::InvalidOutput`].
pub fn refine(
    spec: &Spec,
    graph: &AccessGraph,
    allocation: &Allocation,
    partition: &Partition,
    model: ImplModel,
) -> Result<Refined, RefineError> {
    refine_with_options(
        spec,
        graph,
        allocation,
        partition,
        model,
        &RefineOptions::default(),
    )
}

/// Like [`refine`], with explicit [`RefineOptions`].
///
/// # Errors
///
/// Same conditions as [`refine`].
pub fn refine_with_options(
    spec: &Spec,
    graph: &AccessGraph,
    allocation: &Allocation,
    partition: &Partition,
    model: ImplModel,
    options: &RefineOptions,
) -> Result<Refined, RefineError> {
    let _span = modref_obs::span("refine").attr("model", model.name());
    let plan = {
        let _s = modref_obs::span("refine.plan");
        RefinePlan::build(spec, graph, allocation, partition, model)?
    };
    let builder = Builder::new(spec, graph, allocation, partition, plan, *options);
    builder.build()
}

/// Identifies one bus-master context in the refined design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CtxKey {
    /// The body of an original leaf behavior.
    LeafBody(BehaviorId),
    /// The guard-fetch code appended after child `1` of composite `0`.
    GuardFetch(BehaviorId, BehaviorId),
    /// Model4 outbound interface of a component (masters the inter bus).
    IfcOut(ComponentId),
    /// Model4 inbound interface of a component (masters its local bus).
    IfcIn(ComponentId),
}

#[derive(Debug, Clone)]
struct MasterCtx {
    key: CtxKey,
    name: String,
    buses: BTreeSet<String>,
}

struct Builder<'a> {
    orig: &'a Spec,
    options: RefineOptions,
    graph: &'a AccessGraph,
    part: &'a Partition,
    plan: RefinePlan,
    out: Spec,
    vmap: HashMap<VarId, VarId>,
    smap: HashMap<SignalId, SignalId>,
    submap: HashMap<SubroutineId, SubroutineId>,
    wires: HashMap<String, BusWires>,
    contexts: Vec<MasterCtx>,
    ctx_subs: HashMap<(String, CtxKey), (SubroutineId, SubroutineId)>,
    mem_port0: Vec<BehaviorId>,
    slv_subs: HashMap<String, SlvSubs>,
    servers: Vec<BehaviorId>,
    arch: Architecture,
    guard_tmp: HashMap<(BehaviorId, VarId), VarId>,
}

impl<'a> Builder<'a> {
    fn new(
        orig: &'a Spec,
        graph: &'a AccessGraph,
        _allocation: &'a Allocation,
        part: &'a Partition,
        plan: RefinePlan,
        options: RefineOptions,
    ) -> Self {
        Self {
            orig,
            options,
            graph,
            part,
            plan,
            out: Spec::new(format!("{}_refined", orig.name())),
            vmap: HashMap::new(),
            smap: HashMap::new(),
            submap: HashMap::new(),
            wires: HashMap::new(),
            contexts: Vec::new(),
            ctx_subs: HashMap::new(),
            mem_port0: Vec::new(),
            slv_subs: HashMap::new(),
            servers: Vec::new(),
            arch: Architecture::default(),
            guard_tmp: HashMap::new(),
        }
    }

    fn component_of(&self, behavior: BehaviorId) -> Result<ComponentId, RefineError> {
        self.part
            .component_of_behavior(self.orig, behavior)
            .ok_or(RefineError::UnassignedBehavior(behavior))
    }

    fn build(mut self) -> Result<Refined, RefineError> {
        // Each refinement pass runs under its own span, so `modref
        // report` breaks refine time down per procedure per model.
        fn pass<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
            let _s = modref_obs::span(name);
            f()
        }
        pass("refine.copy_signals", || self.copy_signals());
        pass("refine.create_memory_placeholders", || {
            self.create_memory_placeholders()
        });
        pass("refine.copy_variables", || self.copy_variables());
        pass("refine.copy_subroutines", || self.copy_subroutines());
        pass("refine.create_bus_wires", || self.create_bus_wires());
        pass("refine.enumerate_contexts", || self.enumerate_contexts())?;
        pass("refine.create_protocols_and_arbiters", || {
            self.create_protocols_and_arbiters()
        });

        let root = pass("refine.copy_behaviors", || {
            self.copy_behavior(self.orig.top())
        })?;
        pass("refine.fill_memories", || self.fill_memories());
        pass("refine.create_interfaces", || self.create_interfaces())?;

        let mut children = vec![root];
        children.extend(self.servers.iter().copied());
        let system_name = self.out.fresh_behavior_name("System");
        let system = self.out.add_behavior(Behavior::new(
            system_name,
            BehaviorKind::Concurrent { children },
        ));
        self.out.set_top(system);

        pass("refine.validate", || validate::check(&self.out))?;
        pass("refine.populate_architecture", || {
            self.populate_architecture()
        });

        let channel_buses = self.plan.channel_buses(self.orig, self.graph, self.part);
        Ok(Refined {
            spec: self.out,
            architecture: self.arch,
            plan: self.plan,
            channel_buses,
        })
    }

    // --- step 1: signals, memories, variables, subroutines ---

    fn copy_signals(&mut self) {
        for (id, s) in self.orig.signals() {
            let new = self.out.add_signal(s.name().to_string(), *s.ty(), s.init());
            self.smap.insert(id, new);
        }
    }

    fn create_memory_placeholders(&mut self) {
        for mem in &self.plan.memories {
            let id = self.out.add_behavior(Behavior::new_server(
                mem.name.clone(),
                BehaviorKind::Leaf { body: Vec::new() },
            ));
            self.mem_port0.push(id);
        }
    }

    fn copy_variables(&mut self) {
        // Iterate memories so variables land scoped to their module's
        // first port behavior, in address order.
        for (idx, mem) in self.plan.memories.clone().iter().enumerate() {
            let scope = self.mem_port0[idx];
            for &v in &mem.vars {
                let var = self.orig.variable(v);
                let new = self.out.add_variable(
                    var.name().to_string(),
                    *var.ty(),
                    var.init(),
                    Some(scope),
                );
                self.vmap.insert(v, new);
            }
        }
    }

    fn copy_subroutines(&mut self) {
        // User subroutines are copied verbatim (id-remapped). Accesses to
        // memory-resident variables inside user subroutines are not data-
        // refined (a documented limitation; protocol subroutines are
        // generated fresh, and the workloads keep computation in leaves).
        for (id, sub) in self.orig.subroutines() {
            let new = self.out.add_subroutine(Subroutine::new(
                sub.name().to_string(),
                sub.params().to_vec(),
                Vec::new(),
            ));
            self.submap.insert(id, new);
        }
        for (id, sub) in self.orig.subroutines() {
            let body = self.remap_stmts(sub.body());
            *self.out.subroutine_mut(self.submap[&id]).body_mut() = body;
        }
    }

    fn create_bus_wires(&mut self) {
        let (addr_bits, data_bits) = (self.plan.addr_bits, self.plan.data_bits);
        for bus in self.plan.buses.clone() {
            let wires = BusWires::create(&mut self.out, &bus.name, addr_bits, data_bits);
            self.wires.insert(bus.name, wires);
        }
    }

    // --- step 2: master contexts, protocols, arbiters ---

    fn enumerate_contexts(&mut self) -> Result<(), RefineError> {
        let mut ifc_out: BTreeSet<ComponentId> = BTreeSet::new();
        let mut ifc_in: BTreeSet<ComponentId> = BTreeSet::new();

        for leaf in self.orig.leaves() {
            let comp = self.component_of(leaf)?;
            let vars = collect_body_vars(self.orig, leaf);
            let mut buses = BTreeSet::new();
            for v in vars {
                let chain = self.plan.access_buses(comp, v);
                if let Some(first) = chain.first() {
                    buses.insert(first.clone());
                }
                if chain.len() == 3 {
                    ifc_out.insert(comp);
                    if let Some(mem) = self.plan.memory_of(v) {
                        ifc_in.insert(mem.home);
                    }
                }
            }
            if !buses.is_empty() {
                self.contexts.push(MasterCtx {
                    key: CtxKey::LeafBody(leaf),
                    name: self.orig.behavior(leaf).name().to_string(),
                    buses,
                });
            }
        }

        for comp_b in self.orig.reachable() {
            let b = self.orig.behavior(comp_b);
            if b.is_leaf() {
                continue;
            }
            let comp = self.component_of(comp_b)?;
            let mut per_child: HashMap<BehaviorId, BTreeSet<VarId>> = HashMap::new();
            for t in b.transitions() {
                if let Some(cond) = &t.cond {
                    per_child.entry(t.from).or_default().extend(cond.reads());
                }
            }
            let mut children: Vec<_> = per_child.into_iter().collect();
            children.sort_by_key(|(c, _)| *c);
            for (child, vars) in children {
                if vars.is_empty() {
                    continue;
                }
                let mut buses = BTreeSet::new();
                for &v in &vars {
                    let chain = self.plan.access_buses(comp, v);
                    if let Some(first) = chain.first() {
                        buses.insert(first.clone());
                    }
                    if chain.len() == 3 {
                        ifc_out.insert(comp);
                        if let Some(mem) = self.plan.memory_of(v) {
                            ifc_in.insert(mem.home);
                        }
                    }
                }
                self.contexts.push(MasterCtx {
                    key: CtxKey::GuardFetch(comp_b, child),
                    name: format!("{}_{}_guard", b.name(), self.orig.behavior(child).name()),
                    buses,
                });
            }
        }

        for comp in ifc_out {
            let mut buses = BTreeSet::new();
            if let Some(inter) = self.plan.inter_bus_name() {
                buses.insert(inter.to_string());
            }
            self.contexts.push(MasterCtx {
                key: CtxKey::IfcOut(comp),
                name: format!("Bus_interface_p{}_out", comp.index()),
                buses,
            });
        }
        for comp in ifc_in {
            let mut buses = BTreeSet::new();
            if let Some(local) = self.plan.local_bus_of(comp) {
                buses.insert(local.to_string());
            }
            self.contexts.push(MasterCtx {
                key: CtxKey::IfcIn(comp),
                name: format!("Bus_interface_p{}_in", comp.index()),
                buses,
            });
        }
        Ok(())
    }

    fn create_protocols_and_arbiters(&mut self) {
        let (addr_bits, data_bits) = (self.plan.addr_bits, self.plan.data_bits);
        for bus in self.plan.buses.clone() {
            let masters: Vec<MasterCtx> = self
                .contexts
                .iter()
                .filter(|c| c.buses.contains(&bus.name))
                .cloned()
                .collect();
            let wires = self.wires[&bus.name];
            if masters.len() >= 2 {
                let mut reqacks = Vec::new();
                for (slot, ctx) in masters.iter().enumerate() {
                    let ra = ReqAck::create(&mut self.out, &bus.name, slot);
                    let suffix = format!("_m{slot}");
                    let recv = make_mst_receive(
                        &mut self.out,
                        &bus.name,
                        wires,
                        addr_bits,
                        data_bits,
                        &suffix,
                        Some(ra),
                    );
                    let send = make_mst_send(
                        &mut self.out,
                        &bus.name,
                        wires,
                        addr_bits,
                        data_bits,
                        &suffix,
                        Some(ra),
                    );
                    self.ctx_subs
                        .insert((bus.name.clone(), ctx.key), (recv, send));
                    reqacks.push(ra);
                }
                let arb = make_arbiter_with_policy(
                    &mut self.out,
                    &bus.name,
                    &reqacks,
                    self.options.arbiter_policy,
                );
                self.servers.push(arb);
                self.arch.arbiters.push(ArbiterDesc {
                    name: self.out.behavior(arb).name().to_string(),
                    bus: bus.name.clone(),
                    masters: masters.iter().map(|m| m.name.clone()).collect(),
                });
            } else if masters.len() == 1 {
                let recv = make_mst_receive(
                    &mut self.out,
                    &bus.name,
                    wires,
                    addr_bits,
                    data_bits,
                    "",
                    None,
                );
                let send = make_mst_send(
                    &mut self.out,
                    &bus.name,
                    wires,
                    addr_bits,
                    data_bits,
                    "",
                    None,
                );
                self.ctx_subs
                    .insert((bus.name.clone(), masters[0].key), (recv, send));
            }
        }
    }

    /// The protocol table for one context: refined-variable id →
    /// address/subroutine info, for every memory variable the context may
    /// touch.
    fn access_table(
        &self,
        key: CtxKey,
        comp: ComponentId,
        vars: impl IntoIterator<Item = VarId>,
    ) -> HashMap<VarId, VarAccess> {
        let mut table = HashMap::new();
        for v in vars {
            let Some(mem) = self.plan.memory_of(v) else {
                continue;
            };
            let chain = self.plan.access_buses(comp, v);
            let Some(first) = chain.first() else { continue };
            let Some(&(recv, send)) = self.ctx_subs.get(&(first.clone(), key)) else {
                continue;
            };
            let base = self.plan.addr.base(v).expect("memory vars are mapped");
            let elems = self.orig.variable(v).ty().element_count();
            let _ = mem;
            table.insert(
                self.vmap[&v],
                VarAccess {
                    base,
                    elems,
                    recv,
                    send,
                },
            );
        }
        table
    }

    // --- step 3: hierarchy copy (control + data refinement) ---

    fn copy_behavior(&mut self, id: BehaviorId) -> Result<BehaviorId, RefineError> {
        let b = self.orig.behavior(id).clone();
        match b.kind() {
            BehaviorKind::Leaf { body } => {
                let refined = self.refine_leaf_body(id, body)?;
                Ok(self.out.add_behavior(Behavior::new(
                    b.name().to_string(),
                    BehaviorKind::Leaf { body: refined },
                )))
            }
            BehaviorKind::Seq {
                children,
                transitions,
            } => {
                let comp = self.component_of(id)?;
                let mut occupant: HashMap<BehaviorId, BehaviorId> = HashMap::new();
                let mut new_children = Vec::new();
                for &c in children {
                    let o = self.copy_child(id, comp, c)?;
                    occupant.insert(c, o);
                    new_children.push(o);
                }
                let mut new_transitions = Vec::new();
                for t in transitions {
                    let cond = t.cond.as_ref().map(|cond| self.refine_guard_expr(id, cond));
                    new_transitions.push(Transition {
                        from: occupant[&t.from],
                        cond,
                        to: match t.to {
                            TransitionTarget::Behavior(to) => {
                                TransitionTarget::Behavior(occupant[&to])
                            }
                            TransitionTarget::Complete => TransitionTarget::Complete,
                        },
                    });
                }
                let new_id = self.out.add_behavior(Behavior::new(
                    b.name().to_string(),
                    BehaviorKind::Seq {
                        children: new_children,
                        transitions: new_transitions,
                    },
                ));
                self.insert_guard_fetches(id, comp, new_id, &occupant)?;
                Ok(new_id)
            }
            BehaviorKind::Concurrent { children } => {
                let comp = self.component_of(id)?;
                let mut new_children = Vec::new();
                for &c in children {
                    new_children.push(self.copy_child(id, comp, c)?);
                }
                Ok(self.out.add_behavior(Behavior::new(
                    b.name().to_string(),
                    BehaviorKind::Concurrent {
                        children: new_children,
                    },
                )))
            }
        }
    }

    /// Copies child `c` of a composite on component `parent_comp`,
    /// applying control refinement when the child is assigned elsewhere.
    fn copy_child(
        &mut self,
        _parent: BehaviorId,
        parent_comp: ComponentId,
        c: BehaviorId,
    ) -> Result<BehaviorId, RefineError> {
        let child_comp = self.component_of(c)?;
        if child_comp == parent_comp {
            return self.copy_behavior(c);
        }
        // Control-related refinement: B_CTRL here, B_NEW concurrently.
        let base = self.orig.behavior(c).name().to_string();
        let sigs = ControlSignals::create(&mut self.out, &base);
        let bctrl = make_bctrl(&mut self.out, &base, sigs);
        let bnew = if self.orig.behavior(c).is_leaf() {
            let body = self.orig.behavior(c).body().expect("leaf").to_vec();
            let refined = self.refine_leaf_body(c, &body)?;
            make_bnew_leaf(&mut self.out, &base, sigs, refined)
        } else {
            let inner = self.copy_behavior(c)?;
            make_bnew_composite(&mut self.out, &base, sigs, inner)
        };
        self.servers.push(bnew);
        Ok(bctrl)
    }

    fn refine_leaf_body(
        &mut self,
        leaf: BehaviorId,
        body: &[Stmt],
    ) -> Result<Vec<Stmt>, RefineError> {
        let comp = self.component_of(leaf)?;
        let remapped = self.remap_stmts(body);
        let vars = collect_body_vars(self.orig, leaf);
        let table = self.access_table(CtxKey::LeafBody(leaf), comp, vars);
        let prefix = self.orig.behavior(leaf).name().to_string();
        let mut refiner =
            DataRefiner::with_coalescing(&mut self.out, prefix, table, self.options.coalesce_reads);
        Ok(refiner.refine_body(remapped))
    }

    /// Rewrites a transition guard: ids remapped, memory-variable reads
    /// replaced by the composite's guard temporaries (Figure 6).
    fn refine_guard_expr(&mut self, composite: BehaviorId, cond: &Expr) -> Expr {
        let remapped = self.remap_expr(cond);
        self.substitute_guard_tmps(composite, remapped)
    }

    fn substitute_guard_tmps(&mut self, composite: BehaviorId, e: Expr) -> Expr {
        match e {
            Expr::Var(new_v) => {
                // Find the original id for plan lookups.
                let orig_v = self
                    .vmap
                    .iter()
                    .find(|(_, &nv)| nv == new_v)
                    .map(|(&ov, _)| ov);
                match orig_v {
                    Some(ov) if self.plan.memory_of(ov).is_some() => {
                        Expr::Var(self.guard_tmp_for(composite, ov))
                    }
                    _ => Expr::Var(new_v),
                }
            }
            Expr::Index(v, idx) => {
                let idx = self.substitute_guard_tmps(composite, *idx);
                // Guards over array elements fetch the element into the
                // same temporary (one per array variable).
                let orig_v = self.vmap.iter().find(|(_, &nv)| nv == v).map(|(&ov, _)| ov);
                match orig_v {
                    Some(ov) if self.plan.memory_of(ov).is_some() => {
                        Expr::Var(self.guard_tmp_for(composite, ov))
                    }
                    _ => Expr::Index(v, Box::new(idx)),
                }
            }
            Expr::Unary(op, inner) => {
                Expr::Unary(op, Box::new(self.substitute_guard_tmps(composite, *inner)))
            }
            Expr::Binary(op, l, r) => Expr::Binary(
                op,
                Box::new(self.substitute_guard_tmps(composite, *l)),
                Box::new(self.substitute_guard_tmps(composite, *r)),
            ),
            leaf => leaf,
        }
    }

    fn guard_tmp_for(&mut self, composite: BehaviorId, orig_var: VarId) -> VarId {
        if let Some(&t) = self.guard_tmp.get(&(composite, orig_var)) {
            return t;
        }
        let name = self.out.fresh_variable_name(&format!(
            "{}_tmp_{}",
            self.orig.behavior(composite).name(),
            self.orig.variable(orig_var).name()
        ));
        let ty = match self.orig.variable(orig_var).ty() {
            modref_spec::DataType::Array { elem, .. } => match elem {
                modref_spec::types::ScalarType::Bit => modref_spec::DataType::Bit,
                modref_spec::types::ScalarType::Bool => modref_spec::DataType::Bool,
                modref_spec::types::ScalarType::Int(w) => modref_spec::DataType::int(*w),
                modref_spec::types::ScalarType::Uint(w) => modref_spec::DataType::uint(*w),
            },
            scalar => *scalar,
        };
        let t = self.out.add_variable(name, ty, 0, None);
        self.guard_tmp.insert((composite, orig_var), t);
        t
    }

    /// Appends the Figure 6 guard fetches to each predecessor child's
    /// occupant (into the leaf body, or via an interposed fetch leaf for
    /// composite occupants).
    fn insert_guard_fetches(
        &mut self,
        composite: BehaviorId,
        comp: ComponentId,
        new_composite: BehaviorId,
        occupant: &HashMap<BehaviorId, BehaviorId>,
    ) -> Result<(), RefineError> {
        let b = self.orig.behavior(composite).clone();
        let mut per_child: HashMap<BehaviorId, BTreeSet<VarId>> = HashMap::new();
        for t in b.transitions() {
            if let Some(cond) = &t.cond {
                per_child.entry(t.from).or_default().extend(cond.reads());
            }
        }
        let mut items: Vec<_> = per_child.into_iter().collect();
        items.sort_by_key(|(c, _)| *c);
        for (child, vars) in items {
            if vars.is_empty() {
                continue;
            }
            let key = CtxKey::GuardFetch(composite, child);
            let table = self.access_table(key, comp, vars.iter().copied());
            // Fetch each guard variable into the composite's shared tmp.
            let mut fetches = Vec::new();
            for &v in &vars {
                let tmp = self.guard_tmp_for(composite, v);
                let new_v = self.vmap[&v];
                if let Some(acc) = table.get(&new_v) {
                    fetches.push(Stmt::Call {
                        sub: acc.recv,
                        args: vec![
                            CallArg::In(Expr::Lit(acc.base as i64)),
                            CallArg::Out(LValue::Var(tmp)),
                        ],
                    });
                }
            }
            if fetches.is_empty() {
                continue;
            }
            let o = occupant[&child];
            if self.out.behavior(o).is_leaf() {
                self.out
                    .behavior_mut(o)
                    .body_mut()
                    .expect("leaf occupant")
                    .extend(fetches);
            } else {
                // Interpose a fetch leaf after the composite occupant.
                let fetch_name = self
                    .out
                    .fresh_behavior_name(&format!("{}_fetch", self.orig.behavior(child).name()));
                let fetch_leaf = self.out.add_behavior(Behavior::new(
                    fetch_name,
                    BehaviorKind::Leaf { body: fetches },
                ));
                match self.out.behavior_mut(new_composite).kind_mut() {
                    BehaviorKind::Seq {
                        children,
                        transitions,
                    } => {
                        let pos = children
                            .iter()
                            .position(|&c| c == o)
                            .expect("occupant is a child");
                        children.insert(pos + 1, fetch_leaf);
                        for t in transitions.iter_mut() {
                            if t.from == o {
                                t.from = fetch_leaf;
                            }
                        }
                        transitions.push(Transition {
                            from: o,
                            cond: None,
                            to: TransitionTarget::Behavior(fetch_leaf),
                        });
                    }
                    _ => unreachable!("guard fetches only occur in seq composites"),
                }
            }
        }
        Ok(())
    }

    // --- step 4: memories and interfaces ---

    fn slv_subs_for(&mut self, bus: &str) -> SlvSubs {
        if let Some(&subs) = self.slv_subs.get(bus) {
            return subs;
        }
        let wires = self.wires[bus];
        let subs = SlvSubs {
            send: make_slv_send(&mut self.out, bus, wires, self.plan.data_bits),
            recv: make_slv_receive(&mut self.out, bus, wires, self.plan.data_bits),
        };
        self.slv_subs.insert(bus.to_string(), subs);
        subs
    }

    fn fill_memories(&mut self) {
        for (idx, mem) in self.plan.memories.clone().iter().enumerate() {
            let vars: Vec<MemoryVar> = mem
                .vars
                .iter()
                .map(|&v| MemoryVar {
                    var: self.vmap[&v],
                    base: self.plan.addr.base(v).expect("mapped"),
                    elems: self.orig.variable(v).ty().element_count(),
                })
                .collect();
            let decode = self.plan.addr.range_of(self.orig, &mem.vars);
            // Port 0 fills the placeholder (variables are scoped to it).
            let port0 = self.mem_port0[idx];
            let wires = self.wires[&mem.port_buses[0]];
            let slv = self.slv_subs_for(&mem.port_buses[0]);
            *self.out.behavior_mut(port0).kind_mut() = BehaviorKind::Leaf {
                body: memory_port_body(wires, &vars, decode, Some(slv)),
            };
            self.servers.push(port0);
            // Extra ports (Model3 multi-port global memories).
            for (j, bus) in mem.port_buses.clone().iter().enumerate().skip(1) {
                let wires = self.wires[bus];
                let slv = self.slv_subs_for(bus);
                let name = self
                    .out
                    .fresh_behavior_name(&format!("{}_port{j}", mem.name));
                let port = self.out.add_behavior(Behavior::new_server(
                    name,
                    BehaviorKind::Leaf {
                        body: memory_port_body(wires, &vars, decode, Some(slv)),
                    },
                ));
                self.servers.push(port);
            }
        }
    }

    fn create_interfaces(&mut self) -> Result<(), RefineError> {
        let out_ctxs: Vec<(ComponentId, CtxKey)> = self
            .contexts
            .iter()
            .filter_map(|c| match c.key {
                CtxKey::IfcOut(comp) => Some((comp, c.key)),
                _ => None,
            })
            .collect();
        for (comp, key) in out_ctxs {
            let serve_bus = self
                .plan
                .ifc_bus_of(comp)
                .expect("Model4 plans interface buses")
                .to_string();
            let inter = self
                .plan
                .inter_bus_name()
                .expect("Model4 plans an inter bus")
                .to_string();
            let (recv, send) = self.ctx_subs[&(inter.clone(), key)];
            let (id, _) = make_interface(
                &mut self.out,
                &format!("Bus_interface_p{}_out", comp.index()),
                self.wires[&serve_bus],
                None,
                ForwardSubs { recv, send },
            );
            self.servers.push(id);
            self.arch.interfaces.push(InterfaceDesc {
                name: self.out.behavior(id).name().to_string(),
                component_name: format!("p{}", comp.index()),
                serves_bus: serve_bus,
                masters_bus: inter,
            });
        }

        let in_ctxs: Vec<(ComponentId, CtxKey)> = self
            .contexts
            .iter()
            .filter_map(|c| match c.key {
                CtxKey::IfcIn(comp) => Some((comp, c.key)),
                _ => None,
            })
            .collect();
        for (comp, key) in in_ctxs {
            let inter = self
                .plan
                .inter_bus_name()
                .expect("Model4 plans an inter bus")
                .to_string();
            let local = self
                .plan
                .local_bus_of(comp)
                .expect("remote target has a local memory")
                .to_string();
            let (recv, send) = self.ctx_subs[&(local.clone(), key)];
            // Decode: the component's local memory range.
            let mem_vars: Vec<VarId> = self
                .plan
                .memories
                .iter()
                .filter(|m| m.home == comp)
                .flat_map(|m| m.vars.iter().copied())
                .collect();
            let decode = self.plan.addr.range_of(self.orig, &mem_vars);
            let (id, _) = make_interface(
                &mut self.out,
                &format!("Bus_interface_p{}_in", comp.index()),
                self.wires[&inter],
                decode,
                ForwardSubs { recv, send },
            );
            self.servers.push(id);
            self.arch.interfaces.push(InterfaceDesc {
                name: self.out.behavior(id).name().to_string(),
                component_name: format!("p{}", comp.index()),
                serves_bus: inter,
                masters_bus: local,
            });
        }
        Ok(())
    }

    fn populate_architecture(&mut self) {
        for bus in &self.plan.buses {
            let masters: Vec<String> = self
                .contexts
                .iter()
                .filter(|c| c.buses.contains(&bus.name))
                .map(|c| c.name.clone())
                .collect();
            let mut slaves: Vec<String> = self
                .plan
                .memories
                .iter()
                .filter(|m| m.port_buses.contains(&bus.name))
                .map(|m| m.name.clone())
                .collect();
            slaves.extend(
                self.arch
                    .interfaces
                    .iter()
                    .filter(|i| i.serves_bus == bus.name)
                    .map(|i| i.name.clone()),
            );
            self.arch.buses.push(Bus {
                name: bus.name.clone(),
                kind: bus.kind,
                data_bits: self.plan.data_bits,
                addr_bits: self.plan.addr_bits,
                masters,
                slaves,
            });
        }
        for mem in &self.plan.memories {
            self.arch.memories.push(MemoryModule {
                name: mem.name.clone(),
                component: Some(mem.home),
                global: mem.global,
                port_buses: mem.port_buses.clone(),
                vars: mem.vars.clone(),
                words: mem
                    .vars
                    .iter()
                    .map(|&v| u64::from(self.orig.variable(v).ty().element_count()))
                    .sum(),
                bits: mem
                    .vars
                    .iter()
                    .map(|&v| u64::from(self.orig.variable(v).ty().bit_width()))
                    .sum(),
            });
        }
    }

    // --- id remapping helpers ---

    fn remap_stmts(&self, stmts: &[Stmt]) -> Vec<Stmt> {
        stmts.iter().map(|s| self.remap_stmt(s)).collect()
    }

    fn remap_stmt(&self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign { target, value } => Stmt::Assign {
                target: self.remap_lvalue(target),
                value: self.remap_expr(value),
            },
            Stmt::SignalSet { signal, value } => Stmt::SignalSet {
                signal: self.smap[signal],
                value: self.remap_expr(value),
            },
            Stmt::Wait(WaitCond::Until(e)) => Stmt::Wait(WaitCond::Until(self.remap_expr(e))),
            Stmt::Wait(WaitCond::For(n)) => Stmt::Wait(WaitCond::For(*n)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: self.remap_expr(cond),
                then_body: self.remap_stmts(then_body),
                else_body: self.remap_stmts(else_body),
            },
            Stmt::While {
                cond,
                body,
                trip_hint,
            } => Stmt::While {
                cond: self.remap_expr(cond),
                body: self.remap_stmts(body),
                trip_hint: *trip_hint,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var: self.vmap[var],
                from: self.remap_expr(from),
                to: self.remap_expr(to),
                body: self.remap_stmts(body),
            },
            Stmt::Loop { body } => Stmt::Loop {
                body: self.remap_stmts(body),
            },
            Stmt::Call { sub, args } => Stmt::Call {
                sub: self.submap[sub],
                args: args
                    .iter()
                    .map(|a| match a {
                        CallArg::In(e) => CallArg::In(self.remap_expr(e)),
                        CallArg::Out(lv) => CallArg::Out(self.remap_lvalue(lv)),
                    })
                    .collect(),
            },
            Stmt::Delay(n) => Stmt::Delay(*n),
            Stmt::Skip => Stmt::Skip,
        }
    }

    fn remap_lvalue(&self, lv: &LValue) -> LValue {
        match lv {
            LValue::Var(v) => LValue::Var(self.vmap[v]),
            LValue::Index(v, idx) => LValue::Index(self.vmap[v], self.remap_expr(idx)),
            LValue::Param(name) => LValue::Param(name.clone()),
        }
    }

    fn remap_expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Var(v) => Expr::Var(self.vmap[v]),
            Expr::Index(v, idx) => Expr::Index(self.vmap[v], Box::new(self.remap_expr(idx))),
            Expr::Signal(s) => Expr::Signal(self.smap[s]),
            Expr::Param(name) => Expr::Param(name.clone()),
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(self.remap_expr(inner))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(self.remap_expr(l)),
                Box::new(self.remap_expr(r)),
            ),
        }
    }
}

/// Every variable a leaf behavior's body reads or writes, recursively.
fn collect_body_vars(spec: &Spec, leaf: BehaviorId) -> BTreeSet<VarId> {
    let mut vars = BTreeSet::new();
    if let Some(body) = spec.behavior(leaf).body() {
        modref_spec::visit::for_each_stmt(body, &mut |s| {
            vars.extend(s.direct_reads());
            vars.extend(s.direct_writes());
        });
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    fn fig1() -> (Spec, AccessGraph, Allocation, Partition) {
        // The paper's Figure 1: A, B, C sequential with guarded arcs on
        // x; B and x on the ASIC, A and C on the processor.
        let mut b = SpecBuilder::new("fig1");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf("A", vec![stmt::assign(x, expr::lit(5))]);
        let bb = b.leaf(
            "B",
            vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
        );
        let c = b.leaf("C", vec![stmt::assign(x, expr::lit(2))]);
        let arcs = vec![
            b.arc_when(a, expr::gt(expr::var(x), expr::lit(1)), bb),
            b.arc_when(a, expr::lt(expr::var(x), expr::lit(1)), c),
            b.arc_complete(bb),
            b.arc_complete(c),
        ];
        let top = b.seq("Top", vec![a, bb, c], arcs);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::new();
        part.assign_behavior(top, proc);
        part.assign_behavior(bb, asic);
        part.assign_var(x, asic);
        (spec, graph, alloc, part)
    }

    #[test]
    fn figure1_refines_under_every_model() {
        let (spec, graph, alloc, part) = fig1();
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)
                .unwrap_or_else(|e| panic!("{model}: {e}"));
            // Control refinement happened: B_CTRL + B_NEW exist.
            assert!(refined.spec.behavior_by_name("B_CTRL").is_some(), "{model}");
            assert!(refined.spec.behavior_by_name("B_NEW").is_some(), "{model}");
            // The refined spec is strictly larger.
            assert!(
                refined.spec.total_statements() > spec.total_statements(),
                "{model}"
            );
            // Bus count respects the paper's formula.
            assert!(
                refined.architecture.bus_count() <= model.max_buses(alloc.len()),
                "{model}"
            );
        }
    }

    #[test]
    fn refined_behavior_is_equivalent_to_original() {
        let (spec, graph, alloc, part) = fig1();
        let original = modref_sim::Simulator::new(&spec)
            .run()
            .expect("original runs");
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            let result = modref_sim::Simulator::new(&refined.spec)
                .run()
                .unwrap_or_else(|e| panic!("{model}: {e}"));
            assert_eq!(
                result.var_by_name("x"),
                original.var_by_name("x"),
                "{model}: refined x differs"
            );
        }
    }

    #[test]
    fn guard_fetches_are_inserted_for_nonleaf_scheme() {
        let (spec, graph, alloc, part) = fig1();
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
        // The guard on x must now read a temporary, fetched at the end of
        // A's body (A is the predecessor of both guarded arcs).
        let top = refined.spec.behavior_by_name("Top").unwrap();
        let guards: Vec<_> = refined.spec.behavior(top).transitions().to_vec();
        assert!(guards.iter().any(|t| t.cond.is_some()));
        let tmp = refined.spec.variable_by_name("Top_tmp_x");
        assert!(tmp.is_some(), "guard temporary exists");
        // A's copied body ends with a protocol call (the fetch).
        let a = refined.spec.behavior_by_name("A").unwrap();
        let body = refined.spec.behavior(a).body().unwrap();
        assert!(
            matches!(body.last(), Some(Stmt::Call { .. })),
            "fetch appended to A"
        );
    }

    #[test]
    fn model3_creates_multiport_memory_behaviors() {
        let (spec, graph, alloc, part) = fig1();
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model3).expect("refines");
        // x is global (accessed from both components) -> Gmem with 2
        // ports -> a second port behavior exists.
        let gmem_ports = refined
            .spec
            .behaviors()
            .filter(|(_, b)| b.name().starts_with("Gmem_"))
            .count();
        assert!(gmem_ports >= 2, "expected 2+ Gmem port behaviors");
    }

    #[test]
    fn model4_creates_interfaces_when_remote_access_exists() {
        let (spec, graph, alloc, part) = fig1();
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model4).expect("refines");
        assert!(
            !refined.architecture.interfaces.is_empty(),
            "remote accesses require interfaces"
        );
        assert!(refined
            .spec
            .behaviors()
            .any(|(_, b)| b.name().contains("Bus_interface")));
    }

    #[test]
    fn channel_buses_cover_all_data_channels() {
        let (spec, graph, alloc, part) = fig1();
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            assert_eq!(
                refined.channel_buses.len(),
                graph.data_channel_count(),
                "{model}"
            );
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    #[test]
    fn unassigned_behavior_is_reported() {
        let mut b = SpecBuilder::new("err");
        let x = b.var_int("x", 16, 0);
        let leaf = b.leaf("L", vec![stmt::assign(x, expr::lit(1))]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        // No default, no assignments: nothing resolves.
        let part = Partition::new();
        match refine(&spec, &graph, &alloc, &part, ImplModel::Model1) {
            Err(RefineError::UnassignedBehavior(_)) => {}
            other => panic!("expected unassigned-behavior error, got {other:?}"),
        }
    }

    #[test]
    fn empty_allocation_is_reported() {
        let mut b = SpecBuilder::new("err2");
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let part = Partition::new();
        match refine(&spec, &graph, &Allocation::new(), &part, ImplModel::Model2) {
            Err(RefineError::EmptyAllocation) => {}
            other => panic!("expected empty-allocation error, got {other:?}"),
        }
    }

    #[test]
    fn refined_names_never_collide_with_hostile_originals() {
        // The original spec already uses the names refinement would like
        // to mint; fresh-name generation must keep everything unique and
        // the output valid.
        let mut b = SpecBuilder::new("hostile");
        let x = b.var_int("B_tmp_x", 16, 0); // looks like a tmp
        let ctrl = b.leaf("B_CTRL", vec![stmt::assign(x, expr::lit(1))]);
        let bb = b.leaf(
            "B",
            vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
        );
        let top = b.seq_in_order("System", vec![ctrl, bb]); // steals "System"
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::with_default(proc);
        part.assign_behavior(spec.behavior_by_name("B").unwrap(), asic);
        part.assign_var(spec.variable_by_name("B_tmp_x").unwrap(), asic);
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1)
            .expect("hostile names still refine");
        // Validation inside refine() already guarantees uniqueness; also
        // check behavior equivalence.
        let orig = modref_sim::Simulator::new(&spec).run().expect("orig");
        let res = modref_sim::Simulator::new(&refined.spec)
            .run()
            .expect("refined");
        assert!(orig.diff_common_vars(&res).is_empty());
    }
}
