//! # modref-core
//!
//! The model-refinement engine of *Model Refinement for Hardware-Software
//! Codesign* (Gong, Gajski & Bakshi — UCI TR 95-14 / DATE 1996).
//!
//! Given a specification, its derived access graph, an allocation and a
//! partition, [`refine()`](refine()) transforms the *functional model* into an
//! *implementation model*: a new specification that is functionally
//! equivalent but reflects the chosen architecture — memories, buses, bus
//! protocols, arbiters and bus interfaces — under one of the paper's four
//! implementation models ([`ImplModel`]).
//!
//! The refinement procedures are the paper's three classes:
//!
//! * **control-related** ([`control`]) — behaviors moved across partition
//!   boundaries get `B_start`/`B_done` signals, a `B_CTRL` stub at the
//!   original site and a `B_NEW` wrapper (leaf scheme of Figure 4(b) or
//!   non-leaf scheme of Figure 4(c));
//! * **data-related** ([`data`]) — variable accesses become
//!   `MST_receive`/`MST_send` protocol calls against slave memory
//!   behaviors, with temporary registers; transition-guard reads use the
//!   non-leaf scheme of Figure 6;
//! * **architecture-related** ([`arbiter`], [`interface`]) — priority bus
//!   arbiters where several masters share a bus (Figure 7), and Model4's
//!   message-passing bus interfaces (Figure 8).
//!
//! [`plan::RefinePlan`] is the shared analysis: memory modules, buses,
//! the global address map, per-bus master lists, and the mapping of every
//! original data channel to the bus(es) that carry it — which also drives
//! the Figure 9 bus-transfer-rate tables ([`rates`]).
//!
//! ## Example
//!
//! ```
//! use modref_spec::builder::SpecBuilder;
//! use modref_spec::{expr, stmt};
//! use modref_graph::AccessGraph;
//! use modref_partition::{Allocation, Partition};
//! use modref_core::{refine, ImplModel};
//!
//! let mut b = SpecBuilder::new("demo");
//! let x = b.var_int("x", 16, 0);
//! let a = b.leaf("A", vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(5)))]);
//! let top = b.seq_in_order("Top", vec![a]);
//! let spec = b.finish(top)?;
//! let graph = AccessGraph::derive(&spec);
//! let alloc = Allocation::proc_plus_asic();
//! let part = Partition::with_default(alloc.by_name("PROC").unwrap());
//! let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1)?;
//! assert!(refined.spec.behavior_by_name("Gmem_p0").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod api;
pub mod arbiter;
pub mod arch;
pub mod control;
pub mod data;
pub mod dot;
pub mod error;
pub mod explore;
pub mod interface;
pub mod lint;
pub mod memory;
pub mod model;
pub mod plan;
pub mod protocol;
pub mod rates;
pub mod refine;
pub mod report;
pub mod serve;
pub mod trace_check;

pub use api::{Codesign, ModrefError};
pub use arbiter::ArbiterPolicy;
pub use arch::{ArbiterDesc, Architecture, Bus, BusKind, InterfaceDesc, MemoryModule};
pub use error::RefineError;
pub use explore::{DesignPoint, Exploration, Verification, VerifyRecord};
pub use lint::static_reject;
pub use model::ImplModel;
pub use plan::RefinePlan;
pub use rates::figure9_rates;
pub use refine::{refine, refine_with_options, RefineOptions, Refined};
pub use report::CostSummary;
pub use trace_check::{check_stuttering_refinement, TraceMismatch};
