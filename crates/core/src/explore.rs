//! Design-space exploration across partitions *and* implementation
//! models.
//!
//! The partition layer's multi-start explorer
//! ([`mod@modref_partition::explore`]) produces ranked candidate partitions;
//! this module crosses each candidate with the four implementation
//! models, evaluates the Figure 9 bus-rate tables for every pair, and
//! ranks the resulting design points. A point's quality is the pair
//! `(partition cost, max bus transfer rate)` — both minimized — and the
//! Pareto-optimal points are flagged so a designer reads the frontier
//! directly off the table.
//!
//! Rate evaluation fans out over the same deterministic
//! [`par_map`] used for partitioning, so the
//! full exploration is parallel end to end yet reproducible for a fixed
//! seed count regardless of thread count.
//!
//! [`Codesign::verify`](crate::api::Codesign::verify) closes the loop
//! from estimation to *verification*: every distinct Pareto-front
//! candidate is refined under all four implementation models and the
//! refined specification is simulated against the original (the paper's
//! functional-equivalence check), again fanned out over `par_map` — so
//! the explorer reports not just estimated cost/rate rankings but
//! simulation-backed pass/fail verdicts and observed bus traffic for the
//! frontier.

use std::sync::atomic::{AtomicU64, Ordering};

use modref_graph::AccessGraph;
use modref_partition::explore::{explore_with_observer, Candidate, ExploreConfig};
use modref_partition::{par_map, thread_count, Allocation, CostConfig, CostReport, Partition};
use modref_sim::{SimConfig, SimKernel, Simulator};
use modref_spec::span::SourceMap;
use modref_spec::Spec;

use crate::api::{CancelToken, Progress, ProgressFn};
use crate::error::RefineError;
use crate::model::ImplModel;
use crate::rates::figure9_rates;
use crate::refine::refine;

/// One fully evaluated design point: a candidate partition under one
/// implementation model.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: &'static str,
    /// The seed that drove it (0 for deterministic algorithms).
    pub seed: u64,
    /// The implementation model evaluated.
    pub model: ImplModel,
    /// Partition cost breakdown (model-independent).
    pub cost: CostReport,
    /// Peak bus transfer rate in Mbit/s (the Figure 9 hot spot).
    pub max_bus_rate: f64,
    /// Number of buses the refinement plan allocates.
    pub bus_count: usize,
    /// Whether the point is Pareto-optimal over
    /// `(cost.total, max_bus_rate)`, both minimized.
    pub pareto: bool,
    /// The candidate partition.
    pub partition: Partition,
}

/// The outcome of a full exploration: design points ranked best-first.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// All evaluated points, sorted by `(cost, max bus rate, model,
    /// algorithm, seed)`.
    pub points: Vec<DesignPoint>,
}

impl Exploration {
    /// The Pareto-optimal points, in ranked order.
    pub fn pareto_front(&self) -> Vec<&DesignPoint> {
        self.points.iter().filter(|p| p.pareto).collect()
    }
}

/// The implementation behind
/// [`Codesign::explore`](crate::api::Codesign::explore). The token is
/// checked before each partition job and each rate evaluation; on stop
/// the partial result ranks whatever finished — the facade then checks
/// its token, discards the partial result and reports the stop reason.
///
/// `progress` receives `explore.job` per finished partition job,
/// `explore.candidates` once the candidate set is fixed, and
/// `explore.rate` per finished rate evaluation.
pub(crate) fn explore_designs_impl(
    spec: &Spec,
    graph: &AccessGraph,
    allocation: &Allocation,
    cost_config: &CostConfig,
    expl: &ExploreConfig,
    cancel: Option<&CancelToken>,
    progress: Option<&ProgressFn>,
) -> Result<Exploration, RefineError> {
    let span = modref_obs::span("explore_designs");
    let span_id = span.id();
    let stop_fn: Option<Box<dyn Fn() -> bool + Sync>> = cancel.map(|token| {
        let token = token.clone();
        Box::new(move || token.stopped().is_some()) as Box<dyn Fn() -> bool + Sync>
    });
    let on_job: Option<Box<dyn Fn(u64, u64) + Sync>> = progress.map(|p| {
        let p = p.clone();
        Box::new(move |done: u64, total: u64| {
            p.emit(&Progress {
                phase: "explore.job",
                done,
                total,
            });
        }) as Box<dyn Fn(u64, u64) + Sync>
    });
    let candidates = explore_with_observer(
        spec,
        graph,
        allocation,
        cost_config,
        expl,
        stop_fn.as_deref(),
        on_job.as_deref(),
    );
    let lifetime = cost_config.lifetime;

    // Cross candidates with models; rate evaluation is independent per
    // pair, so fan it out too.
    let jobs: Vec<(usize, ImplModel)> = candidates
        .iter()
        .enumerate()
        .flat_map(|(i, _)| ImplModel::ALL.iter().map(move |&m| (i, m)))
        .collect();
    if let Some(p) = progress {
        let n = candidates.len() as u64;
        p.emit(&Progress {
            phase: "explore.candidates",
            done: n,
            total: n,
        });
    }
    let rate_total = jobs.len() as u64;
    let rate_done = AtomicU64::new(0);
    let threads = thread_count(expl.threads);
    let rated = par_map(jobs, threads, |_, (ci, model)| {
        if cancel.is_some_and(|t| t.stopped().is_some()) {
            return Ok(None);
        }
        let _job = modref_obs::span_under(span_id, "rate_eval").attr("model", model.name());
        let cand: &Candidate = &candidates[ci];
        let out = figure9_rates(spec, graph, allocation, &cand.partition, model, &lifetime)
            .map(|table| Some((ci, model, table.max_rate(), table.bus_count())));
        if let Some(p) = progress {
            let done = rate_done.fetch_add(1, Ordering::Relaxed) + 1;
            p.emit(&Progress {
                phase: "explore.rate",
                done,
                total: rate_total,
            });
        }
        out
    });

    let mut points = Vec::with_capacity(rated.len());
    for r in rated {
        let Some((ci, model, max_bus_rate, bus_count)) = r? else {
            continue;
        };
        let cand = &candidates[ci];
        points.push(DesignPoint {
            algorithm: cand.algorithm,
            seed: cand.seed,
            model,
            cost: cand.cost,
            max_bus_rate,
            bus_count,
            pareto: false,
            partition: cand.partition.clone(),
        });
    }

    rank(&mut points);
    mark_pareto(&mut points);
    Ok(Exploration { points })
}

/// The simulation-equivalence verdict for one Pareto-front candidate
/// under one implementation model.
///
/// All fields are exact (no floats), so verification outcomes compare
/// byte-identical across runs and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyRecord {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: &'static str,
    /// The seed that drove it (0 for deterministic algorithms).
    pub seed: u64,
    /// The implementation model the candidate was refined under.
    pub model: ImplModel,
    /// Whether the refined specification simulated to the same observable
    /// variable state as the original.
    pub equivalent: bool,
    /// Empty when equivalent; otherwise a description of the divergence
    /// (differing variables, or the refine/simulation error).
    pub detail: String,
    /// Final simulated time of the refined specification.
    pub refined_time: u64,
    /// Micro-steps the refined simulation executed.
    pub refined_steps: u64,
    /// Signal writes the refined simulation performed beyond the
    /// original's — the bus-protocol traffic the refinement introduced
    /// (handshakes, address/data transfers, arbitration).
    pub bus_traffic: u64,
}

/// The outcome of verifying an exploration's Pareto front by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    /// One record per distinct front candidate × implementation model,
    /// in front rank order then model order.
    pub records: Vec<VerifyRecord>,
    /// Final simulated time of the original (unrefined) specification.
    pub original_time: u64,
    /// Micro-steps the original simulation executed.
    pub original_steps: u64,
}

impl Verification {
    /// Whether every candidate×model pair verified equivalent.
    pub fn all_equivalent(&self) -> bool {
        self.records.iter().all(|r| r.equivalent)
    }

    /// Count of failing records.
    pub fn failures(&self) -> usize {
        self.records.iter().filter(|r| !r.equivalent).count()
    }
}

/// The implementation behind
/// [`Codesign::verify`](crate::api::Codesign::verify): simulates
/// original vs. refined specifications for every distinct Pareto-front
/// candidate × Model1–4, in parallel over the deterministic [`par_map`].
///
/// Refinement or simulation failures are *reported* (as non-equivalent
/// records with the error in `detail`), not propagated — a design-space
/// sweep should show which corners break, not abort on the first one.
/// Output is identical regardless of thread count. The token is checked
/// before each candidate × model job; jobs that start after a stop
/// return a non-equivalent record marked `"stopped"` (the facade then
/// checks its token and reports the stop reason instead). `progress`
/// receives `verify.job` per finished candidate × model job.
///
/// With `check_traces` set, both simulations record full event traces
/// and each refined run must additionally pass the
/// [stuttering-refinement check](crate::trace_check) against the
/// original's trace; `map` supplies declaration spans for the mismatch
/// report.
#[allow(clippy::too_many_arguments)] // one call site per option surface
pub(crate) fn verify_pareto_impl(
    spec: &Spec,
    graph: &AccessGraph,
    allocation: &Allocation,
    exploration: &Exploration,
    threads: Option<usize>,
    cancel: Option<&CancelToken>,
    kernel: SimKernel,
    check_traces: bool,
    map: &SourceMap,
    progress: Option<&ProgressFn>,
) -> Verification {
    let span = modref_obs::span("verify_pareto");
    let span_id = span.id();
    let pass_counter = modref_obs::counter("verify.pass");
    let fail_counter = modref_obs::counter("verify.fail");
    let reject_counter = modref_obs::counter("verify.static_reject");
    let deadlock_counter = modref_obs::counter("verify.static_deadlock");
    let sim_config = SimConfig {
        kernel,
        trace: check_traces,
        ..SimConfig::default()
    };
    let original = Simulator::with_config(spec, sim_config).run();
    let (original_time, original_steps) = match &original {
        Ok(r) => (r.time, r.steps),
        Err(_) => (0, 0),
    };

    // Distinct front candidates, in rank order. A candidate can appear on
    // the front under several models; verification refines it under all
    // four regardless, so deduplicate by identity.
    let mut cands: Vec<(&'static str, u64, &Partition)> = Vec::new();
    for p in exploration.pareto_front() {
        if !cands
            .iter()
            .any(|&(a, s, _)| a == p.algorithm && s == p.seed)
        {
            cands.push((p.algorithm, p.seed, &p.partition));
        }
    }

    let jobs: Vec<(usize, ImplModel)> = (0..cands.len())
        .flat_map(|ci| ImplModel::ALL.iter().map(move |&m| (ci, m)))
        .collect();
    let job_total = jobs.len() as u64;
    let job_done = AtomicU64::new(0);
    let workers = thread_count(threads);
    let records = par_map(jobs, workers, |_, (ci, model)| {
        let (algorithm, seed, partition) = cands[ci];
        let emit_done = || {
            if let Some(p) = progress {
                let done = job_done.fetch_add(1, Ordering::Relaxed) + 1;
                p.emit(&Progress {
                    phase: "verify.job",
                    done,
                    total: job_total,
                });
            }
        };
        if cancel.is_some_and(|t| t.stopped().is_some()) {
            emit_done();
            return VerifyRecord {
                algorithm,
                seed,
                model,
                equivalent: false,
                detail: "stopped before simulation".into(),
                refined_time: 0,
                refined_steps: 0,
                bus_traffic: 0,
            };
        }
        let _job = modref_obs::span_under(span_id, "verify.job")
            .attr("algorithm", algorithm)
            .attr("seed", seed)
            .attr("model", model.name());
        let record = (|| {
            let mut record = VerifyRecord {
                algorithm,
                seed,
                model,
                equivalent: false,
                detail: String::new(),
                refined_time: 0,
                refined_steps: 0,
                bus_traffic: 0,
            };
            let refined = match refine(spec, graph, allocation, partition, model) {
                Ok(r) => r,
                Err(e) => {
                    record.detail = format!("refinement failed: {e}");
                    return record;
                }
            };
            // Static gate: a candidate whose architecture trips
            // RC01-RC04 would deadlock or misdecode in simulation, and
            // one whose refined behaviors trip DL01-DL05 provably
            // deadlocks; reject either without spending the simulation
            // time (a statically-dead candidate would otherwise burn
            // the whole step limit before failing).
            let diags = crate::lint::lint_refined_impl(spec, graph, &refined);
            if let Some(codes) = crate::lint::static_reject(&diags) {
                reject_counter.inc();
                if codes.split(", ").any(|c| c.starts_with("DL")) {
                    deadlock_counter.inc();
                }
                record.detail = format!("static analysis rejected: {codes}");
                return record;
            }
            // The original-run outcome gates only the dynamic comparison:
            // checking it *after* the static gate lets a DL-flagged
            // candidate report the lint codes rather than the far less
            // actionable "original simulation failed: deadlock".
            let orig = match &original {
                Ok(r) => r,
                Err(e) => {
                    record.detail = format!("original simulation failed: {e}");
                    return record;
                }
            };
            let result = match Simulator::with_config(&refined.spec, sim_config).run() {
                Ok(r) => r,
                Err(e) => {
                    record.detail = format!("refined simulation failed: {e}");
                    return record;
                }
            };
            record.refined_time = result.time;
            record.refined_steps = result.steps;
            record.bus_traffic = result.signal_writes.saturating_sub(orig.signal_writes);
            let diffs = orig.diff_common_vars(&result);
            if !diffs.is_empty() {
                record.detail = format!("vars diverged: {}", diffs.join(", "));
                return record;
            }
            if check_traces {
                if let (Some(ot), Some(rt)) = (&orig.trace, &result.trace) {
                    if let Err(m) = crate::trace_check::check_stuttering_refinement(
                        spec,
                        ot,
                        &refined.spec,
                        rt,
                        map,
                    ) {
                        record.detail = m.to_string();
                        return record;
                    }
                }
            }
            record.equivalent = true;
            record
        })();
        if record.equivalent {
            pass_counter.inc();
        } else {
            fail_counter.inc();
        }
        emit_done();
        record
    });

    Verification {
        records,
        original_time,
        original_steps,
    }
}

/// Total order: partition cost, then peak bus rate, then model number,
/// then algorithm name, then seed. `total_cmp` keeps the order total
/// even for NaN costs/rates, so ranking can never panic mid-request.
fn rank(points: &mut [DesignPoint]) {
    points.sort_by(|a, b| {
        a.cost
            .total
            .total_cmp(&b.cost.total)
            .then_with(|| a.max_bus_rate.total_cmp(&b.max_bus_rate))
            .then_with(|| a.model.number().cmp(&b.model.number()))
            .then_with(|| a.algorithm.cmp(b.algorithm))
            .then_with(|| a.seed.cmp(&b.seed))
    });
}

/// Flags points not dominated by any other over
/// `(cost.total, max_bus_rate)`, both minimized. `a` dominates `b` when
/// it is no worse on both axes and strictly better on at least one.
fn mark_pareto(points: &mut [DesignPoint]) {
    let metrics: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.cost.total, p.max_bus_rate))
        .collect();
    for i in 0..points.len() {
        let (ci, ri) = metrics[i];
        let dominated = metrics
            .iter()
            .enumerate()
            .any(|(j, &(cj, rj))| j != i && cj <= ci && rj <= ri && (cj < ci || rj < ri));
        points[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_workloads::{medical_allocation, medical_spec};

    fn small_expl() -> ExploreConfig {
        ExploreConfig {
            seeds: 1,
            anneal_iterations: 40,
            migration_passes: 2,
            threads: Some(2),
        }
    }

    fn explore(spec: &Spec, graph: &AccessGraph, expl: &ExploreConfig) -> Exploration {
        explore_designs_impl(
            spec,
            graph,
            &medical_allocation(),
            &CostConfig::default(),
            expl,
            None,
            None,
        )
        .expect("exploration succeeds")
    }

    #[test]
    fn explores_medical_design_space() {
        let spec = medical_spec();
        let graph = AccessGraph::derive(&spec);
        let out = explore(&spec, &graph, &small_expl());
        // (2 seeded jobs × 1 seed + 3 singleton jobs) × 4 models.
        assert_eq!(out.points.len(), 5 * 4);
        // Ranked by cost then rate.
        for w in out.points.windows(2) {
            assert!((w[0].cost.total, w[0].max_bus_rate) <= (w[1].cost.total, w[1].max_bus_rate));
        }
        // The frontier is non-empty and its members are flagged.
        let front = out.pareto_front();
        assert!(!front.is_empty());
        // The overall best-cost point is always on the frontier... unless
        // an equal-cost point with a lower rate exists; either way the
        // first-ranked point's cost is not beaten by any frontier member.
        assert!(front
            .iter()
            .all(|p| p.cost.total >= out.points[0].cost.total));
    }

    #[test]
    fn exploration_is_deterministic_across_thread_counts() {
        let spec = medical_spec();
        let graph = AccessGraph::derive(&spec);
        let a = explore(
            &spec,
            &graph,
            &ExploreConfig {
                threads: Some(1),
                ..small_expl()
            },
        );
        let b = explore(
            &spec,
            &graph,
            &ExploreConfig {
                threads: Some(8),
                ..small_expl()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn verify_pareto_confirms_front_equivalence() {
        let spec = medical_spec();
        let graph = AccessGraph::derive(&spec);
        let alloc = medical_allocation();
        let out = explore(&spec, &graph, &small_expl());
        let v = verify_pareto_impl(
            &spec,
            &graph,
            &alloc,
            &out,
            Some(2),
            None,
            SimKernel::default(),
            false,
            &SourceMap::default(),
            None,
        );
        // One record per distinct front candidate × 4 models.
        let distinct: std::collections::BTreeSet<(&str, u64)> = out
            .pareto_front()
            .iter()
            .map(|p| (p.algorithm, p.seed))
            .collect();
        assert_eq!(v.records.len(), distinct.len() * 4);
        assert!(
            v.all_equivalent(),
            "front refinements must simulate equivalent: {:?}",
            v.records
                .iter()
                .filter(|r| !r.equivalent)
                .collect::<Vec<_>>()
        );
        assert_eq!(v.failures(), 0);
        // Refinement introduces bus-protocol signal traffic.
        assert!(v.records.iter().all(|r| r.bus_traffic > 0));
        assert!(v.original_steps > 0);
    }

    #[test]
    fn pareto_dominance_is_strict() {
        // Hand-built points: (cost, rate) = (1, 5), (2, 3), (3, 4).
        // (3, 4) is dominated by (2, 3); the others are optimal.
        let mk = |cost: f64, rate: f64| DesignPoint {
            algorithm: "x",
            seed: 0,
            model: ImplModel::Model1,
            cost: CostReport {
                cut_bits: 0.0,
                imbalance_ns: 0.0,
                violation: 0.0,
                total: cost,
            },
            max_bus_rate: rate,
            bus_count: 1,
            pareto: false,
            partition: Partition::new(),
        };
        let mut pts = vec![mk(1.0, 5.0), mk(2.0, 3.0), mk(3.0, 4.0)];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(pts[1].pareto);
        assert!(!pts[2].pareto);
    }
}
