//! The four implementation models of the paper's Section 3.

use std::fmt;

/// An implementation model: the communication scheme the refined
/// specification realizes. The three design parameters the paper varies —
/// memory-port count, variable mapping and communication style — are
/// bundled into the four named models of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplModel {
    /// **Single-port global memory only.** Every variable lives in one
    /// global memory; every behavior reaches it over one shared bus.
    /// Maximum buses: 1.
    Model1,
    /// **Local memory + single-port global memory.** Local variables move
    /// to per-component local memories (local buses); global variables
    /// share a single-port global memory on one shared bus.
    /// Maximum buses: `p + 1`.
    Model2,
    /// **Local memory + multi-port global memory.** Like Model2, but each
    /// component reaches each global memory over its own dedicated bus
    /// (global memories gain one port per component).
    /// Maximum buses: `p + p*p`.
    Model3,
    /// **Local memory + bus interface (message passing).** Every variable
    /// is local; remote accesses travel through bus-interface behaviors
    /// over an inter-component bus. Maximum buses: `2p + 1`.
    Model4,
}

impl ImplModel {
    /// All four models, in paper order.
    pub const ALL: [ImplModel; 4] = [
        ImplModel::Model1,
        ImplModel::Model2,
        ImplModel::Model3,
        ImplModel::Model4,
    ];

    /// The paper's upper bound on bus count for `p` partitions.
    pub fn max_buses(self, p: usize) -> usize {
        match self {
            ImplModel::Model1 => 1,
            ImplModel::Model2 => p + 1,
            ImplModel::Model3 => p + p * p,
            ImplModel::Model4 => 2 * p + 1,
        }
    }

    /// The maximum number of ports on a global memory under this model
    /// for `p` partitions.
    pub fn max_global_memory_ports(self, p: usize) -> usize {
        match self {
            ImplModel::Model1 | ImplModel::Model2 => 1,
            ImplModel::Model3 => p,
            ImplModel::Model4 => 0, // no global memory exists
        }
    }

    /// Whether local variables get per-component local memories.
    pub fn has_local_memories(self) -> bool {
        !matches!(self, ImplModel::Model1)
    }

    /// Whether the model communicates by message passing through bus
    /// interfaces rather than shared memory.
    pub fn uses_bus_interface(self) -> bool {
        matches!(self, ImplModel::Model4)
    }

    /// The model's number, 1 through 4.
    pub fn number(self) -> u8 {
        match self {
            ImplModel::Model1 => 1,
            ImplModel::Model2 => 2,
            ImplModel::Model3 => 3,
            ImplModel::Model4 => 4,
        }
    }

    /// Short name as used in the paper's tables ("Model1"...).
    pub fn name(self) -> &'static str {
        match self {
            ImplModel::Model1 => "Model1",
            ImplModel::Model2 => "Model2",
            ImplModel::Model3 => "Model3",
            ImplModel::Model4 => "Model4",
        }
    }
}

impl fmt::Display for ImplModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_formulas_match_paper_for_two_partitions() {
        // Section 3 with p = 2: 1, 3, 6, 5.
        assert_eq!(ImplModel::Model1.max_buses(2), 1);
        assert_eq!(ImplModel::Model2.max_buses(2), 3);
        assert_eq!(ImplModel::Model3.max_buses(2), 6);
        assert_eq!(ImplModel::Model4.max_buses(2), 5);
    }

    #[test]
    fn port_counts_match_paper() {
        assert_eq!(ImplModel::Model1.max_global_memory_ports(2), 1);
        assert_eq!(ImplModel::Model3.max_global_memory_ports(2), 2);
        assert_eq!(ImplModel::Model4.max_global_memory_ports(2), 0);
    }

    #[test]
    fn classification_flags() {
        assert!(!ImplModel::Model1.has_local_memories());
        assert!(ImplModel::Model2.has_local_memories());
        assert!(ImplModel::Model4.uses_bus_interface());
        assert!(!ImplModel::Model3.uses_bus_interface());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(ImplModel::Model3.to_string(), "Model3");
        assert_eq!(ImplModel::ALL.len(), 4);
    }
}
