//! Control-related refinement — the paper's Figure 4.
//!
//! When behavior `B` is assigned to a different component than its parent
//! composite, the execution sequence must be preserved across the chip
//! boundary. Two signals are introduced — `B_start` and `B_done` — plus:
//!
//! * a **`B_CTRL`** leaf at `B`'s original position, which raises
//!   `B_start`, waits for `B_done`, and completes the four-phase
//!   handshake so `B` can run again on the next activation;
//! * a **`B_NEW`** wrapper running concurrently on the other component:
//!   the *leaf scheme* (Figure 4(b)) encloses `B`'s statements in an
//!   infinite `loop { wait start; body; set done; }`; the *non-leaf
//!   scheme* (Figure 4(c)) builds a sequential composite
//!   `[wait-leaf, B, done-leaf]` looped by a transition arc, because a
//!   composite's children cannot be enclosed in a leaf's loop.

use modref_spec::{
    expr, stmt, Behavior, BehaviorId, BehaviorKind, SignalId, Spec, Stmt, Transition,
    TransitionTarget,
};

/// The start/done signal pair guarding a moved behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlSignals {
    /// Raised by `B_CTRL` to start the moved behavior.
    pub start: SignalId,
    /// Raised by the moved behavior on completion.
    pub done: SignalId,
}

impl ControlSignals {
    /// Declares `B_start`/`B_done` for the behavior named `base`.
    pub fn create(spec: &mut Spec, base: &str) -> Self {
        let start_name = spec.fresh_signal_name(&format!("{base}_start"));
        let done_name = spec.fresh_signal_name(&format!("{base}_done"));
        Self {
            start: spec.add_signal(start_name, modref_spec::DataType::Bit, 0),
            done: spec.add_signal(done_name, modref_spec::DataType::Bit, 0),
        }
    }
}

/// Builds the `B_CTRL` stub that occupies the moved behavior's original
/// position (Figure 4(a) right side).
pub fn make_bctrl(spec: &mut Spec, base: &str, sigs: ControlSignals) -> BehaviorId {
    let name = spec.fresh_behavior_name(&format!("{base}_CTRL"));
    let body = vec![
        stmt::set_signal(sigs.start, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(sigs.done), expr::lit(1))),
        stmt::set_signal(sigs.start, expr::lit(0)),
        stmt::wait_until(expr::eq(expr::signal(sigs.done), expr::lit(0))),
    ];
    spec.add_behavior(Behavior::new(name, BehaviorKind::Leaf { body }))
}

/// Builds `B_NEW` with the **leaf scheme** (Figure 4(b)): the moved
/// behavior's statements wrapped in a guarded infinite loop. `body` is the
/// already-refined statement list of the original leaf.
pub fn make_bnew_leaf(
    spec: &mut Spec,
    base: &str,
    sigs: ControlSignals,
    body: Vec<Stmt>,
) -> BehaviorId {
    let name = spec.fresh_behavior_name(&format!("{base}_NEW"));
    let mut looped = vec![stmt::wait_until(expr::eq(
        expr::signal(sigs.start),
        expr::lit(1),
    ))];
    looped.extend(body);
    looped.extend([
        stmt::set_signal(sigs.done, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(sigs.start), expr::lit(0))),
        stmt::set_signal(sigs.done, expr::lit(0)),
    ]);
    spec.add_behavior(Behavior::new_server(
        name,
        BehaviorKind::Leaf {
            body: vec![stmt::infinite_loop(looped)],
        },
    ))
}

/// Builds `B_NEW` with the **non-leaf scheme** (Figure 4(c)): a looping
/// sequential composite `[wait, inner, done]` where `inner` is the copied
/// (already refined) composite behavior.
pub fn make_bnew_composite(
    spec: &mut Spec,
    base: &str,
    sigs: ControlSignals,
    inner: BehaviorId,
) -> BehaviorId {
    let wait_name = spec.fresh_behavior_name(&format!("{base}_wait"));
    let wait_leaf = spec.add_behavior(Behavior::new(
        wait_name,
        BehaviorKind::Leaf {
            body: vec![stmt::wait_until(expr::eq(
                expr::signal(sigs.start),
                expr::lit(1),
            ))],
        },
    ));
    let done_name = spec.fresh_behavior_name(&format!("{base}_set_done"));
    let done_leaf = spec.add_behavior(Behavior::new(
        done_name,
        BehaviorKind::Leaf {
            body: vec![
                stmt::set_signal(sigs.done, expr::lit(1)),
                stmt::wait_until(expr::eq(expr::signal(sigs.start), expr::lit(0))),
                stmt::set_signal(sigs.done, expr::lit(0)),
            ],
        },
    ));
    let name = spec.fresh_behavior_name(&format!("{base}_NEW"));
    spec.add_behavior(Behavior::new_server(
        name,
        BehaviorKind::Seq {
            children: vec![wait_leaf, inner, done_leaf],
            transitions: vec![Transition {
                from: done_leaf,
                cond: None,
                to: TransitionTarget::Behavior(wait_leaf),
            }],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;

    /// Rebuilds the paper's Figure 4 by hand: A; B; C sequential, with B
    /// moved to another partition. The refined spec must execute B after
    /// A and before C — twice, to prove the handshake re-arms.
    #[test]
    fn moved_leaf_preserves_execution_order_across_activations() {
        let mut b = SpecBuilder::new("fig4");
        let trace = b.var_int("trace", 32, 0);
        let push = |v: i64| {
            stmt::assign(
                modref_spec::VarId::from_raw(0),
                expr::add(
                    expr::mul(expr::var(modref_spec::VarId::from_raw(0)), expr::lit(10)),
                    expr::lit(v),
                ),
            )
        };
        assert_eq!(trace.index(), 0);
        let a = b.leaf("A", vec![push(1)]);
        let c = b.leaf("C", vec![push(3)]);
        let round = b.seq_in_order("Round", vec![a, c]); // B_CTRL inserted below
        let top = b.seq_in_order("Main", vec![round]);
        let mut spec = b.finish_unchecked(top);

        // Move "B" (body pushes 2) out: create signals, ctrl, wrapper.
        let sigs = ControlSignals::create(&mut spec, "B");
        let bctrl = make_bctrl(&mut spec, "B", sigs);
        let bnew = make_bnew_leaf(&mut spec, "B", sigs, vec![push(2)]);

        // Splice B_CTRL between A and C.
        match spec.behavior_mut(round).kind_mut() {
            BehaviorKind::Seq { children, .. } => children.insert(1, bctrl),
            _ => unreachable!(),
        }
        // Run the Round twice to check the handshake re-arms.
        match spec.behavior_mut(top).kind_mut() {
            BehaviorKind::Seq { children, .. } => {
                let again = children[0];
                children.push(again);
            }
            _ => unreachable!(),
        }
        // Re-adding the same child violates the tree invariant; instead
        // loop via a transition.
        match spec.behavior_mut(top).kind_mut() {
            BehaviorKind::Seq { children, .. } => {
                children.pop();
            }
            _ => unreachable!(),
        }
        let counter = spec.add_variable("rounds", modref_spec::DataType::int(8), 0, None);
        let bump = spec.add_behavior(Behavior::new(
            "Bump",
            BehaviorKind::Leaf {
                body: vec![stmt::assign(
                    counter,
                    expr::add(expr::var(counter), expr::lit(1)),
                )],
            },
        ));
        match spec.behavior_mut(top).kind_mut() {
            BehaviorKind::Seq {
                children,
                transitions,
            } => {
                children.push(bump);
                transitions.push(Transition {
                    from: bump,
                    cond: Some(expr::lt(expr::var(counter), expr::lit(2))),
                    to: TransitionTarget::Behavior(round),
                });
            }
            _ => unreachable!(),
        }

        let system = spec.add_behavior(Behavior::new(
            "System",
            BehaviorKind::Concurrent {
                children: vec![top, bnew],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("completes");
        // Two rounds of 1,2,3: trace = 123123.
        assert_eq!(r.var_by_name("trace"), Some(123_123));
    }

    /// The non-leaf scheme: a moved composite (two sequential leaves)
    /// wrapped per Figure 4(c).
    #[test]
    fn moved_composite_uses_nonleaf_scheme() {
        let mut b = SpecBuilder::new("fig4c");
        let x = b.var_int("x", 16, 0);
        let inner1 = b.leaf(
            "I1",
            vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(5)))],
        );
        let inner2 = b.leaf(
            "I2",
            vec![stmt::assign(x, expr::mul(expr::var(x), expr::lit(2)))],
        );
        let moved = b.seq_in_order("Moved", vec![inner1, inner2]);
        let before = b.leaf("Before", vec![stmt::assign(x, expr::lit(1))]);
        let main = b.seq_in_order("Main", vec![before]);
        let mut spec = b.finish_unchecked(main);

        let sigs = ControlSignals::create(&mut spec, "Moved");
        let bctrl = make_bctrl(&mut spec, "Moved", sigs);
        let bnew = make_bnew_composite(&mut spec, "Moved", sigs, moved);
        match spec.behavior_mut(main).kind_mut() {
            BehaviorKind::Seq { children, .. } => children.push(bctrl),
            _ => unreachable!(),
        }
        let system = spec.add_behavior(Behavior::new(
            "System",
            BehaviorKind::Concurrent {
                children: vec![main, bnew],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("completes");
        assert_eq!(r.var_by_name("x"), Some(12)); // (1+5)*2
                                                  // Wrapper shape: seq server with 3 children and a loop-back arc.
        let wrapper = spec.behavior(bnew);
        assert!(wrapper.is_server());
        assert_eq!(wrapper.children().len(), 3);
        assert_eq!(wrapper.transitions().len(), 1);
    }

    #[test]
    fn control_signal_names_follow_paper_convention() {
        let mut b = SpecBuilder::new("names");
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let sigs = ControlSignals::create(&mut spec, "B");
        assert_eq!(spec.signal(sigs.start).name(), "B_start");
        assert_eq!(spec.signal(sigs.done).name(), "B_done");
        let ctrl = make_bctrl(&mut spec, "B", sigs);
        assert_eq!(spec.behavior(ctrl).name(), "B_CTRL");
    }
}
