//! Bus arbiter generation — the paper's Figure 7.
//!
//! When more than one master shares a bus, a priority arbiter behavior is
//! inserted: masters assert their private request line, the arbiter
//! grants the highest-priority requester by raising its acknowledge line,
//! and holds the grant until the master releases its request.

use modref_spec::{expr, stmt, Behavior, BehaviorId, BehaviorKind, DataType, Expr, Spec, Stmt};

use crate::protocol::ReqAck;

/// Grant policy of a generated bus arbiter.
///
/// The paper's Figure 7 shows a fixed-priority arbiter; the round-robin
/// variant is provided for the architecture-related ablation (a
/// lower-priority master can starve under fixed priority when a
/// high-priority master re-requests immediately).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArbiterPolicy {
    /// Fixed priority: master 0 always wins ties (Figure 7).
    #[default]
    Priority,
    /// Rotating priority: after each grant, the served master becomes
    /// lowest priority.
    RoundRobin,
}

/// Builds the arbiter behavior for `bus` over the masters' request/ack
/// pairs and adds it to `spec` as a server leaf. Returns the new
/// behavior's id. For [`ArbiterPolicy::Priority`], index 0 is the highest
/// priority.
///
/// # Panics
///
/// Panics if `reqacks` has fewer than two masters — a single-master bus
/// needs no arbiter (callers check [`Bus::needs_arbiter`]).
///
/// [`Bus::needs_arbiter`]: crate::arch::Bus::needs_arbiter
pub fn make_arbiter_with_policy(
    spec: &mut Spec,
    bus: &str,
    reqacks: &[ReqAck],
    policy: ArbiterPolicy,
) -> BehaviorId {
    match policy {
        ArbiterPolicy::Priority => make_arbiter(spec, bus, reqacks),
        ArbiterPolicy::RoundRobin => make_round_robin_arbiter(spec, bus, reqacks),
    }
}

/// Builds the fixed-priority arbiter of the paper's Figure 7.
///
/// # Panics
///
/// Panics if `reqacks` has fewer than two masters.
pub fn make_arbiter(spec: &mut Spec, bus: &str, reqacks: &[ReqAck]) -> BehaviorId {
    assert!(reqacks.len() >= 2, "arbiter requires at least two masters");

    // wait until (req_0 == 1 || req_1 == 1 || ...)
    let any_request = reqacks
        .iter()
        .map(|ra| expr::eq(expr::signal(ra.req), expr::lit(1)))
        .reduce(expr::or)
        .expect("at least two masters");

    // Priority grant chain: if req_0 {grant 0} else if req_1 {grant 1} ...
    let grant = |ra: &ReqAck| -> Vec<Stmt> {
        vec![
            stmt::set_signal(ra.ack, expr::lit(1)),
            stmt::wait_until(expr::eq(expr::signal(ra.req), expr::lit(0))),
            stmt::set_signal(ra.ack, expr::lit(0)),
        ]
    };
    let mut chain: Vec<Stmt> = grant(reqacks.last().expect("non-empty"));
    for ra in reqacks.iter().rev().skip(1) {
        let cond: Expr = expr::eq(expr::signal(ra.req), expr::lit(1));
        chain = vec![stmt::if_else(cond, grant(ra), chain)];
    }

    let mut body = vec![stmt::wait_until(any_request)];
    body.extend(chain);
    let name = spec.fresh_behavior_name(&format!("Arbiter_{bus}"));
    spec.add_behavior(Behavior::new_server(
        name,
        BehaviorKind::Leaf {
            body: vec![stmt::infinite_loop(body)],
        },
    ))
}

/// Builds a rotating-priority arbiter: after each grant, the served
/// master moves to the back of the priority order. State is held in a
/// generated `<bus>_last` register.
///
/// # Panics
///
/// Panics if `reqacks` has fewer than two masters.
pub fn make_round_robin_arbiter(spec: &mut Spec, bus: &str, reqacks: &[ReqAck]) -> BehaviorId {
    assert!(reqacks.len() >= 2, "arbiter requires at least two masters");
    let n = reqacks.len();
    let last_name = spec.fresh_variable_name(&format!("{bus}_last"));
    let last = spec.add_variable(last_name, DataType::uint(8), (n - 1) as i64, None);

    let any_request = reqacks
        .iter()
        .map(|ra| expr::eq(expr::signal(ra.req), expr::lit(1)))
        .reduce(expr::or)
        .expect("at least two masters");

    let grant = |idx: usize, ra: &ReqAck| -> Vec<Stmt> {
        vec![
            stmt::assign(last, expr::lit(idx as i64)),
            stmt::set_signal(ra.ack, expr::lit(1)),
            stmt::wait_until(expr::eq(expr::signal(ra.req), expr::lit(0))),
            stmt::set_signal(ra.ack, expr::lit(0)),
        ]
    };

    // For each possible value of `last`, scan masters in rotated order
    // (last+1, last+2, ..., last) and grant the first requester.
    let mut rotation_chain: Vec<Stmt> = Vec::new();
    for r in (0..n).rev() {
        // Rotated order when last == r.
        let order: Vec<usize> = (1..=n).map(|k| (r + k) % n).collect();
        let (last_idx, front) = order.split_last().expect("non-empty order");
        let mut inner: Vec<Stmt> = grant(*last_idx, &reqacks[*last_idx]);
        for &i in front.iter().rev() {
            inner = vec![stmt::if_else(
                expr::eq(expr::signal(reqacks[i].req), expr::lit(1)),
                grant(i, &reqacks[i]),
                inner,
            )];
        }
        rotation_chain = if r == n - 1 {
            inner
        } else {
            vec![stmt::if_else(
                expr::eq(expr::var(last), expr::lit(r as i64)),
                inner,
                rotation_chain,
            )]
        };
    }

    let mut body = vec![stmt::wait_until(any_request)];
    body.extend(rotation_chain);
    let name = spec.fresh_behavior_name(&format!("Arbiter_{bus}"));
    spec.add_behavior(Behavior::new_server(
        name,
        BehaviorKind::Leaf {
            body: vec![stmt::infinite_loop(body)],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::stmt::CallArg;
    use modref_spec::LValue;

    /// Three masters contend; the arbiter serializes all transactions and
    /// priority 0 wins ties. We verify mutual exclusion by having each
    /// grant holder check a shared "owner" variable stays theirs.
    #[test]
    fn three_master_arbiter_grants_exclusively() {
        let mut b = SpecBuilder::new("arb3");
        let owner = b.var_int("owner", 16, -1);
        let clashes = b.var_int("clashes", 16, 0);
        let m: Vec<_> = (0..3).map(|i| b.leaf(format!("M{i}"), vec![])).collect();
        let top = b.concurrent("Main", m.clone());
        let mut spec = b.finish_unchecked(top);

        let ras: Vec<ReqAck> = (0..3).map(|i| ReqAck::create(&mut spec, "b1", i)).collect();
        let arb = make_arbiter(&mut spec, "b1", &ras);
        assert!(spec.behavior(arb).is_server());

        for (i, (&mid, ra)) in m.iter().zip(&ras).enumerate() {
            let body = vec![
                // acquire
                stmt::set_signal(ra.req, expr::lit(1)),
                stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(1))),
                // critical section: claim ownership, yield time, verify.
                stmt::assign(owner, expr::lit(i as i64)),
                stmt::delay(5),
                stmt::if_then(
                    expr::ne(expr::var(owner), expr::lit(i as i64)),
                    vec![stmt::assign(
                        clashes,
                        expr::add(expr::var(clashes), expr::lit(1)),
                    )],
                ),
                // release
                stmt::set_signal(ra.req, expr::lit(0)),
                stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(0))),
            ];
            *spec.behavior_mut(mid).body_mut().unwrap() = body;
        }

        let system = spec.add_behavior(modref_spec::Behavior::new(
            "System",
            modref_spec::BehaviorKind::Concurrent {
                children: vec![spec.behavior_by_name("Main").unwrap(), arb],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("completes");
        assert_eq!(
            r.var_by_name("clashes"),
            Some(0),
            "mutual exclusion violated"
        );
    }

    #[test]
    #[should_panic(expected = "at least two masters")]
    fn single_master_arbiter_is_rejected() {
        let mut b = SpecBuilder::new("arb1");
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let ra = ReqAck::create(&mut spec, "b1", 0);
        make_arbiter(&mut spec, "b1", &[ra]);
    }

    #[test]
    fn generated_name_is_fresh() {
        let mut b = SpecBuilder::new("arbname");
        let leaf = b.leaf("Arbiter_b1", vec![]); // collide on purpose
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let ras = vec![
            ReqAck::create(&mut spec, "b1", 0),
            ReqAck::create(&mut spec, "b1", 1),
        ];
        let arb = make_arbiter(&mut spec, "b1", &ras);
        assert_eq!(spec.behavior(arb).name(), "Arbiter_b1_1");
    }

    // Silence unused-import warnings for items used only in some tests.
    #[allow(dead_code)]
    fn _uses(_: CallArg, _: LValue) {}
}

#[cfg(test)]
mod round_robin_tests {
    use super::*;
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;

    /// Round-robin fairness: with both masters re-requesting in a loop,
    /// grants must alternate — master 1 is never starved.
    #[test]
    fn round_robin_alternates_grants() {
        let mut b = SpecBuilder::new("rr");
        let grants0 = b.var_int("grants0", 16, 0);
        let grants1 = b.var_int("grants1", 16, 0);
        let m0 = b.leaf("M0", vec![]);
        let m1 = b.leaf("M1", vec![]);
        let top = b.concurrent("Main", vec![m0, m1]);
        let mut spec = b.finish_unchecked(top);

        let ras = vec![
            ReqAck::create(&mut spec, "b1", 0),
            ReqAck::create(&mut spec, "b1", 1),
        ];
        let arb = make_round_robin_arbiter(&mut spec, "b1", &ras);

        for (mid, ra, counter) in [(m0, ras[0], grants0), (m1, ras[1], grants1)] {
            let body = vec![stmt::while_loop_hinted(
                expr::lt(expr::var(counter), expr::lit(4)),
                vec![
                    stmt::set_signal(ra.req, expr::lit(1)),
                    stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(1))),
                    stmt::assign(counter, expr::add(expr::var(counter), expr::lit(1))),
                    stmt::set_signal(ra.req, expr::lit(0)),
                    stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(0))),
                ],
                4,
            )];
            *spec.behavior_mut(mid).body_mut().unwrap() = body;
        }

        let system = spec.add_behavior(Behavior::new(
            "System",
            BehaviorKind::Concurrent {
                children: vec![spec.behavior_by_name("Main").unwrap(), arb],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();
        let r = Simulator::new(&spec).run().expect("completes");
        assert_eq!(r.var_by_name("grants0"), Some(4));
        assert_eq!(r.var_by_name("grants1"), Some(4));
    }

    #[test]
    fn policy_selector_dispatches() {
        let mut b = SpecBuilder::new("sel");
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let ras = vec![
            ReqAck::create(&mut spec, "bX", 0),
            ReqAck::create(&mut spec, "bX", 1),
        ];
        let a = make_arbiter_with_policy(&mut spec, "bX", &ras, ArbiterPolicy::Priority);
        let b2 = make_arbiter_with_policy(&mut spec, "bX", &ras, ArbiterPolicy::RoundRobin);
        // Round-robin arbiter carries a state register; priority does not.
        assert!(spec.variable_by_name("bX_last").is_some());
        assert_ne!(spec.behavior(a).name(), spec.behavior(b2).name());
    }
}
