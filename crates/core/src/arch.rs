//! The architecture netlist that emerges from refinement: buses, memory
//! modules, arbiters and bus interfaces.

use modref_partition::ComponentId;
use modref_spec::VarId;

/// What role a bus plays in the refined architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// A per-component local bus between its behaviors and its local
    /// memory (and, under Model4, its inbound bus interface).
    Local(ComponentId),
    /// A shared bus reaching a global memory (Model1/Model2), or one of
    /// Model3's dedicated component→global-memory buses.
    Global,
    /// Model4: the bus between a component's behaviors and its outbound
    /// bus interface.
    InterfaceAccess(ComponentId),
    /// Model4: the inter-component bus linking the bus interfaces.
    InterComponent,
}

/// A bus in the refined architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Bus {
    /// Bus name (`b1`, `b2`, ... in paper order).
    pub name: String,
    /// Role.
    pub kind: BusKind,
    /// Data-line width in bits.
    pub data_bits: u32,
    /// Address-line width in bits.
    pub addr_bits: u32,
    /// Names of master behaviors driving transactions on this bus.
    pub masters: Vec<String>,
    /// Names of slave behaviors serving this bus.
    pub slaves: Vec<String>,
}

impl Bus {
    /// Pins the bus occupies crossing a chip boundary (data + address + 4
    /// control lines of the Figure 5(d) handshake).
    pub fn pins(&self) -> u32 {
        modref_estimate::memory::bus_pins(self.data_bits, self.addr_bits)
    }

    /// Whether more than one master shares the bus (arbiter required).
    pub fn needs_arbiter(&self) -> bool {
        self.masters.len() > 1
    }
}

/// A memory module in the refined architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModule {
    /// Module name (`Gmem_p0`, `Lmem_PROC`, ...).
    pub name: String,
    /// The component the memory sits on, or `None` for a standalone
    /// global memory chip.
    pub component: Option<ComponentId>,
    /// Whether this is a global memory (holds globals) or local.
    pub global: bool,
    /// The buses its ports serve, one per port.
    pub port_buses: Vec<String>,
    /// The variables stored in the module.
    pub vars: Vec<VarId>,
    /// Addressable words.
    pub words: u64,
    /// Total size in bits.
    pub bits: u64,
}

impl MemoryModule {
    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.port_buses.len()
    }
}

/// An arbiter inserted on a multi-master bus (Figure 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterDesc {
    /// The generated arbiter behavior's name.
    pub name: String,
    /// The bus it guards.
    pub bus: String,
    /// Master behavior names in priority order (index 0 = highest).
    pub masters: Vec<String>,
}

/// A bus interface inserted for message passing (Figure 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDesc {
    /// The generated interface behavior's name.
    pub name: String,
    /// The component it belongs to.
    pub component_name: String,
    /// The bus it serves (listens on) as a slave.
    pub serves_bus: String,
    /// The bus it masters to forward requests.
    pub masters_bus: String,
}

/// The complete emerging architecture of a refined design.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Architecture {
    /// All buses, in paper naming order (`b1`, `b2`, ...).
    pub buses: Vec<Bus>,
    /// All memory modules.
    pub memories: Vec<MemoryModule>,
    /// All arbiters.
    pub arbiters: Vec<ArbiterDesc>,
    /// All bus interfaces (Model4 only).
    pub interfaces: Vec<InterfaceDesc>,
}

impl Architecture {
    /// Looks up a bus by name.
    pub fn bus(&self, name: &str) -> Option<&Bus> {
        self.buses.iter().find(|b| b.name == name)
    }

    /// Number of buses — compare against
    /// [`ImplModel::max_buses`](crate::ImplModel::max_buses).
    pub fn bus_count(&self) -> usize {
        self.buses.len()
    }

    /// Number of memory modules — the Section 5 cost discussion counts 2
    /// for Model1/Model4 and 4 for Model2/Model3 on the medical example.
    pub fn memory_count(&self) -> usize {
        self.memories.len()
    }

    /// Total memory bits across all modules.
    pub fn total_memory_bits(&self) -> u64 {
        self.memories.iter().map(|m| m.bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_pins_and_arbiter_need() {
        let bus = Bus {
            name: "b1".into(),
            kind: BusKind::Global,
            data_bits: 16,
            addr_bits: 5,
            masters: vec!["A".into(), "B".into()],
            slaves: vec!["Gmem".into()],
        };
        assert_eq!(bus.pins(), 16 + 5 + 4);
        assert!(bus.needs_arbiter());
    }

    #[test]
    fn architecture_queries() {
        let mut a = Architecture::default();
        a.buses.push(Bus {
            name: "b1".into(),
            kind: BusKind::Local(ComponentId::from_raw(0)),
            data_bits: 8,
            addr_bits: 3,
            masters: vec!["A".into()],
            slaves: vec![],
        });
        a.memories.push(MemoryModule {
            name: "Lmem".into(),
            component: Some(ComponentId::from_raw(0)),
            global: false,
            port_buses: vec!["b1".into()],
            vars: vec![],
            words: 4,
            bits: 32,
        });
        assert_eq!(a.bus_count(), 1);
        assert!(a.bus("b1").is_some());
        assert!(!a.bus("b1").unwrap().needs_arbiter());
        assert_eq!(a.memory_count(), 1);
        assert_eq!(a.total_memory_bits(), 32);
        assert_eq!(a.memories[0].ports(), 1);
    }
}
