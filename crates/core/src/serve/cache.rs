//! Content-addressed spec cache for `modref serve` (multi-tenant
//! session reuse).
//!
//! Parsing and validating a spec — and deriving its access graph — is
//! the fixed per-request overhead of a stateless protocol. The cache
//! keys a parsed [`Codesign`] session by the content hash of its spec
//! text (or by workload name), so concurrent connections sending the
//! same spec share ONE parse and ONE lazily-derived access graph: the
//! `load_spec` op returns the hash, later requests reference it via the
//! `"hash"` source field, and identical inline `"spec"` texts collapse
//! onto the same entry transparently.
//!
//! The cache is bounded ([`ServeConfig::cache_capacity`]) with
//! least-recently-used eviction, and the lock is held across the parse
//! on a miss: two clients racing the same new spec produce one parse
//! and one `serve.cache.miss`, deterministically, rather than a
//! thundering herd. Parse failures are not cached. Counters:
//! `serve.cache.hit`, `serve.cache.miss`, `serve.cache.evict`.
//!
//! [`ServeConfig::cache_capacity`]: super::ServeConfig::cache_capacity

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::api::{Codesign, ModrefError};

/// The content hash of a spec text: 64-bit FNV-1a, rendered as 16 hex
/// digits. Stable across runs, processes and platforms, so clients may
/// precompute and persist it.
pub fn spec_hash(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

struct Entry {
    session: Arc<Codesign>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    /// Monotonic use counter driving LRU eviction (no wall clock, so
    /// eviction order is deterministic for a fixed request sequence).
    tick: u64,
}

/// A bounded, shared cache of parsed [`Codesign`] sessions.
pub(super) struct SpecCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl SpecCache {
    pub(super) fn new(capacity: usize) -> Self {
        SpecCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key` without populating — the `"hash"` source path. A
    /// miss is the client's error (the hash was never loaded, or was
    /// evicted), not something the server can repair.
    pub(super) fn lookup(&self, key: &str) -> Option<Arc<Codesign>> {
        let mut inner = super::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                modref_obs::counter("serve.cache.hit").inc();
                Some(Arc::clone(&e.session))
            }
            None => {
                modref_obs::counter("serve.cache.miss").inc();
                None
            }
        }
    }

    /// Returns the cached session for `key`, parsing with `build` on a
    /// miss. The lock is held across the parse so concurrent identical
    /// requests share one parse; failures propagate uncached.
    pub(super) fn get_or_insert(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Codesign, ModrefError>,
    ) -> Result<Arc<Codesign>, ModrefError> {
        let mut inner = super::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(key) {
            e.last_used = tick;
            modref_obs::counter("serve.cache.hit").inc();
            return Ok(Arc::clone(&e.session));
        }
        modref_obs::counter("serve.cache.miss").inc();
        let session = Arc::new(build()?);
        inner.map.insert(
            key.to_string(),
            Entry {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        if inner.map.len() > self.capacity {
            // `last_used` ticks are unique (one per cache call), so the
            // minimum is unambiguous and eviction is deterministic.
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                modref_obs::counter("serve.cache.evict").inc();
            }
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: u32) -> String {
        format!(
            "spec t{n};\nvar x : int<16> = 0;\n\
             behavior L leaf {{ x := x + 1; }}\n\
             behavior T seq {{ children {{ L; }} }}\ntop T;\n"
        )
    }

    #[test]
    fn spec_hash_is_stable_and_content_addressed() {
        let a = spec_hash("spec a;\n");
        assert_eq!(a.len(), 16);
        assert_eq!(a, spec_hash("spec a;\n"), "same text, same hash");
        assert_ne!(a, spec_hash("spec b;\n"), "different text, different hash");
        // Pinned: the hash is part of the wire contract (clients may
        // persist it), so it must never drift.
        assert_eq!(spec_hash(""), "cbf29ce484222325");
    }

    #[test]
    fn identical_texts_share_one_session() {
        let cache = SpecCache::new(4);
        let text = tiny(1);
        let key = spec_hash(&text);
        let a = cache
            .get_or_insert(&key, || Codesign::parse("<request>", &text))
            .unwrap();
        let b = cache
            .get_or_insert(&key, || panic!("second load must be a cache hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both clients share the parse");
        assert!(cache.lookup(&key).is_some());
        assert!(cache.lookup("0000000000000000").is_none());
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = SpecCache::new(2);
        let texts: Vec<String> = (0..3).map(tiny).collect();
        let keys: Vec<String> = texts.iter().map(|t| spec_hash(t)).collect();
        for (key, text) in keys.iter().zip(&texts).take(2) {
            cache
                .get_or_insert(key, || Codesign::parse("<request>", text))
                .unwrap();
        }
        // Touch the first so the second is least recently used.
        assert!(cache.lookup(&keys[0]).is_some());
        cache
            .get_or_insert(&keys[2], || Codesign::parse("<request>", &texts[2]))
            .unwrap();
        assert!(cache.lookup(&keys[0]).is_some(), "recently used survives");
        assert!(cache.lookup(&keys[1]).is_none(), "LRU entry was evicted");
        assert!(cache.lookup(&keys[2]).is_some(), "new entry resident");
    }

    #[test]
    fn parse_failures_are_not_cached() {
        let cache = SpecCache::new(4);
        let err = cache.get_or_insert("bad", || Codesign::parse("<request>", "not a spec"));
        assert!(err.is_err());
        // The next attempt parses again (and may succeed).
        let ok = cache.get_or_insert("bad", || Codesign::parse("<request>", &tiny(9)));
        assert!(ok.is_ok());
    }
}
