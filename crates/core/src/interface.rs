//! Bus-interface generation for message passing — the paper's Figure 8.
//!
//! Under Model4 every variable is local, so a behavior reaching a remote
//! variable sends a request through a chain of bus interfaces:
//!
//! ```text
//! B1 --(interface-access bus)--> Iface_out --(inter bus)-->
//!     Iface_in --(remote local bus)--> LMem
//! ```
//!
//! Each interface is a server that slaves one bus and masters the next,
//! buffering one word in a private temporary. The outbound interface
//! serves its component's behaviors; the inbound one address-decodes the
//! inter-component bus for requests targeting its component's memory.

use modref_spec::{
    expr, stmt, Behavior, BehaviorId, BehaviorKind, Spec, Stmt, SubroutineId, VarId,
};

use crate::protocol::{slave_loop, BusWires};

/// The forwarding subroutines an interface uses on the bus it masters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardSubs {
    /// `MST_receive` on the mastered bus.
    pub recv: SubroutineId,
    /// `MST_send` on the mastered bus.
    pub send: SubroutineId,
}

/// Builds one bus-interface server behavior named `name`: it serves
/// transactions on `serve` (optionally address-decoding `[lo, hi]`) and
/// forwards each to the mastered bus via `forward`, buffering through a
/// fresh temporary variable.
pub fn make_interface(
    spec: &mut Spec,
    name: &str,
    serve: BusWires,
    decode: Option<(u64, u64)>,
    forward: ForwardSubs,
) -> (BehaviorId, VarId) {
    let tmp_name = spec.fresh_variable_name(&format!("{name}_buf"));
    // The buffer is as wide as the data lines.
    let data_ty = *spec.signal(serve.data).ty();
    let tmp = spec.add_variable(tmp_name, data_ty, 0, None);

    let on_request: Vec<Stmt> = vec![
        stmt::if_then(
            expr::eq(expr::signal(serve.rd), expr::lit(1)),
            vec![
                stmt::call(
                    forward.recv,
                    vec![
                        modref_spec::stmt::CallArg::In(expr::signal(serve.addr)),
                        modref_spec::stmt::CallArg::Out(modref_spec::LValue::Var(tmp)),
                    ],
                ),
                stmt::set_signal(serve.data, expr::var(tmp)),
            ],
        ),
        stmt::if_then(
            expr::eq(expr::signal(serve.wr), expr::lit(1)),
            vec![
                stmt::assign(tmp, expr::signal(serve.data)),
                stmt::call(
                    forward.send,
                    vec![
                        modref_spec::stmt::CallArg::In(expr::signal(serve.addr)),
                        modref_spec::stmt::CallArg::In(expr::var(tmp)),
                    ],
                ),
            ],
        ),
    ];
    let decode_expr = decode.map(|(lo, hi)| {
        expr::and(
            expr::ge(expr::signal(serve.addr), expr::lit(lo as i64)),
            expr::le(expr::signal(serve.addr), expr::lit(hi as i64)),
        )
    });
    let body = slave_loop(serve, decode_expr, on_request);
    let fresh = spec.fresh_behavior_name(name);
    let id = spec.add_behavior(Behavior::new_server(fresh, BehaviorKind::Leaf { body }));
    (id, tmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{make_memory_port, MemoryVar};
    use crate::protocol::{make_mst_receive, make_mst_send};
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::stmt::CallArg;
    use modref_spec::{DataType, LValue};

    /// Full three-hop Figure 8 chain: a client on component 1 reads and
    /// writes a word that lives in component 2's local memory, through
    /// two interfaces and three buses.
    #[test]
    fn three_hop_remote_access_round_trips() {
        let mut b = SpecBuilder::new("fig8");
        let got = b.var_int("got", 16, 0);
        let client = b.leaf("B1", vec![]);
        let main = b.seq_in_order("Main", vec![client]);
        let mut spec = b.finish_unchecked(main);

        // Buses: ifc access (b2), inter (b3), remote local (b5).
        let b2 = BusWires::create(&mut spec, "b2", 4, 16);
        let b3 = BusWires::create(&mut spec, "b3", 4, 16);
        let b5 = BusWires::create(&mut spec, "b5", 4, 16);

        // Protocols each hop's master uses.
        let b2_recv = make_mst_receive(&mut spec, "b2", b2, 4, 16, "", None);
        let b2_send = make_mst_send(&mut spec, "b2", b2, 4, 16, "", None);
        let b3_recv = make_mst_receive(&mut spec, "b3", b3, 4, 16, "", None);
        let b3_send = make_mst_send(&mut spec, "b3", b3, 4, 16, "", None);
        let b5_recv = make_mst_receive(&mut spec, "b5", b5, 4, 16, "", None);
        let b5_send = make_mst_send(&mut spec, "b5", b5, 4, 16, "", None);

        // Remote local memory: y at address 2, initial 31.
        let y = spec.add_variable("y", DataType::int(16), 31, None);
        let lm2 = make_memory_port(
            &mut spec,
            "Lmem_p1",
            b5,
            &[MemoryVar {
                var: y,
                base: 2,
                elems: 1,
            }],
            Some((2, 2)),
        );

        // Interfaces.
        let (ifc_out, _) = make_interface(
            &mut spec,
            "Bus_interface_1_out",
            b2,
            None,
            ForwardSubs {
                recv: b3_recv,
                send: b3_send,
            },
        );
        let (ifc_in, _) = make_interface(
            &mut spec,
            "Bus_interface_2_in",
            b3,
            Some((2, 2)),
            ForwardSubs {
                recv: b5_recv,
                send: b5_send,
            },
        );

        // Client: got := remote[2]; remote[2] := got + 9.
        *spec.behavior_mut(client).body_mut().unwrap() = vec![
            stmt::call(
                b2_recv,
                vec![CallArg::In(expr::lit(2)), CallArg::Out(LValue::Var(got))],
            ),
            stmt::call(
                b2_send,
                vec![
                    CallArg::In(expr::lit(2)),
                    CallArg::In(expr::add(expr::var(got), expr::lit(9))),
                ],
            ),
        ];

        let system = spec.add_behavior(Behavior::new(
            "System",
            BehaviorKind::Concurrent {
                children: vec![main, lm2, ifc_out, ifc_in],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("chain completes");
        assert_eq!(r.var_by_name("got"), Some(31));
        assert_eq!(r.var_by_name("y"), Some(40));
        let _ = (b2_send, b5_send);
    }

    #[test]
    fn interface_buffer_has_bus_width() {
        let mut b = SpecBuilder::new("width");
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let mut spec = b.finish_unchecked(top);
        let wires = BusWires::create(&mut spec, "bX", 6, 24);
        let fwd_recv = make_mst_receive(&mut spec, "bX", wires, 6, 24, "", None);
        let fwd_send = make_mst_send(&mut spec, "bX", wires, 6, 24, "", None);
        let (_, buf) = make_interface(
            &mut spec,
            "Iface",
            wires,
            None,
            ForwardSubs {
                recv: fwd_recv,
                send: fwd_send,
            },
        );
        assert_eq!(spec.variable(buf).ty().bit_width(), 24);
    }
}
