//! Bus wires and handshake protocol generation — the paper's Figure 5(d).
//!
//! Each bus gets six wires: four control lines (`start`, `done`, `rd`,
//! `wr`), an address bus and a data bus. Masters access memory through
//! `MST_receive`/`MST_send` subroutines encapsulating a four-phase
//! handshake; slaves run a decode-serve loop built by [`slave_loop`].
//! When a bus has several masters, each master's protocol subroutines
//! additionally acquire and release the bus through its private
//! request/acknowledge pair (Figure 7's `Req_i`/`Ack_i`), so one `call`
//! in refined code is one complete arbitrated transaction.

use modref_spec::subroutine::{param_in, param_out, Subroutine};
use modref_spec::{expr, stmt, DataType, Expr, LValue, SignalId, Spec, Stmt, SubroutineId};

/// The six wires of one bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusWires {
    /// Transaction-start control line.
    pub start: SignalId,
    /// Transaction-done control line.
    pub done: SignalId,
    /// Read-request line.
    pub rd: SignalId,
    /// Write-request line.
    pub wr: SignalId,
    /// Address lines.
    pub addr: SignalId,
    /// Data lines.
    pub data: SignalId,
}

impl BusWires {
    /// Declares the wires for bus `bus` in `spec`.
    pub fn create(spec: &mut Spec, bus: &str, addr_bits: u32, data_bits: u32) -> Self {
        let bit = DataType::Bit;
        Self {
            start: spec.add_signal(format!("{bus}_start"), bit, 0),
            done: spec.add_signal(format!("{bus}_done"), bit, 0),
            rd: spec.add_signal(format!("{bus}_rd"), bit, 0),
            wr: spec.add_signal(format!("{bus}_wr"), bit, 0),
            addr: spec.add_signal(format!("{bus}_addr"), DataType::uint(addr_bits as u16), 0),
            data: spec.add_signal(format!("{bus}_data"), DataType::int(data_bits as u16), 0),
        }
    }
}

/// A master's private request/acknowledge pair on an arbitrated bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqAck {
    /// Request line (master drives).
    pub req: SignalId,
    /// Acknowledge line (arbiter drives).
    pub ack: SignalId,
}

impl ReqAck {
    /// Declares a request/ack pair for master slot `slot` of bus `bus`.
    pub fn create(spec: &mut Spec, bus: &str, slot: usize) -> Self {
        Self {
            req: spec.add_signal(format!("{bus}_req_{slot}"), DataType::Bit, 0),
            ack: spec.add_signal(format!("{bus}_ack_{slot}"), DataType::Bit, 0),
        }
    }
}

fn acquire_stmts(ra: ReqAck) -> Vec<Stmt> {
    vec![
        stmt::set_signal(ra.req, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(1))),
    ]
}

fn release_stmts(ra: ReqAck) -> Vec<Stmt> {
    vec![
        stmt::set_signal(ra.req, expr::lit(0)),
        stmt::wait_until(expr::eq(expr::signal(ra.ack), expr::lit(0))),
    ]
}

/// Builds the `MST_receive` subroutine for a bus: read the word at the
/// `addr` parameter into the `data` out-parameter. `suffix` distinguishes
/// per-master variants on arbitrated buses; `arb` supplies the master's
/// req/ack pair when the bus has an arbiter.
pub fn make_mst_receive(
    spec: &mut Spec,
    bus: &str,
    wires: BusWires,
    addr_bits: u32,
    data_bits: u32,
    suffix: &str,
    arb: Option<ReqAck>,
) -> SubroutineId {
    let mut body = Vec::new();
    if let Some(ra) = arb {
        body.extend(acquire_stmts(ra));
    }
    body.extend([
        stmt::set_signal(wires.addr, expr::param("addr")),
        stmt::set_signal(wires.rd, expr::lit(1)),
        stmt::set_signal(wires.start, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(wires.done), expr::lit(1))),
        Stmt::Assign {
            target: LValue::Param("data".into()),
            value: Expr::Signal(wires.data),
        },
        stmt::set_signal(wires.start, expr::lit(0)),
        stmt::set_signal(wires.rd, expr::lit(0)),
        stmt::wait_until(expr::eq(expr::signal(wires.done), expr::lit(0))),
    ]);
    if let Some(ra) = arb {
        body.extend(release_stmts(ra));
    }
    spec.add_subroutine(Subroutine::new(
        format!("MST_receive_{bus}{suffix}"),
        vec![
            param_in("addr", DataType::uint(addr_bits as u16)),
            param_out("data", DataType::int(data_bits as u16)),
        ],
        body,
    ))
}

/// Builds the `MST_send` subroutine for a bus: write the `data` parameter
/// to the word at the `addr` parameter.
pub fn make_mst_send(
    spec: &mut Spec,
    bus: &str,
    wires: BusWires,
    addr_bits: u32,
    data_bits: u32,
    suffix: &str,
    arb: Option<ReqAck>,
) -> SubroutineId {
    let mut body = Vec::new();
    if let Some(ra) = arb {
        body.extend(acquire_stmts(ra));
    }
    body.extend([
        stmt::set_signal(wires.addr, expr::param("addr")),
        stmt::set_signal(wires.data, expr::param("data")),
        stmt::set_signal(wires.wr, expr::lit(1)),
        stmt::set_signal(wires.start, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(wires.done), expr::lit(1))),
        stmt::set_signal(wires.start, expr::lit(0)),
        stmt::set_signal(wires.wr, expr::lit(0)),
        stmt::wait_until(expr::eq(expr::signal(wires.done), expr::lit(0))),
    ]);
    if let Some(ra) = arb {
        body.extend(release_stmts(ra));
    }
    spec.add_subroutine(Subroutine::new(
        format!("MST_send_{bus}{suffix}"),
        vec![
            param_in("addr", DataType::uint(addr_bits as u16)),
            param_in("data", DataType::int(data_bits as u16)),
        ],
        body,
    ))
}

/// Builds the slave-side `SLV_send` subroutine for a bus: drive the data
/// lines with the `value` parameter — the paper's Figure 5(d) slave half
/// of a read transaction. (The start/done handshake lives in the serve
/// loop, which brackets the whole request.)
pub fn make_slv_send(spec: &mut Spec, bus: &str, wires: BusWires, data_bits: u32) -> SubroutineId {
    spec.add_subroutine(Subroutine::new(
        format!("SLV_send_{bus}"),
        vec![param_in("value", DataType::int(data_bits as u16))],
        vec![stmt::set_signal(wires.data, expr::param("value"))],
    ))
}

/// Builds the slave-side `SLV_receive` subroutine for a bus: latch the
/// data lines into the `value` out-parameter — the slave half of a write
/// transaction.
pub fn make_slv_receive(
    spec: &mut Spec,
    bus: &str,
    wires: BusWires,
    data_bits: u32,
) -> SubroutineId {
    spec.add_subroutine(Subroutine::new(
        format!("SLV_receive_{bus}"),
        vec![param_out("value", DataType::int(data_bits as u16))],
        vec![Stmt::Assign {
            target: LValue::Param("value".into()),
            value: Expr::Signal(wires.data),
        }],
    ))
}

/// Builds a slave's serve loop: wait for a transaction whose address this
/// slave decodes (`decode` over the bus wires), run `on_request`
/// (typically an `if rd {...} if wr {...}` pair), complete the four-phase
/// handshake, repeat forever.
pub fn slave_loop(wires: BusWires, decode: Option<Expr>, on_request: Vec<Stmt>) -> Vec<Stmt> {
    let started = expr::eq(expr::signal(wires.start), expr::lit(1));
    let guard = match decode {
        Some(d) => expr::and(started, d),
        None => started,
    };
    let mut body = vec![stmt::wait_until(guard)];
    body.extend(on_request);
    body.extend([
        stmt::set_signal(wires.done, expr::lit(1)),
        stmt::wait_until(expr::eq(expr::signal(wires.start), expr::lit(0))),
        stmt::set_signal(wires.done, expr::lit(0)),
    ]);
    vec![stmt::infinite_loop(body)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::stmt::CallArg;

    /// End-to-end protocol check: a master reads and writes one word of a
    /// one-variable memory over generated wires and subroutines.
    #[test]
    fn master_and_slave_complete_a_read_and_write() {
        let mut b = SpecBuilder::new("proto");
        let got = b.var_int("got", 16, 0);
        let client = b.leaf("Client", vec![]);
        let top = b.seq_in_order("Main", vec![client]);
        let mut spec = b.finish_unchecked(top);

        let wires = BusWires::create(&mut spec, "b1", 4, 16);
        let recv = make_mst_receive(&mut spec, "b1", wires, 4, 16, "", None);
        let send = make_mst_send(&mut spec, "b1", wires, 4, 16, "", None);

        // Memory with one word `x` at address 0, initial value 7.
        let mem_behavior = spec.add_behavior(modref_spec::Behavior::new_server(
            "Memory",
            modref_spec::BehaviorKind::Leaf { body: vec![] },
        ));
        let x = spec.add_variable("x", DataType::int(16), 7, Some(mem_behavior));
        let serve = vec![
            stmt::if_then(
                expr::eq(expr::signal(wires.rd), expr::lit(1)),
                vec![stmt::set_signal(wires.data, expr::var(x))],
            ),
            stmt::if_then(
                expr::eq(expr::signal(wires.wr), expr::lit(1)),
                vec![stmt::assign(x, expr::signal(wires.data))],
            ),
        ];
        *spec.behavior_mut(mem_behavior).body_mut().unwrap() = slave_loop(wires, None, serve);

        // Client: got := mem[0]; mem[0] := got * 6.
        *spec.behavior_mut(client).body_mut().unwrap() = vec![
            stmt::call(
                recv,
                vec![CallArg::In(expr::lit(0)), CallArg::Out(LValue::Var(got))],
            ),
            stmt::call(
                send,
                vec![
                    CallArg::In(expr::lit(0)),
                    CallArg::In(expr::mul(expr::var(got), expr::lit(6))),
                ],
            ),
        ];

        let system = spec.add_behavior(modref_spec::Behavior::new(
            "System",
            modref_spec::BehaviorKind::Concurrent {
                children: vec![top, mem_behavior],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("protocol completes");
        assert_eq!(r.var_by_name("got"), Some(7));
        assert_eq!(r.var_by_name("x"), Some(42));
    }

    /// Two concurrent masters with arbitration: the bus is serialized so
    /// transfers never tear; the final value is one reachable by a serial
    /// interleaving of the two masters' read-modify-write transactions.
    #[test]
    fn arbitrated_masters_never_tear_transfers() {
        let mut b = SpecBuilder::new("arb");
        let t0 = b.var_int("t0", 16, 0);
        let t1 = b.var_int("t1", 16, 0);
        let m0 = b.leaf("M0", vec![]);
        let m1 = b.leaf("M1", vec![]);
        let top = b.concurrent("Main", vec![m0, m1]);
        let mut spec = b.finish_unchecked(top);

        let wires = BusWires::create(&mut spec, "b1", 4, 16);
        let ra0 = ReqAck::create(&mut spec, "b1", 0);
        let ra1 = ReqAck::create(&mut spec, "b1", 1);
        let recv0 = make_mst_receive(&mut spec, "b1", wires, 4, 16, "_m0", Some(ra0));
        let send0 = make_mst_send(&mut spec, "b1", wires, 4, 16, "_m0", Some(ra0));
        let recv1 = make_mst_receive(&mut spec, "b1", wires, 4, 16, "_m1", Some(ra1));
        let send1 = make_mst_send(&mut spec, "b1", wires, 4, 16, "_m1", Some(ra1));

        let mem_behavior = spec.add_behavior(modref_spec::Behavior::new_server(
            "Memory",
            modref_spec::BehaviorKind::Leaf { body: vec![] },
        ));
        let x = spec.add_variable("x", DataType::int(16), 0, Some(mem_behavior));
        let serve = vec![
            stmt::if_then(
                expr::eq(expr::signal(wires.rd), expr::lit(1)),
                vec![stmt::set_signal(wires.data, expr::var(x))],
            ),
            stmt::if_then(
                expr::eq(expr::signal(wires.wr), expr::lit(1)),
                vec![stmt::assign(x, expr::signal(wires.data))],
            ),
        ];
        *spec.behavior_mut(mem_behavior).body_mut().unwrap() = slave_loop(wires, None, serve);

        // Priority arbiter for two masters (the Figure 7 shape).
        let arb_behavior = spec.add_behavior(modref_spec::Behavior::new_server(
            "Arbiter_b1",
            modref_spec::BehaviorKind::Leaf {
                body: vec![stmt::infinite_loop(vec![
                    stmt::wait_until(expr::or(
                        expr::eq(expr::signal(ra0.req), expr::lit(1)),
                        expr::eq(expr::signal(ra1.req), expr::lit(1)),
                    )),
                    stmt::if_else(
                        expr::eq(expr::signal(ra0.req), expr::lit(1)),
                        vec![
                            stmt::set_signal(ra0.ack, expr::lit(1)),
                            stmt::wait_until(expr::eq(expr::signal(ra0.req), expr::lit(0))),
                            stmt::set_signal(ra0.ack, expr::lit(0)),
                        ],
                        vec![
                            stmt::set_signal(ra1.ack, expr::lit(1)),
                            stmt::wait_until(expr::eq(expr::signal(ra1.req), expr::lit(0))),
                            stmt::set_signal(ra1.ack, expr::lit(0)),
                        ],
                    ),
                ])],
            },
        ));

        // Each master: read x, add its amount, write back — twice.
        let master_body = |recv: SubroutineId, send: SubroutineId, tmp, amount: i64| {
            let mut v = Vec::new();
            for _ in 0..2 {
                v.push(stmt::call(
                    recv,
                    vec![CallArg::In(expr::lit(0)), CallArg::Out(LValue::Var(tmp))],
                ));
                v.push(stmt::call(
                    send,
                    vec![
                        CallArg::In(expr::lit(0)),
                        CallArg::In(expr::add(expr::var(tmp), expr::lit(amount))),
                    ],
                ));
            }
            v
        };
        *spec.behavior_mut(m0).body_mut().unwrap() = master_body(recv0, send0, t0, 1);
        *spec.behavior_mut(m1).body_mut().unwrap() = master_body(recv1, send1, t1, 10);

        let system = spec.add_behavior(modref_spec::Behavior::new(
            "System",
            modref_spec::BehaviorKind::Concurrent {
                children: vec![top, mem_behavior, arb_behavior],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("completes");
        // With lost-update (but never torn) semantics, the reachable
        // final values of x are sums a*1 + b*10 with 1 <= a <= 2 and
        // 1 <= b <= 2, or a single master's contribution fully shadowed.
        let x = r.var_by_name("x").unwrap();
        let feasible = [1, 2, 10, 11, 12, 20, 21, 22];
        assert!(feasible.contains(&x), "x = {x} not a serial outcome");
    }
}
