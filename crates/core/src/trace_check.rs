//! Stuttering-refinement trace checking.
//!
//! Final-state comparison ([`modref_sim::SimResult::diff_common_vars`])
//! accepts a
//! refinement that reaches the right values the wrong way — e.g. an
//! intermediate value the original never produced, masked by a later
//! overwrite. This module checks the stronger *stuttering refinement*
//! property on recorded [`SimTrace`]s: for every observable the two
//! specifications share (scalar variables, array elements and signals,
//! matched by name — refinement copies the original declarations, so the
//! shared names *are* the back-mapping through its renaming), the
//! original's value-change sequence must equal the refined trace's
//! sequence after stuttering compression (dropping writes that do not
//! change the value). Refinement is allowed to add steps — bus
//! handshakes, memory-image bookkeeping, protocol state — but every
//! shared observable must pass through exactly the original value
//! sequence, in order.
//!
//! Sequences are seeded from declared initial values, so a refined spec
//! that "fixes up" a different initial value before use is caught too.
//! Wake events and timing are excluded: refinement legitimately changes
//! both scheduling and timing.
//!
//! A violation is reported as the first diverging change of the first
//! diverging observable (observables in name order), with the
//! declaration's source span when the [`SourceMap`] has one — this is
//! the `modref explore --verify-traces` failure report.

use std::collections::BTreeMap;
use std::fmt;

use modref_sim::value::wrap_scalar;
use modref_sim::{SimTrace, TraceId};
use modref_spec::span::{SourceMap, Span};
use modref_spec::{DataType, Spec};

/// The first point where a refined trace stops being a stuttering
/// refinement of the original, for one shared observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMismatch {
    /// The observable that diverged: a scalar variable or signal name,
    /// or an array element (`name[index]`).
    pub observable: String,
    /// Index of the first diverging entry in the stutter-compressed
    /// value-change sequence (0 is the initial value).
    pub change: usize,
    /// The original trace's value at that change, if it has one.
    pub expected: Option<i64>,
    /// The refined trace's value at that change, if it has one.
    pub got: Option<i64>,
    /// The observable's declaration site, when the source map records it.
    pub span: Option<Span>,
}

impl fmt::Display for TraceMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace divergence on `{}`: change #{}",
            self.observable, self.change
        )?;
        match (self.expected, self.got) {
            (Some(e), Some(g)) => write!(f, " expected {e}, got {g}")?,
            (Some(e), None) => write!(f, " expected {e}, refined trace has no further change")?,
            (None, Some(g)) => write!(f, " unexpected extra change to {g}")?,
            (None, None) => {}
        }
        if let Some(span) = self.span {
            write!(f, " (declared at {span})")?;
        }
        Ok(())
    }
}

/// How one variable slot maps to observable names: scalars get the
/// variable name, arrays one name per element.
enum VarKey {
    Scalar(String),
    Array(Vec<String>),
}

/// Builds the stutter-compressed value-change sequence of every
/// observable in `spec`, seeded with declared initial values.
fn change_sequences(spec: &Spec, trace: &SimTrace) -> BTreeMap<String, Vec<i64>> {
    let mut seqs: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    let mut var_keys: Vec<VarKey> = Vec::with_capacity(spec.variable_count());
    for (_, v) in spec.variables() {
        match v.ty() {
            DataType::Array { elem, len } => {
                let mut names = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    let name = format!("{}[{i}]", v.name());
                    seqs.insert(name.clone(), vec![wrap_scalar(v.init(), *elem)]);
                    names.push(name);
                }
                var_keys.push(VarKey::Array(names));
            }
            ty => {
                let name = v.name().to_string();
                seqs.insert(
                    name.clone(),
                    vec![wrap_scalar(v.init(), ty.access_scalar())],
                );
                var_keys.push(VarKey::Scalar(name));
            }
        }
    }
    let mut sig_keys: Vec<String> = Vec::with_capacity(spec.signal_count());
    for (_, s) in spec.signals() {
        let name = s.name().to_string();
        seqs.insert(
            name.clone(),
            vec![wrap_scalar(s.init(), s.ty().access_scalar())],
        );
        sig_keys.push(name);
    }

    for e in &trace.events {
        let key: Option<&str> = match e.id {
            TraceId::Var(v) => match var_keys.get(v as usize) {
                Some(VarKey::Scalar(name)) => Some(name),
                _ => None,
            },
            TraceId::Elem { var, index } => match var_keys.get(var as usize) {
                Some(VarKey::Array(names)) => names.get(index as usize).map(String::as_str),
                _ => None,
            },
            TraceId::Signal(s) => sig_keys.get(s as usize).map(String::as_str),
            TraceId::Wake(_) => None,
        };
        let Some(key) = key else { continue };
        let seq = seqs.get_mut(key).expect("key built from spec");
        if seq.last() != Some(&e.value) {
            seq.push(e.value);
        }
    }
    seqs
}

/// Declaration spans per observable name, from the original spec's map.
fn span_index(spec: &Spec, map: &SourceMap) -> BTreeMap<String, Span> {
    let mut spans = BTreeMap::new();
    for (id, v) in spec.variables() {
        let Some(span) = map.variable_span(id) else {
            continue;
        };
        match v.ty() {
            DataType::Array { len, .. } => {
                for i in 0..*len {
                    spans.insert(format!("{}[{i}]", v.name()), span);
                }
            }
            _ => {
                spans.insert(v.name().to_string(), span);
            }
        }
    }
    for (id, s) in spec.signals() {
        if let Some(span) = map.signal_span(id) {
            spans.insert(s.name().to_string(), span);
        }
    }
    spans
}

/// Verifies that `refined_trace` is a stuttering refinement of
/// `orig_trace` on every observable the two specs share by name.
///
/// # Errors
///
/// Returns the first diverging change (observables in name order, then
/// change order) with the declaration span from `map` when recorded.
pub fn check_stuttering_refinement(
    orig_spec: &Spec,
    orig_trace: &SimTrace,
    refined_spec: &Spec,
    refined_trace: &SimTrace,
    map: &SourceMap,
) -> Result<(), TraceMismatch> {
    let orig = change_sequences(orig_spec, orig_trace);
    let refined = change_sequences(refined_spec, refined_trace);
    for (name, expected_seq) in &orig {
        let Some(got_seq) = refined.get(name) else {
            // Observable not shared: the refinement renamed or
            // restructured it, so it is outside the projection.
            continue;
        };
        if expected_seq == got_seq {
            continue;
        }
        let change = expected_seq
            .iter()
            .zip(got_seq.iter())
            .take_while(|(a, b)| a == b)
            .count();
        return Err(TraceMismatch {
            observable: name.clone(),
            change,
            expected: expected_seq.get(change).copied(),
            got: got_seq.get(change).copied(),
            span: span_index(orig_spec, map).get(name).copied(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_sim::{SimConfig, Simulator, TraceEvent};
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    fn traced(spec: &Spec) -> SimTrace {
        let config = SimConfig {
            trace: true,
            ..SimConfig::default()
        };
        Simulator::with_config(spec, config)
            .run()
            .expect("runs")
            .trace
            .expect("traced")
    }

    /// x steps 0 → 1 → 2; an "refined" variant inserts redundant
    /// re-writes (stutters) and an unshared helper variable.
    fn stepper(extra: bool) -> Spec {
        let mut b = SpecBuilder::new("s");
        let x = b.var_int("x", 16, 0);
        let mut body = vec![stmt::assign(x, expr::lit(1))];
        if extra {
            let h = b.var_int("helper", 16, 0);
            body.push(stmt::assign(h, expr::var(x)));
            body.push(stmt::assign(x, expr::lit(1))); // stutter
        }
        body.push(stmt::assign(x, expr::lit(2)));
        let a = b.leaf("A", body);
        let top = b.seq_in_order("Top", vec![a]);
        b.finish(top).expect("valid")
    }

    #[test]
    fn stuttering_and_added_observables_are_accepted() {
        let orig = stepper(false);
        let refined = stepper(true);
        let r = check_stuttering_refinement(
            &orig,
            &traced(&orig),
            &refined,
            &traced(&refined),
            &SourceMap::default(),
        );
        assert_eq!(r, Ok(()));
    }

    #[test]
    fn diverging_intermediate_value_is_caught_with_span() {
        let orig = stepper(false);
        let mut b = SpecBuilder::new("s");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf(
            "A",
            vec![
                stmt::assign(x, expr::lit(7)), // value the original never held
                stmt::assign(x, expr::lit(1)),
                stmt::assign(x, expr::lit(2)),
            ],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let bad = b.finish(top).expect("valid");

        let mut map = SourceMap::default();
        let (xid, _) = orig.variables().next().expect("has x");
        map.record_variable(xid, Span::new(4, 2));

        let err = check_stuttering_refinement(&orig, &traced(&orig), &bad, &traced(&bad), &map)
            .expect_err("must diverge");
        assert_eq!(err.observable, "x");
        assert_eq!(err.change, 1);
        assert_eq!((err.expected, err.got), (Some(1), Some(7)));
        assert_eq!(
            err.to_string(),
            "trace divergence on `x`: change #1 expected 1, got 7 (declared at 4:2)"
        );
    }

    #[test]
    fn missing_final_change_is_caught() {
        let orig = stepper(false);
        let orig_trace = traced(&orig);
        // Tamper: drop the original's last change from a copy of its own
        // trace — the refined side now ends early.
        let mut short = orig_trace.clone();
        short.events.pop();
        let err =
            check_stuttering_refinement(&orig, &orig_trace, &orig, &short, &SourceMap::default())
                .expect_err("must diverge");
        assert_eq!(err.observable, "x");
        assert_eq!((err.expected, err.got), (Some(2), None));
        assert!(err.to_string().contains("no further change"));
    }

    #[test]
    fn tampered_injected_event_is_caught() {
        let orig = stepper(false);
        let orig_trace = traced(&orig);
        let mut tampered = orig_trace.clone();
        // Inject a non-stuttering write the original never performed.
        tampered.events.insert(
            1,
            TraceEvent {
                time: 0,
                seq: 1,
                id: TraceId::Var(0),
                value: 99,
            },
        );
        let err = check_stuttering_refinement(
            &orig,
            &orig_trace,
            &orig,
            &tampered,
            &SourceMap::default(),
        )
        .expect_err("must diverge");
        assert_eq!(err.observable, "x");
        assert_eq!(err.got, Some(99));
    }

    #[test]
    fn initial_value_mismatch_is_change_zero() {
        let orig = stepper(false);
        let mut b = SpecBuilder::new("s");
        let x = b.var_int("x", 16, 5); // different declared init
        let a = b.leaf(
            "A",
            vec![stmt::assign(x, expr::lit(1)), stmt::assign(x, expr::lit(2))],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let bad = b.finish(top).expect("valid");
        let err = check_stuttering_refinement(
            &orig,
            &traced(&orig),
            &bad,
            &traced(&bad),
            &SourceMap::default(),
        )
        .expect_err("init differs");
        assert_eq!(err.change, 0);
        assert_eq!((err.expected, err.got), (Some(0), Some(5)));
    }
}
