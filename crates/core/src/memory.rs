//! Slave memory behavior generation — the paper's Figure 5(c) `Memory`
//! behavior, generalized to multi-variable, multi-port modules.
//!
//! Each memory *port* becomes one server behavior running a decode-serve
//! loop on its bus: on a read whose address matches one of the module's
//! variables, it drives the data lines with that variable's value; on a
//! write it stores the data lines into the variable. Arrays occupy one
//! word per element (`addr - base` indexes the element). A multi-port
//! module (Model3) gets one such behavior per port, all sharing the same
//! variables.

use modref_spec::stmt::CallArg;
use modref_spec::{
    expr, stmt, Behavior, BehaviorId, BehaviorKind, Expr, LValue, Spec, Stmt, SubroutineId, VarId,
};

use crate::protocol::{slave_loop, BusWires};

/// The slave-side protocol subroutines a memory port uses to move data —
/// `SLV_send` (drive the data lines on a read) and `SLV_receive` (latch
/// them on a write), as named in the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlvSubs {
    /// `SLV_send_<bus>`.
    pub send: SubroutineId,
    /// `SLV_receive_<bus>`.
    pub recv: SubroutineId,
}

/// One variable stored in a memory module, with its address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryVar {
    /// The variable (an id in the *refined* spec).
    pub var: VarId,
    /// Base word address.
    pub base: u64,
    /// Number of words (1 for scalars, `len` for arrays).
    pub elems: u32,
}

/// Builds one memory-port server behavior named `name`, serving `wires`
/// and exposing `vars`. `decode` restricts which addresses this slave
/// responds to (required when the bus hosts several slaves; pass the
/// module's own range).
pub fn make_memory_port(
    spec: &mut Spec,
    name: &str,
    wires: BusWires,
    vars: &[MemoryVar],
    decode: Option<(u64, u64)>,
) -> BehaviorId {
    let body = memory_port_body(wires, vars, decode, None);
    let fresh = spec.fresh_behavior_name(name);
    spec.add_behavior(Behavior::new_server(fresh, BehaviorKind::Leaf { body }))
}

/// Builds the decode-serve loop body of one memory port, without creating
/// a behavior — used to fill pre-created placeholder behaviors (whose
/// names the stored variables are scoped to).
pub fn memory_port_body(
    wires: BusWires,
    vars: &[MemoryVar],
    decode: Option<(u64, u64)>,
    slv: Option<SlvSubs>,
) -> Vec<Stmt> {
    let addr = || expr::signal(wires.addr);

    let mut read_cases: Vec<Stmt> = Vec::new();
    let mut write_cases: Vec<Stmt> = Vec::new();
    for mv in vars {
        let in_range: Expr = if mv.elems == 1 {
            expr::eq(addr(), expr::lit(mv.base as i64))
        } else {
            expr::and(
                expr::ge(addr(), expr::lit(mv.base as i64)),
                expr::lt(addr(), expr::lit((mv.base + u64::from(mv.elems)) as i64)),
            )
        };
        let read_value: Expr = if mv.elems == 1 {
            expr::var(mv.var)
        } else {
            expr::index(mv.var, expr::sub(addr(), expr::lit(mv.base as i64)))
        };
        let read_stmt = match slv {
            Some(s) => stmt::call(s.send, vec![CallArg::In(read_value)]),
            None => stmt::set_signal(wires.data, read_value),
        };
        read_cases.push(stmt::if_then(in_range.clone(), vec![read_stmt]));
        let write_target = if mv.elems == 1 {
            LValue::Var(mv.var)
        } else {
            LValue::Index(mv.var, expr::sub(addr(), expr::lit(mv.base as i64)))
        };
        let write_stmt = match slv {
            Some(s) => stmt::call(s.recv, vec![CallArg::Out(write_target)]),
            None => Stmt::Assign {
                target: write_target,
                value: expr::signal(wires.data),
            },
        };
        write_cases.push(stmt::if_then(in_range, vec![write_stmt]));
    }

    let on_request = vec![
        stmt::if_then(expr::eq(expr::signal(wires.rd), expr::lit(1)), read_cases),
        stmt::if_then(expr::eq(expr::signal(wires.wr), expr::lit(1)), write_cases),
    ];
    let decode_expr = decode.map(|(lo, hi)| {
        expr::and(
            expr::ge(addr(), expr::lit(lo as i64)),
            expr::le(addr(), expr::lit(hi as i64)),
        )
    });
    slave_loop(wires, decode_expr, on_request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{make_mst_receive, make_mst_send};
    use modref_sim::Simulator;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::stmt::CallArg;
    use modref_spec::types::ScalarType;
    use modref_spec::{DataType, LValue};

    /// A memory with a scalar and an array; the client reads and writes
    /// both through the protocol, with two slaves address-decoding one
    /// shared bus.
    #[test]
    fn decoded_slaves_share_a_bus() {
        let mut b = SpecBuilder::new("mem");
        let r1 = b.var_int("r1", 16, 0);
        let r2 = b.var_int("r2", 16, 0);
        let client = b.leaf("Client", vec![]);
        let main = b.seq_in_order("Main", vec![client]);
        let mut spec = b.finish_unchecked(main);

        let wires = BusWires::create(&mut spec, "b1", 5, 16);
        let recv = make_mst_receive(&mut spec, "b1", wires, 5, 16, "", None);
        let send = make_mst_send(&mut spec, "b1", wires, 5, 16, "", None);

        // Module A: scalar x at 0, array buf[4] at 1..4.
        let x = spec.add_variable("x", DataType::int(16), 5, None);
        let buf = spec.add_variable("buf", DataType::array(ScalarType::Int(16), 4), 9, None);
        let mem_a = make_memory_port(
            &mut spec,
            "MemA",
            wires,
            &[
                MemoryVar {
                    var: x,
                    base: 0,
                    elems: 1,
                },
                MemoryVar {
                    var: buf,
                    base: 1,
                    elems: 4,
                },
            ],
            Some((0, 4)),
        );
        // Module B: scalar y at 5.
        let y = spec.add_variable("y", DataType::int(16), 77, None);
        let mem_b = make_memory_port(
            &mut spec,
            "MemB",
            wires,
            &[MemoryVar {
                var: y,
                base: 5,
                elems: 1,
            }],
            Some((5, 5)),
        );

        *spec.behavior_mut(client).body_mut().unwrap() = vec![
            // r1 := mem[0] (x = 5)
            stmt::call(
                recv,
                vec![CallArg::In(expr::lit(0)), CallArg::Out(LValue::Var(r1))],
            ),
            // mem[3] := r1 + 1  (buf[2] = 6)
            stmt::call(
                send,
                vec![
                    CallArg::In(expr::lit(3)),
                    CallArg::In(expr::add(expr::var(r1), expr::lit(1))),
                ],
            ),
            // r2 := mem[5] (y = 77, served by module B)
            stmt::call(
                recv,
                vec![CallArg::In(expr::lit(5)), CallArg::Out(LValue::Var(r2))],
            ),
        ];

        let system = spec.add_behavior(Behavior::new(
            "System",
            BehaviorKind::Concurrent {
                children: vec![main, mem_a, mem_b],
            },
        ));
        spec.set_top(system);
        modref_spec::validate::check(&spec).unwrap();

        let r = Simulator::new(&spec).run().expect("completes");
        assert_eq!(r.var_by_name("r1"), Some(5));
        assert_eq!(r.var_by_name("r2"), Some(77));
        assert_eq!(r.array_by_name("buf"), Some(&[9, 9, 6, 9][..]));
        assert_eq!(r.var_by_name("x"), Some(5));
    }
}
