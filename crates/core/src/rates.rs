//! Bus transfer-rate tables — the paper's Figure 9 metric.
//!
//! For each data channel of the *original* specification, the channel
//! transfer rate is `bits_per_activation / lifetime(behavior)` under the
//! timing model of the behavior's component; the bus transfer rate is the
//! sum over channels mapped to the bus. Model4 remote accesses traverse a
//! three-bus chain and contribute to every hop (the paper reports those
//! hops together as `b2=b3=b4`).

use modref_estimate::rates::channel_rate;
use modref_estimate::{BusRateTable, LifetimeConfig, TimingModel};
use modref_graph::AccessGraph;
use modref_partition::{Allocation, Partition};
use modref_spec::Spec;

use crate::error::RefineError;
use crate::model::ImplModel;
use crate::plan::RefinePlan;

/// Computes the per-bus transfer-rate table for one implementation model
/// — one cell group of Figure 9.
///
/// Every bus planned for the model appears in the table, including buses
/// with zero traffic, so reports always show the model's full bus set.
///
/// # Errors
///
/// Propagates planning errors (empty allocation, unassigned objects).
///
/// # Example
///
/// ```
/// use modref_core::{figure9_rates, ImplModel};
/// use modref_estimate::LifetimeConfig;
/// use modref_graph::AccessGraph;
/// use modref_partition::{Allocation, Partition};
/// use modref_spec::builder::SpecBuilder;
/// use modref_spec::{expr, stmt};
///
/// let mut b = SpecBuilder::new("demo");
/// let x = b.var_int("x", 16, 0);
/// let a = b.leaf("A", vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))]);
/// let top = b.seq_in_order("Top", vec![a]);
/// let spec = b.finish(top)?;
/// let graph = AccessGraph::derive(&spec);
/// let alloc = Allocation::proc_plus_asic();
/// let part = Partition::with_default(alloc.by_name("PROC").unwrap());
/// let table = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model1,
///                           &LifetimeConfig::default())?;
/// assert_eq!(table.bus_count(), 1);
/// assert!(table.get("b1").unwrap() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn figure9_rates(
    spec: &Spec,
    graph: &AccessGraph,
    allocation: &Allocation,
    partition: &Partition,
    model: ImplModel,
    config: &LifetimeConfig,
) -> Result<BusRateTable, RefineError> {
    let plan = RefinePlan::build(spec, graph, allocation, partition, model)?;
    let channel_buses = plan.channel_buses(spec, graph, partition);

    let model_of = |b: modref_spec::BehaviorId| -> TimingModel {
        partition
            .component_of_behavior(spec, b)
            .map(|c| allocation.component(c).timing_model())
            .unwrap_or_default()
    };

    let mut table = BusRateTable::new();
    for bus in &plan.buses {
        table.touch(bus.name.clone());
    }
    for ch in graph.data_channels() {
        let Some(buses) = channel_buses.get(&ch.id()) else {
            continue;
        };
        let rate = channel_rate(spec, ch, &model_of, config);
        for bus in buses {
            table.add(bus.clone(), rate);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    fn fixture() -> (Spec, AccessGraph, Allocation, Partition) {
        let mut b = SpecBuilder::new("rates");
        let x = b.var_int("x", 16, 0);
        let g = b.var_int("g", 16, 0);
        let y = b.var_int("y", 16, 0);
        let b1 = b.leaf(
            "B1",
            vec![
                stmt::assign(x, expr::add(expr::var(x), expr::lit(1))),
                stmt::assign(g, expr::var(x)),
                stmt::delay(1000),
            ],
        );
        let b2 = b.leaf("B2", vec![stmt::assign(y, expr::var(g)), stmt::delay(1000)]);
        let top = b.concurrent("Top", vec![b1, b2]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::new();
        part.assign_behavior(top, proc);
        part.assign_behavior(b1, proc);
        part.assign_behavior(b2, asic);
        part.assign_var(x, proc);
        part.assign_var(g, proc);
        part.assign_var(y, asic);
        (spec, graph, alloc, part)
    }

    #[test]
    fn model1_concentrates_all_traffic_on_one_bus() {
        let (spec, graph, alloc, part) = fixture();
        let cfg = LifetimeConfig::default();
        let t1 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model1, &cfg).unwrap();
        assert_eq!(t1.bus_count(), 1);
        let t2 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model2, &cfg).unwrap();
        // Model1's single bus carries at least as much as Model2's worst.
        assert!(t1.max_rate() >= t2.max_rate() - 1e-9);
        // Model2 splits the same total traffic (no chains), so totals match.
        assert!((t1.total_rate() - t2.total_rate()).abs() < 1e-6);
    }

    #[test]
    fn model3_spreads_global_traffic_across_dedicated_buses() {
        let (spec, graph, alloc, part) = fixture();
        let cfg = LifetimeConfig::default();
        let t2 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model2, &cfg).unwrap();
        let t3 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model3, &cfg).unwrap();
        assert!(t3.bus_count() > t2.bus_count());
        assert!(t3.max_rate() <= t2.max_rate() + 1e-9);
    }

    #[test]
    fn model4_remote_chain_counts_on_every_hop() {
        let (spec, graph, alloc, part) = fixture();
        let cfg = LifetimeConfig::default();
        let t4 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model4, &cfg).unwrap();
        // B2 reads g remotely: the inter bus (b3) carries that traffic.
        let inter = t4.get("b3").unwrap();
        assert!(inter > 0.0);
        // Total over hops exceeds Model1's single-bus total (chains count
        // three times).
        let t1 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model1, &cfg).unwrap();
        assert!(t4.total_rate() > t1.total_rate() - 1e-9);
    }

    #[test]
    fn zero_traffic_buses_still_appear() {
        let (spec, graph, alloc, part) = fixture();
        let cfg = LifetimeConfig::default();
        let t3 = figure9_rates(&spec, &graph, &alloc, &part, ImplModel::Model3, &cfg).unwrap();
        // All planned buses appear even if a component never touches a
        // particular global memory.
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model3).unwrap();
        assert_eq!(t3.bus_count(), plan.buses.len());
    }
}
