//! The global address map: every memory-resident variable gets a unique
//! word address, so slaves on shared buses can decode which requests are
//! theirs (the paper's `x_addr`).

use std::collections::HashMap;

use modref_spec::{Spec, VarId};

/// Assigns global word addresses to memory-resident variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AddressMap {
    base: HashMap<VarId, u64>,
    next: u64,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a variable, reserving one word per element, and returns
    /// its base address.
    pub fn assign(&mut self, spec: &Spec, var: VarId) -> u64 {
        let base = self.next;
        self.base.insert(var, base);
        self.next += u64::from(spec.variable(var).ty().element_count());
        base
    }

    /// The base address of a variable, if assigned.
    pub fn base(&self, var: VarId) -> Option<u64> {
        self.base.get(&var).copied()
    }

    /// Total words assigned so far.
    pub fn words(&self) -> u64 {
        self.next
    }

    /// Address-bus width needed for the whole map.
    pub fn addr_bits(&self) -> u32 {
        modref_estimate::memory::address_width(self.next.max(1))
    }

    /// The inclusive address range `[lo, hi]` spanned by `vars`, or
    /// `None` when the list is empty. Used by slaves to decode.
    pub fn range_of(&self, spec: &Spec, vars: &[VarId]) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0;
        let mut any = false;
        for &v in vars {
            let base = self.base(v)?;
            let end = base + u64::from(spec.variable(v).ty().element_count()) - 1;
            lo = lo.min(base);
            hi = hi.max(end);
            any = true;
        }
        any.then_some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::types::{DataType, ScalarType};

    #[test]
    fn sequential_assignment_with_array_strides() {
        let mut b = SpecBuilder::new("a");
        let x = b.var_int("x", 16, 0);
        let arr = b.var("buf", DataType::array(ScalarType::Int(8), 10), 0);
        let y = b.var_int("y", 16, 0);
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).unwrap();

        let mut map = AddressMap::new();
        assert_eq!(map.assign(&spec, x), 0);
        assert_eq!(map.assign(&spec, arr), 1);
        assert_eq!(map.assign(&spec, y), 11);
        assert_eq!(map.words(), 12);
        assert_eq!(map.addr_bits(), 4);
        assert_eq!(map.base(x), Some(0));
        assert_eq!(map.range_of(&spec, &[arr, y]), Some((1, 11)));
        assert_eq!(map.range_of(&spec, &[]), None);
    }
}
