//! The typed, versioned JSONL wire protocol of `modref serve`.
//!
//! Each request is one JSON object per line; each reply is one JSON
//! object per line tagged with the request's `id`. [`Request`] and
//! [`Response`] are the typed forms: [`Request::from_json`] decodes a
//! client line (malformed input becomes
//! [`ModrefError::InvalidRequest`], never a panic), and
//! [`Response::to_json_line`] encodes a reply canonically — object keys
//! sorted, floats in shortest round-trip form, no timestamps — so a
//! fixed request stream yields byte-identical responses across runs.
//!
//! Two envelope versions are live:
//!
//! * **v1** (no `"v"` field) — the original flat protocol. Simulation
//!   options ride as ad-hoc top-level fields (`"kernel"`,
//!   `"verify_traces"`). Still accepted and answered byte-identically.
//! * **v2** (`"v":2`) — the structured envelope. Simulation options
//!   move into a `"sim"` object, specs can be referenced by content
//!   hash (`"hash"`, returned by the `load_spec` op), long explores can
//!   opt into streaming progress frames (`"stream":true`), and the
//!   `batch` op runs several sub-requests against one spec.
//!
//! Any other `"v"` is an `invalid_request` with a stable message, so
//! clients can feature-detect.
//!
//! ```
//! use modref_core::api::{Request, RequestOp, SpecSource};
//! let req = Request::from_json(
//!     r#"{"id":7,"op":"parse","workload":"fig2","deadline_ms":500}"#,
//! ).unwrap();
//! assert_eq!(req.id, 7);
//! assert_eq!(req.v, 1);
//! assert_eq!(req.deadline_ms, Some(500));
//! assert!(matches!(
//!     req.op,
//!     RequestOp::Parse { source: SpecSource::Workload(_) }
//! ));
//! // Encoding is canonical and stable.
//! let line = req.to_json_line();
//! assert_eq!(Request::from_json(&line).unwrap(), req);
//!
//! // The v2 envelope carries the version and nests sim options.
//! let req = Request::from_json(
//!     r#"{"v":2,"id":8,"op":"verify","workload":"fig2","sim":{"kernel":"compiled"}}"#,
//! ).unwrap();
//! assert_eq!(req.v, 2);
//! ```

use std::collections::BTreeMap;

use modref_analyze::{Diagnostic, Totals};
use modref_obs::json::{self, Value};

use crate::explore::{Exploration, Verification};
use crate::model::ImplModel;

use super::error::ModrefError;
use super::facade::SpecStats;

/// Where the specification of a request comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// Inline specification text (the `"spec"` field).
    Text(String),
    /// The name of a shipped workload (the `"workload"` field), resolved
    /// by the server's workload resolver.
    Workload(String),
    /// A content hash previously returned by `load_spec` (the `"hash"`
    /// field, protocol v2 only), resolved against the server's spec
    /// cache.
    Hash(String),
}

/// The simulation options of a `verify` request — protocol v2 nests
/// these under the `"sim"` object; v1 carries them as the legacy
/// top-level `"kernel"` / `"verify_traces"` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SimParams {
    /// Simulation kernel for the verification runs (one of `event`,
    /// `roundrobin`, `compiled`); `None` keeps the default event-driven
    /// kernel.
    pub kernel: Option<modref_sim::SimKernel>,
    /// When `true`, both simulations record event traces and the
    /// stuttering-refinement trace check runs per candidate × model.
    pub verify_traces: Option<bool>,
}

impl SimParams {
    /// Whether every option is unset (the encoded form omits the `sim`
    /// object entirely then, keeping v2 request lines minimal).
    pub fn is_empty(&self) -> bool {
        self.kernel.is_none() && self.verify_traces.is_none()
    }
}

/// One sub-request of a `batch` op. Sub-requests share the batch's
/// spec source and deadline; each carries its own `sub` id, echoed on
/// its entry in the batch response.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Client-chosen sub-id, unique within the batch.
    pub sub: u64,
    /// The operation. Decoding substitutes the batch's source, so this
    /// is always a spec-consuming op carrying the shared source.
    pub op: RequestOp,
}

/// The operation a request asks for, with its operation-specific
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestOp {
    /// Parse + validate a spec and report its size statistics.
    Parse {
        /// The specification to parse.
        source: SpecSource,
    },
    /// Parse + cache a spec, returning its content hash for later ops
    /// to reference (protocol v2).
    LoadSpec {
        /// The specification text to load.
        text: String,
    },
    /// Refine the spec under a partition into one implementation model.
    Refine {
        /// The specification to refine.
        source: SpecSource,
        /// Partition text (allocation + assignment).
        part: String,
        /// Implementation model number, 1–4.
        model: u8,
    },
    /// Render the lifetime/channel-rate estimation report.
    Estimate {
        /// The specification to estimate.
        source: SpecSource,
        /// Partition text (allocation + assignment).
        part: String,
    },
    /// Run the multi-start design-space exploration.
    Explore {
        /// The specification to explore.
        source: SpecSource,
        /// Optional partition text supplying the allocation.
        part: Option<String>,
        /// Seed count (`None` keeps the default).
        seeds: Option<u64>,
        /// Worker threads for the exploration itself.
        threads: Option<usize>,
        /// Keep only the best N points in the response.
        top: Option<usize>,
    },
    /// Explore, then verify the Pareto front by simulation.
    Verify {
        /// The specification to explore and verify.
        source: SpecSource,
        /// Optional partition text supplying the allocation.
        part: Option<String>,
        /// Seed count for the exploration phase.
        seeds: Option<u64>,
        /// Worker threads.
        threads: Option<usize>,
        /// Simulation options. Encoded per envelope version: flat
        /// `"kernel"` / `"verify_traces"` fields in v1, the nested
        /// `"sim"` object in v2 (omitted when empty either way, so
        /// existing request streams are unchanged).
        sim: SimParams,
    },
    /// Run the static-analysis lints (plus conformance lints with a
    /// partition).
    Lint {
        /// The specification to lint.
        source: SpecSource,
        /// Optional partition text enabling the conformance lints.
        part: Option<String>,
        /// Restrict conformance linting to one model (1–4).
        model: Option<u8>,
        /// Lint codes/names (or `warnings`) promoted to errors.
        deny: Vec<String>,
        /// Lint codes/names suppressed.
        allow: Vec<String>,
    },
    /// Run several sub-requests against one spec (protocol v2). The
    /// batch's deadline covers the whole batch; responses are keyed by
    /// sub-id in a single `batch` reply.
    Batch {
        /// The shared specification every item runs against.
        source: SpecSource,
        /// The sub-requests, answered in order.
        items: Vec<BatchItem>,
    },
    /// Cooperatively cancel the in-flight request with id `target`.
    Cancel {
        /// The id of the request to stop.
        target: u64,
    },
}

impl RequestOp {
    /// The wire name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            RequestOp::Parse { .. } => "parse",
            RequestOp::LoadSpec { .. } => "load_spec",
            RequestOp::Refine { .. } => "refine",
            RequestOp::Estimate { .. } => "estimate",
            RequestOp::Explore { .. } => "explore",
            RequestOp::Verify { .. } => "verify",
            RequestOp::Lint { .. } => "lint",
            RequestOp::Batch { .. } => "batch",
            RequestOp::Cancel { .. } => "cancel",
        }
    }

    /// The spec source a spec-consuming op references (`None` for
    /// `cancel` and `load_spec`, which carry no source).
    pub fn source(&self) -> Option<&SpecSource> {
        match self {
            RequestOp::Parse { source }
            | RequestOp::Refine { source, .. }
            | RequestOp::Estimate { source, .. }
            | RequestOp::Explore { source, .. }
            | RequestOp::Verify { source, .. }
            | RequestOp::Lint { source, .. }
            | RequestOp::Batch { source, .. } => Some(source),
            RequestOp::LoadSpec { .. } | RequestOp::Cancel { .. } => None,
        }
    }
}

/// One decoded serve request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Request {
    /// Client-chosen id echoed on the response.
    pub id: u64,
    /// Per-request deadline in milliseconds (overrides the server
    /// default).
    pub deadline_ms: Option<u64>,
    /// The operation and its parameters.
    pub op: RequestOp,
    /// Envelope version: 1 (no `"v"` field on the wire) or 2.
    pub v: u8,
    /// Whether the client asked for streaming progress frames
    /// (`"stream":true`, protocol v2). Final responses are identical
    /// with streaming on or off; only the interleaved
    /// `{"event":"progress",...}` frames differ.
    pub stream: bool,
}

impl Request {
    /// A v1 request with no deadline.
    pub fn new(id: u64, op: RequestOp) -> Self {
        Request {
            id,
            deadline_ms: None,
            op,
            v: 1,
            stream: false,
        }
    }

    /// A v2 request with no deadline and streaming off.
    pub fn v2(id: u64, op: RequestOp) -> Self {
        Request {
            v: 2,
            ..Request::new(id, op)
        }
    }

    /// This request with a deadline.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// This request with streaming progress frames requested.
    #[must_use]
    pub fn with_stream(mut self, on: bool) -> Self {
        self.stream = on;
        self
    }
}

/// One streaming progress frame, emitted between a request's acceptance
/// and its final response when the client set `"stream":true`. Frames
/// are distinguishable from responses by the `"event":"progress"` tag
/// and carry no `"ok"` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressFrame {
    /// The id of the request the frame belongs to.
    pub id: u64,
    /// Progress phase (`explore.job`, `explore.candidates`,
    /// `explore.rate`, `verify.job`).
    pub phase: String,
    /// Units completed so far in this phase.
    pub done: u64,
    /// Total units of this phase.
    pub total: u64,
}

impl ProgressFrame {
    /// Encodes the frame as one canonical JSON line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        render(&obj(vec![
            ("done", Value::UInt(self.done)),
            ("event", Value::Str("progress".into())),
            ("id", Value::UInt(self.id)),
            ("phase", Value::Str(self.phase.clone())),
            ("total", Value::UInt(self.total)),
        ]))
    }

    /// Decodes one progress line (a line without the
    /// `"event":"progress"` tag is an invalid request error).
    pub fn from_json(line: &str) -> Result<Self, ModrefError> {
        let v = json::parse(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let o = v
            .as_obj()
            .ok_or_else(|| invalid("progress frame must be a JSON object"))?;
        if get_str(o, "event")?.as_deref() != Some("progress") {
            return Err(invalid(
                "not a progress frame (missing `\"event\":\"progress\"`)",
            ));
        }
        Ok(ProgressFrame {
            id: get_u64(o, "id")?.ok_or_else(|| invalid("missing numeric `id`"))?,
            phase: get_str(o, "phase")?.unwrap_or_default(),
            done: get_u64(o, "done")?.unwrap_or(0),
            total: get_u64(o, "total")?.unwrap_or(0),
        })
    }

    /// Whether a raw line is a progress frame (cheap client-side
    /// dispatch between frames and final responses).
    pub fn is_progress_line(line: &str) -> bool {
        Self::from_json(line).is_ok()
    }
}

/// The payload of a reply.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResponseBody {
    /// `parse` succeeded.
    Parsed(SpecStats),
    /// `load_spec` succeeded: the spec is parsed, cached and
    /// addressable by `hash` from any connection.
    Loaded {
        /// Content hash of the spec text; later ops reference it via
        /// the `"hash"` source field.
        hash: String,
        /// Size statistics of the parsed spec.
        stats: SpecStats,
    },
    /// `refine` succeeded.
    Refined {
        /// The implementation model refined under.
        model: u8,
        /// Behavior count of the refined specification.
        behaviors: usize,
        /// Buses the refinement plan allocated.
        buses: usize,
        /// Lines of the refined spec's canonical pretty-print.
        printed_lines: usize,
    },
    /// `estimate` succeeded.
    Estimated {
        /// The rendered estimation report.
        report: String,
    },
    /// `explore` succeeded.
    Explored {
        /// Evaluated design points (possibly truncated to the request's
        /// `top`).
        points: Vec<PointSummary>,
        /// Number of Pareto-optimal points over the *full* set.
        pareto: usize,
        /// Total points evaluated before truncation.
        total: usize,
    },
    /// `verify` succeeded.
    Verified {
        /// One record per front candidate × implementation model.
        records: Vec<RecordSummary>,
        /// Whether every record verified equivalent.
        equivalent: bool,
        /// Final simulated time of the original specification.
        original_time: u64,
        /// Micro-steps of the original simulation.
        original_steps: u64,
    },
    /// `lint` succeeded (diagnostics may still contain errors).
    Linted {
        /// The diagnostics, in canonical order.
        diagnostics: Vec<DiagSummary>,
        /// Error-severity count.
        errors: usize,
        /// Warning-severity count.
        warnings: usize,
        /// Note-severity count.
        notes: usize,
    },
    /// `batch` completed; each sub-request's outcome is keyed by its
    /// sub-id.
    Batch {
        /// One result per batch item, in request order.
        results: Vec<SubResult>,
    },
    /// `cancel` was processed (an ack — the cancelled request itself
    /// still replies with a `cancelled` error).
    Cancelled {
        /// The id the cancel aimed at.
        target: u64,
        /// Whether that id was in flight when the cancel arrived.
        found: bool,
    },
    /// The request failed; `code` is the stable
    /// [`ModrefError::code`] class.
    Error {
        /// Stable failure class.
        code: String,
        /// Human-readable description.
        message: String,
    },
}

/// One sub-request's outcome inside a `batch` response: rendered like a
/// miniature response, with `sub` in place of `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubResult {
    /// The sub-id of the batch item this answers.
    pub sub: u64,
    /// The payload (success body or [`ResponseBody::Error`]).
    pub body: ResponseBody,
}

/// One design point of an `explore` response.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: String,
    /// The seed that drove it.
    pub seed: u64,
    /// The implementation model evaluated (1–4).
    pub model: u8,
    /// Weighted total partition cost.
    pub cost: f64,
    /// Peak bus transfer rate in Mbit/s.
    pub max_bus_rate: f64,
    /// Buses the refinement plan allocates.
    pub buses: usize,
    /// Whether the point is Pareto-optimal.
    pub pareto: bool,
}

/// One candidate×model record of a `verify` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSummary {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: String,
    /// The seed that drove it.
    pub seed: u64,
    /// The implementation model refined under (1–4).
    pub model: u8,
    /// Whether the refined spec simulated equivalently.
    pub equivalent: bool,
    /// Divergence description (empty when equivalent).
    pub detail: String,
    /// Signal writes introduced by the refinement's bus protocol.
    pub bus_traffic: u64,
}

/// One diagnostic of a `lint` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagSummary {
    /// Stable lint code (`ST01`, `DF02`, `RC01`, ...).
    pub code: String,
    /// Severity label: `note`, `warning` or `error`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the spec came from text.
    pub line: Option<u32>,
    /// 1-based source column.
    pub col: Option<u32>,
}

/// One reply, tagged with the id of the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers (0 for lines that carried no id).
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

impl Response {
    /// A success reply.
    pub fn ok(id: u64, body: ResponseBody) -> Self {
        Response { id, body }
    }

    /// A failure reply carrying the error's stable code.
    pub fn err(id: u64, e: &ModrefError) -> Self {
        Response {
            id,
            body: ResponseBody::Error {
                code: e.code().to_string(),
                message: e.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Conversions from pipeline results.

impl ResponseBody {
    /// Summarizes an exploration, keeping only the best `top` points
    /// (all when `None`).
    pub fn from_exploration(out: &Exploration, top: Option<usize>) -> Self {
        let total = out.points.len();
        let pareto = out.points.iter().filter(|p| p.pareto).count();
        let keep = top.unwrap_or(total).min(total);
        let points = out.points[..keep]
            .iter()
            .map(|p| PointSummary {
                algorithm: p.algorithm.to_string(),
                seed: p.seed,
                model: p.model.number(),
                cost: p.cost.total,
                max_bus_rate: p.max_bus_rate,
                buses: p.bus_count,
                pareto: p.pareto,
            })
            .collect();
        ResponseBody::Explored {
            points,
            pareto,
            total,
        }
    }

    /// Summarizes a verification.
    pub fn from_verification(v: &Verification) -> Self {
        ResponseBody::Verified {
            records: v
                .records
                .iter()
                .map(|r| RecordSummary {
                    algorithm: r.algorithm.to_string(),
                    seed: r.seed,
                    model: r.model.number(),
                    equivalent: r.equivalent,
                    detail: r.detail.clone(),
                    bus_traffic: r.bus_traffic,
                })
                .collect(),
            equivalent: v.all_equivalent(),
            original_time: v.original_time,
            original_steps: v.original_steps,
        }
    }

    /// Summarizes lint diagnostics (assumed already in canonical order).
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let totals = Totals::of(diags);
        ResponseBody::Linted {
            diagnostics: diags
                .iter()
                .map(|d| DiagSummary {
                    code: d.code.to_string(),
                    severity: d.severity.label().to_string(),
                    message: d.message.clone(),
                    line: d.span.map(|s| s.line),
                    col: d.span.map(|s| s.col),
                })
                .collect(),
            errors: totals.errors,
            warnings: totals.warnings,
            notes: totals.notes,
        }
    }
}

/// The implementation model for a wire model number.
pub(crate) fn model_from(n: u64) -> Result<ImplModel, ModrefError> {
    match n {
        1..=4 => Ok(ImplModel::ALL[(n - 1) as usize]),
        _ => Err(ModrefError::InvalidRequest(format!(
            "model must be 1..=4, got {n}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Encoding.

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(v: &Value) -> String {
    let mut out = String::new();
    json::write_value(&mut out, v);
    out
}

fn str_arr(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

fn push_source(m: &mut Vec<(&str, Value)>, s: &SpecSource) {
    match s {
        SpecSource::Text(t) => m.push(("spec", Value::Str(t.clone()))),
        SpecSource::Workload(w) => m.push(("workload", Value::Str(w.clone()))),
        SpecSource::Hash(h) => m.push(("hash", Value::Str(h.clone()))),
    }
}

/// Appends `op`'s fields to `m`. `v2` selects the envelope dialect
/// (nested `sim` object vs. flat legacy fields); `with_source` is false
/// for batch items, which inherit the batch's source.
fn push_op_fields(m: &mut Vec<(&str, Value)>, op: &RequestOp, v2: bool, with_source: bool) {
    let source = |m: &mut Vec<(&str, Value)>, s: &SpecSource| {
        if with_source {
            push_source(m, s);
        }
    };
    match op {
        RequestOp::Parse { source: s } => source(m, s),
        RequestOp::LoadSpec { text } => m.push(("spec", Value::Str(text.clone()))),
        RequestOp::Refine {
            source: s,
            part,
            model,
        } => {
            source(m, s);
            m.push(("part", Value::Str(part.clone())));
            m.push(("model", Value::UInt(u64::from(*model))));
        }
        RequestOp::Estimate { source: s, part } => {
            source(m, s);
            m.push(("part", Value::Str(part.clone())));
        }
        RequestOp::Explore {
            source: s,
            part,
            seeds,
            threads,
            top,
        } => {
            source(m, s);
            if let Some(p) = part {
                m.push(("part", Value::Str(p.clone())));
            }
            if let Some(k) = seeds {
                m.push(("seeds", Value::UInt(*k)));
            }
            if let Some(t) = threads {
                m.push(("threads", Value::UInt(*t as u64)));
            }
            if let Some(t) = top {
                m.push(("top", Value::UInt(*t as u64)));
            }
        }
        RequestOp::Verify {
            source: s,
            part,
            seeds,
            threads,
            sim,
        } => {
            source(m, s);
            if let Some(p) = part {
                m.push(("part", Value::Str(p.clone())));
            }
            if let Some(k) = seeds {
                m.push(("seeds", Value::UInt(*k)));
            }
            if let Some(t) = threads {
                m.push(("threads", Value::UInt(*t as u64)));
            }
            if v2 {
                if !sim.is_empty() {
                    let mut e: Vec<(&str, Value)> = Vec::new();
                    if let Some(k) = sim.kernel {
                        e.push(("kernel", Value::Str(k.name().to_string())));
                    }
                    if let Some(t) = sim.verify_traces {
                        e.push(("verify_traces", Value::Bool(t)));
                    }
                    m.push(("sim", obj(e)));
                }
            } else {
                if let Some(k) = sim.kernel {
                    m.push(("kernel", Value::Str(k.name().to_string())));
                }
                if let Some(t) = sim.verify_traces {
                    m.push(("verify_traces", Value::Bool(t)));
                }
            }
        }
        RequestOp::Lint {
            source: s,
            part,
            model,
            deny,
            allow,
        } => {
            source(m, s);
            if let Some(p) = part {
                m.push(("part", Value::Str(p.clone())));
            }
            if let Some(n) = model {
                m.push(("model", Value::UInt(u64::from(*n))));
            }
            if !deny.is_empty() {
                m.push(("deny", str_arr(deny)));
            }
            if !allow.is_empty() {
                m.push(("allow", str_arr(allow)));
            }
        }
        RequestOp::Batch { source: s, items } => {
            source(m, s);
            m.push((
                "items",
                Value::Arr(
                    items
                        .iter()
                        .map(|item| {
                            let mut e: Vec<(&str, Value)> = vec![
                                ("op", Value::Str(item.op.name().to_string())),
                                ("sub", Value::UInt(item.sub)),
                            ];
                            push_op_fields(&mut e, &item.op, true, false);
                            obj(e)
                        })
                        .collect(),
                ),
            ));
        }
        RequestOp::Cancel { target } => m.push(("target", Value::UInt(*target))),
    }
}

impl Request {
    /// Encodes the request as one canonical JSON line (no trailing
    /// newline). v1 requests encode exactly as before the versioned
    /// envelope existed (no `"v"` field, flat sim options).
    pub fn to_json_line(&self) -> String {
        let v2 = self.v >= 2;
        let mut m: Vec<(&str, Value)> = vec![
            ("id", Value::UInt(self.id)),
            ("op", Value::Str(self.op.name().to_string())),
        ];
        if v2 {
            m.push(("v", Value::UInt(u64::from(self.v))));
            if self.stream {
                m.push(("stream", Value::Bool(true)));
            }
        }
        if let Some(d) = self.deadline_ms {
            m.push(("deadline_ms", Value::UInt(d)));
        }
        push_op_fields(&mut m, &self.op, v2, true);
        render(&obj(m))
    }
}

/// The `ok`/`op`/payload entries of a reply — everything except the id
/// key, shared between top-level responses and batch sub-results.
fn body_entries(body: &ResponseBody) -> Vec<(&'static str, Value)> {
    let mut m: Vec<(&'static str, Value)> = Vec::new();
    match body {
        ResponseBody::Error { code, message } => {
            m.push(("ok", Value::Bool(false)));
            m.push((
                "error",
                obj(vec![
                    ("code", Value::Str(code.clone())),
                    ("message", Value::Str(message.clone())),
                ]),
            ));
        }
        body => {
            m.push(("ok", Value::Bool(true)));
            match body {
                ResponseBody::Parsed(s) => {
                    m.push(("op", Value::Str("parse".into())));
                    m.push(("stats", stats_value(s)));
                }
                ResponseBody::Loaded { hash, stats } => {
                    m.push(("op", Value::Str("load_spec".into())));
                    m.push(("hash", Value::Str(hash.clone())));
                    m.push(("stats", stats_value(stats)));
                }
                ResponseBody::Refined {
                    model,
                    behaviors,
                    buses,
                    printed_lines,
                } => {
                    m.push(("op", Value::Str("refine".into())));
                    m.push(("model", Value::UInt(u64::from(*model))));
                    m.push(("behaviors", Value::UInt(*behaviors as u64)));
                    m.push(("buses", Value::UInt(*buses as u64)));
                    m.push(("printed_lines", Value::UInt(*printed_lines as u64)));
                }
                ResponseBody::Estimated { report } => {
                    m.push(("op", Value::Str("estimate".into())));
                    m.push(("report", Value::Str(report.clone())));
                }
                ResponseBody::Explored {
                    points,
                    pareto,
                    total,
                } => {
                    m.push(("op", Value::Str("explore".into())));
                    m.push(("total", Value::UInt(*total as u64)));
                    m.push(("pareto", Value::UInt(*pareto as u64)));
                    m.push((
                        "points",
                        Value::Arr(
                            points
                                .iter()
                                .map(|p| {
                                    obj(vec![
                                        ("algorithm", Value::Str(p.algorithm.clone())),
                                        ("buses", Value::UInt(p.buses as u64)),
                                        ("cost", Value::Num(p.cost)),
                                        ("max_bus_rate", Value::Num(p.max_bus_rate)),
                                        ("model", Value::UInt(u64::from(p.model))),
                                        ("pareto", Value::Bool(p.pareto)),
                                        ("seed", Value::UInt(p.seed)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                ResponseBody::Verified {
                    records,
                    equivalent,
                    original_time,
                    original_steps,
                } => {
                    m.push(("op", Value::Str("verify".into())));
                    m.push(("equivalent", Value::Bool(*equivalent)));
                    m.push(("original_time", Value::UInt(*original_time)));
                    m.push(("original_steps", Value::UInt(*original_steps)));
                    m.push((
                        "records",
                        Value::Arr(
                            records
                                .iter()
                                .map(|r| {
                                    obj(vec![
                                        ("algorithm", Value::Str(r.algorithm.clone())),
                                        ("bus_traffic", Value::UInt(r.bus_traffic)),
                                        ("detail", Value::Str(r.detail.clone())),
                                        ("equivalent", Value::Bool(r.equivalent)),
                                        ("model", Value::UInt(u64::from(r.model))),
                                        ("seed", Value::UInt(r.seed)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                ResponseBody::Linted {
                    diagnostics,
                    errors,
                    warnings,
                    notes,
                } => {
                    m.push(("op", Value::Str("lint".into())));
                    m.push(("errors", Value::UInt(*errors as u64)));
                    m.push(("warnings", Value::UInt(*warnings as u64)));
                    m.push(("notes", Value::UInt(*notes as u64)));
                    m.push((
                        "diagnostics",
                        Value::Arr(
                            diagnostics
                                .iter()
                                .map(|d| {
                                    let mut e = vec![
                                        ("code", Value::Str(d.code.clone())),
                                        ("message", Value::Str(d.message.clone())),
                                        ("severity", Value::Str(d.severity.clone())),
                                    ];
                                    if let Some(line) = d.line {
                                        e.push(("line", Value::UInt(u64::from(line))));
                                    }
                                    if let Some(col) = d.col {
                                        e.push(("col", Value::UInt(u64::from(col))));
                                    }
                                    obj(e)
                                })
                                .collect(),
                        ),
                    ));
                }
                ResponseBody::Batch { results } => {
                    m.push(("op", Value::Str("batch".into())));
                    m.push((
                        "results",
                        Value::Arr(
                            results
                                .iter()
                                .map(|r| {
                                    let mut e: Vec<(&str, Value)> =
                                        vec![("sub", Value::UInt(r.sub))];
                                    e.extend(body_entries(&r.body));
                                    obj(e)
                                })
                                .collect(),
                        ),
                    ));
                }
                ResponseBody::Cancelled { target, found } => {
                    m.push(("op", Value::Str("cancel".into())));
                    m.push(("target", Value::UInt(*target)));
                    m.push(("found", Value::Bool(*found)));
                }
                ResponseBody::Error { .. } => unreachable!("handled above"),
            }
        }
    }
    m
}

fn stats_value(s: &SpecStats) -> Value {
    obj(vec![
        ("behaviors", Value::UInt(s.behaviors as u64)),
        ("control_channels", Value::UInt(s.control_channels as u64)),
        ("data_channels", Value::UInt(s.data_channels as u64)),
        ("leaves", Value::UInt(s.leaves as u64)),
        ("name", Value::Str(s.name.clone())),
        ("printed_lines", Value::UInt(s.printed_lines as u64)),
        ("signals", Value::UInt(s.signals as u64)),
        ("statements", Value::UInt(s.statements as u64)),
        ("subroutines", Value::UInt(s.subroutines as u64)),
        ("variables", Value::UInt(s.variables as u64)),
    ])
}

impl Response {
    /// Encodes the reply as one canonical JSON line (no trailing
    /// newline). Responses carry no timestamps or version tag — v1 and
    /// v2 requests are answered in the same format, so a fixed request
    /// is answered byte-identically across runs and envelope versions.
    pub fn to_json_line(&self) -> String {
        let mut m: Vec<(&str, Value)> = vec![("id", Value::UInt(self.id))];
        m.extend(body_entries(&self.body));
        render(&obj(m))
    }
}

// ---------------------------------------------------------------------
// Decoding.

fn invalid(msg: impl Into<String>) -> ModrefError {
    ModrefError::InvalidRequest(msg.into())
}

fn get_u64(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_str(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<String>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("`{key}` must be a string"))),
    }
}

fn get_bool(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<bool>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(invalid(format!("`{key}` must be a boolean"))),
    }
}

/// The optional `"kernel"` field of `o`, by wire name. An unknown
/// kernel name is an invalid request, not a silent fallback to the
/// default.
fn get_kernel(o: &BTreeMap<String, Value>) -> Result<Option<modref_sim::SimKernel>, ModrefError> {
    match get_str(o, "kernel")? {
        None => Ok(None),
        Some(name) => modref_sim::SimKernel::from_name(&name)
            .map(Some)
            .ok_or_else(|| {
                invalid(format!(
                    "unknown kernel `{name}` (expected event|roundrobin|compiled)"
                ))
            }),
    }
}

fn get_str_list(o: &BTreeMap<String, Value>, key: &str) -> Result<Vec<String>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(|s| s.to_string())
                        .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))
                })
                .collect()
        }
    }
}

fn get_model(o: &BTreeMap<String, Value>) -> Result<Option<u8>, ModrefError> {
    match get_u64(o, "model")? {
        None => Ok(None),
        Some(n) => Ok(Some(model_from(n)?.number())),
    }
}

/// The spec source of a v1 request: exactly one of `spec` / `workload`.
fn source_v1(o: &BTreeMap<String, Value>) -> Result<SpecSource, ModrefError> {
    let spec = get_str(o, "spec")?;
    let workload = get_str(o, "workload")?;
    match (spec, workload) {
        (Some(text), None) => Ok(SpecSource::Text(text)),
        (None, Some(name)) => Ok(SpecSource::Workload(name)),
        (Some(_), Some(_)) => Err(invalid("give either `spec` or `workload`, not both")),
        (None, None) => Err(invalid("missing `spec` text or `workload` name")),
    }
}

/// The spec source of a v2 request: exactly one of `spec` / `workload`
/// / `hash`.
fn source_v2(o: &BTreeMap<String, Value>) -> Result<SpecSource, ModrefError> {
    let mut found: Vec<SpecSource> = Vec::new();
    if let Some(text) = get_str(o, "spec")? {
        found.push(SpecSource::Text(text));
    }
    if let Some(name) = get_str(o, "workload")? {
        found.push(SpecSource::Workload(name));
    }
    if let Some(h) = get_str(o, "hash")? {
        found.push(SpecSource::Hash(h));
    }
    match found.len() {
        1 => Ok(found.pop().expect("one source")),
        0 => Err(invalid("missing `spec` text, `workload` name or `hash`")),
        _ => Err(invalid("give exactly one of `spec`, `workload` or `hash`")),
    }
}

/// The simulation options of `o` per envelope version: v1 reads the
/// flat legacy fields, v2 requires them nested under `"sim"`.
fn sim_params(o: &BTreeMap<String, Value>, v2: bool) -> Result<SimParams, ModrefError> {
    if !v2 {
        return Ok(SimParams {
            kernel: get_kernel(o)?,
            verify_traces: get_bool(o, "verify_traces")?,
        });
    }
    if o.contains_key("kernel") || o.contains_key("verify_traces") {
        return Err(invalid(
            "in protocol v2, `kernel` and `verify_traces` belong in the `sim` object",
        ));
    }
    match o.get("sim") {
        None | Some(Value::Null) => Ok(SimParams::default()),
        Some(v) => {
            let s = v
                .as_obj()
                .ok_or_else(|| invalid("`sim` must be an object"))?;
            Ok(SimParams {
                kernel: get_kernel(s)?,
                verify_traces: get_bool(s, "verify_traces")?,
            })
        }
    }
}

/// Decodes the op-specific fields of a spec-consuming op with an
/// already-resolved `source` — shared between top-level requests and
/// batch items.
fn spec_op(
    o: &BTreeMap<String, Value>,
    op_name: &str,
    source: SpecSource,
    v2: bool,
) -> Result<RequestOp, ModrefError> {
    Ok(match op_name {
        "parse" => RequestOp::Parse { source },
        "refine" => RequestOp::Refine {
            source,
            part: get_str(o, "part")?.ok_or_else(|| invalid("refine needs `part` text"))?,
            model: get_model(o)?.ok_or_else(|| invalid("refine needs `model` 1..=4"))?,
        },
        "estimate" => RequestOp::Estimate {
            source,
            part: get_str(o, "part")?.ok_or_else(|| invalid("estimate needs `part` text"))?,
        },
        "explore" => RequestOp::Explore {
            source,
            part: get_str(o, "part")?,
            seeds: get_u64(o, "seeds")?,
            threads: get_u64(o, "threads")?.map(|t| t as usize),
            top: get_u64(o, "top")?.map(|t| t as usize),
        },
        "verify" => RequestOp::Verify {
            source,
            part: get_str(o, "part")?,
            seeds: get_u64(o, "seeds")?,
            threads: get_u64(o, "threads")?.map(|t| t as usize),
            sim: sim_params(o, v2)?,
        },
        "lint" => RequestOp::Lint {
            source,
            part: get_str(o, "part")?,
            model: get_model(o)?,
            deny: get_str_list(o, "deny")?,
            allow: get_str_list(o, "allow")?,
        },
        other => return Err(invalid(format!("unknown op `{other}`"))),
    })
}

/// Decodes the `items` of a v2 batch against the batch's shared source.
fn batch_items(
    o: &BTreeMap<String, Value>,
    source: &SpecSource,
) -> Result<Vec<BatchItem>, ModrefError> {
    let arr = o
        .get("items")
        .and_then(Value::as_arr)
        .ok_or_else(|| invalid("batch needs an `items` array"))?;
    if arr.is_empty() {
        return Err(invalid("batch needs at least one item"));
    }
    let mut items = Vec::with_capacity(arr.len());
    let mut seen = std::collections::BTreeSet::new();
    for entry in arr {
        let item = entry
            .as_obj()
            .ok_or_else(|| invalid("batch items must be objects"))?;
        let sub =
            get_u64(item, "sub")?.ok_or_else(|| invalid("batch items need a numeric `sub`"))?;
        if !seen.insert(sub) {
            return Err(invalid(format!("duplicate batch `sub` {sub}")));
        }
        let op_name = get_str(item, "op")?.ok_or_else(|| invalid("batch items need an `op`"))?;
        if matches!(op_name.as_str(), "cancel" | "batch" | "load_spec") {
            return Err(invalid(format!("batch items cannot be `{op_name}`")));
        }
        for forbidden in ["spec", "workload", "hash"] {
            if item.contains_key(forbidden) {
                return Err(invalid(format!(
                    "batch items inherit the batch's spec; remove `{forbidden}`"
                )));
            }
        }
        if item.contains_key("deadline_ms") {
            return Err(invalid(
                "the deadline is batch-level; remove `deadline_ms` from items",
            ));
        }
        items.push(BatchItem {
            sub,
            op: spec_op(item, &op_name, source.clone(), true)?,
        });
    }
    Ok(items)
}

impl Request {
    /// Decodes one request line. Every malformation — bad JSON, a
    /// missing id, an unknown op or version, a wrongly typed field — is
    /// an [`ModrefError::InvalidRequest`], never a panic.
    pub fn from_json(line: &str) -> Result<Self, ModrefError> {
        let v = json::parse(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let o = v
            .as_obj()
            .ok_or_else(|| invalid("request must be a JSON object"))?;
        let version = get_u64(o, "v")?.unwrap_or(1);
        if !matches!(version, 1 | 2) {
            return Err(invalid(format!(
                "unsupported protocol version {version} (supported: 1, 2)"
            )));
        }
        let v2 = version == 2;
        let id = get_u64(o, "id")?.ok_or_else(|| invalid("missing numeric `id`"))?;
        let op_name = get_str(o, "op")?.ok_or_else(|| invalid("missing `op`"))?;
        let deadline_ms = get_u64(o, "deadline_ms")?;
        // v1 ignores unknown fields (including `stream`) for drop-in
        // compatibility with pre-versioned clients.
        let stream = v2 && get_bool(o, "stream")?.unwrap_or(false);
        let op = match op_name.as_str() {
            "cancel" => RequestOp::Cancel {
                target: get_u64(o, "target")?
                    .ok_or_else(|| invalid("cancel needs a numeric `target`"))?,
            },
            "load_spec" if v2 => RequestOp::LoadSpec {
                text: get_str(o, "spec")?.ok_or_else(|| invalid("load_spec needs `spec` text"))?,
            },
            "batch" if v2 => {
                let source = source_v2(o)?;
                let items = batch_items(o, &source)?;
                RequestOp::Batch { source, items }
            }
            name => {
                let source = if v2 { source_v2(o)? } else { source_v1(o)? };
                spec_op(o, name, source, v2)?
            }
        };
        Ok(Request {
            id,
            deadline_ms,
            op,
            v: version as u8,
            stream,
        })
    }
}

/// Decodes the `ok`/`op`/payload half of a reply object — shared
/// between top-level responses and batch sub-results.
fn body_from(o: &BTreeMap<String, Value>) -> Result<ResponseBody, ModrefError> {
    let ok = match o.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(invalid("missing boolean `ok`")),
    };
    if !ok {
        let e = o
            .get("error")
            .and_then(Value::as_obj)
            .ok_or_else(|| invalid("failure response needs an `error` object"))?;
        return Ok(ResponseBody::Error {
            code: get_str(e, "code")?.unwrap_or_default(),
            message: get_str(e, "message")?.unwrap_or_default(),
        });
    }
    let op = get_str(o, "op")?.ok_or_else(|| invalid("missing `op`"))?;
    let body = match op.as_str() {
        "parse" => {
            let s = o
                .get("stats")
                .and_then(Value::as_obj)
                .ok_or_else(|| invalid("parse response needs `stats`"))?;
            ResponseBody::Parsed(stats_from(s)?)
        }
        "load_spec" => {
            let s = o
                .get("stats")
                .and_then(Value::as_obj)
                .ok_or_else(|| invalid("load_spec response needs `stats`"))?;
            ResponseBody::Loaded {
                hash: get_str(o, "hash")?
                    .ok_or_else(|| invalid("load_spec response needs `hash`"))?,
                stats: stats_from(s)?,
            }
        }
        "refine" => ResponseBody::Refined {
            model: get_u64(o, "model")?.unwrap_or(0) as u8,
            behaviors: get_u64(o, "behaviors")?.unwrap_or(0) as usize,
            buses: get_u64(o, "buses")?.unwrap_or(0) as usize,
            printed_lines: get_u64(o, "printed_lines")?.unwrap_or(0) as usize,
        },
        "estimate" => ResponseBody::Estimated {
            report: get_str(o, "report")?.unwrap_or_default(),
        },
        "explore" => {
            let pts = o.get("points").and_then(Value::as_arr).unwrap_or(&[]);
            let points = pts
                .iter()
                .map(|p| {
                    let p = p
                        .as_obj()
                        .ok_or_else(|| invalid("points must be objects"))?;
                    Ok(PointSummary {
                        algorithm: get_str(p, "algorithm")?.unwrap_or_default(),
                        seed: get_u64(p, "seed")?.unwrap_or(0),
                        model: get_u64(p, "model")?.unwrap_or(0) as u8,
                        cost: p.get("cost").and_then(Value::as_f64).unwrap_or(0.0),
                        max_bus_rate: p.get("max_bus_rate").and_then(Value::as_f64).unwrap_or(0.0),
                        buses: get_u64(p, "buses")?.unwrap_or(0) as usize,
                        pareto: matches!(p.get("pareto"), Some(Value::Bool(true))),
                    })
                })
                .collect::<Result<Vec<_>, ModrefError>>()?;
            ResponseBody::Explored {
                points,
                pareto: get_u64(o, "pareto")?.unwrap_or(0) as usize,
                total: get_u64(o, "total")?.unwrap_or(0) as usize,
            }
        }
        "verify" => {
            let recs = o.get("records").and_then(Value::as_arr).unwrap_or(&[]);
            let records = recs
                .iter()
                .map(|r| {
                    let r = r
                        .as_obj()
                        .ok_or_else(|| invalid("records must be objects"))?;
                    Ok(RecordSummary {
                        algorithm: get_str(r, "algorithm")?.unwrap_or_default(),
                        seed: get_u64(r, "seed")?.unwrap_or(0),
                        model: get_u64(r, "model")?.unwrap_or(0) as u8,
                        equivalent: matches!(r.get("equivalent"), Some(Value::Bool(true))),
                        detail: get_str(r, "detail")?.unwrap_or_default(),
                        bus_traffic: get_u64(r, "bus_traffic")?.unwrap_or(0),
                    })
                })
                .collect::<Result<Vec<_>, ModrefError>>()?;
            ResponseBody::Verified {
                records,
                equivalent: matches!(o.get("equivalent"), Some(Value::Bool(true))),
                original_time: get_u64(o, "original_time")?.unwrap_or(0),
                original_steps: get_u64(o, "original_steps")?.unwrap_or(0),
            }
        }
        "lint" => {
            let ds = o.get("diagnostics").and_then(Value::as_arr).unwrap_or(&[]);
            let diagnostics = ds
                .iter()
                .map(|d| {
                    let d = d
                        .as_obj()
                        .ok_or_else(|| invalid("diagnostics must be objects"))?;
                    Ok(DiagSummary {
                        code: get_str(d, "code")?.unwrap_or_default(),
                        severity: get_str(d, "severity")?.unwrap_or_default(),
                        message: get_str(d, "message")?.unwrap_or_default(),
                        line: get_u64(d, "line")?.map(|n| n as u32),
                        col: get_u64(d, "col")?.map(|n| n as u32),
                    })
                })
                .collect::<Result<Vec<_>, ModrefError>>()?;
            ResponseBody::Linted {
                diagnostics,
                errors: get_u64(o, "errors")?.unwrap_or(0) as usize,
                warnings: get_u64(o, "warnings")?.unwrap_or(0) as usize,
                notes: get_u64(o, "notes")?.unwrap_or(0) as usize,
            }
        }
        "batch" => {
            let rs = o.get("results").and_then(Value::as_arr).unwrap_or(&[]);
            let results = rs
                .iter()
                .map(|r| {
                    let r = r
                        .as_obj()
                        .ok_or_else(|| invalid("batch results must be objects"))?;
                    Ok(SubResult {
                        sub: get_u64(r, "sub")?
                            .ok_or_else(|| invalid("batch results need a numeric `sub`"))?,
                        body: body_from(r)?,
                    })
                })
                .collect::<Result<Vec<_>, ModrefError>>()?;
            ResponseBody::Batch { results }
        }
        "cancel" => ResponseBody::Cancelled {
            target: get_u64(o, "target")?.unwrap_or(0),
            found: matches!(o.get("found"), Some(Value::Bool(true))),
        },
        other => return Err(invalid(format!("unknown response op `{other}`"))),
    };
    Ok(body)
}

fn stats_from(s: &BTreeMap<String, Value>) -> Result<SpecStats, ModrefError> {
    let field =
        |k: &str| -> Result<usize, ModrefError> { Ok(get_u64(s, k)?.unwrap_or(0) as usize) };
    Ok(SpecStats {
        name: get_str(s, "name")?.unwrap_or_default(),
        behaviors: field("behaviors")?,
        leaves: field("leaves")?,
        variables: field("variables")?,
        signals: field("signals")?,
        subroutines: field("subroutines")?,
        statements: field("statements")?,
        printed_lines: field("printed_lines")?,
        data_channels: field("data_channels")?,
        control_channels: field("control_channels")?,
    })
}

impl Response {
    /// Decodes one response line — the client half of the protocol,
    /// used by tests, the load-generator bench and scripted drivers.
    pub fn from_json(line: &str) -> Result<Self, ModrefError> {
        let v = json::parse(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let o = v
            .as_obj()
            .ok_or_else(|| invalid("response must be a JSON object"))?;
        let id = get_u64(o, "id")?.ok_or_else(|| invalid("missing numeric `id`"))?;
        Ok(Response {
            id,
            body: body_from(o)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let reqs = vec![
            Request::new(
                1,
                RequestOp::Parse {
                    source: SpecSource::Workload("fig2".into()),
                },
            )
            .with_deadline_ms(250),
            Request::new(
                2,
                RequestOp::Refine {
                    source: SpecSource::Text("spec s;\n".into()),
                    part: "component PROC processor\n".into(),
                    model: 3,
                },
            ),
            Request::new(
                3,
                RequestOp::Explore {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(4),
                    threads: Some(2),
                    top: Some(5),
                },
            ),
            Request::new(
                4,
                RequestOp::Lint {
                    source: SpecSource::Workload("dsp".into()),
                    part: None,
                    model: Some(1),
                    deny: vec!["warnings".into()],
                    allow: vec!["DF02".into()],
                },
            ),
            Request::new(5, RequestOp::Cancel { target: 3 }),
            Request::new(
                6,
                RequestOp::Verify {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(1),
                    threads: None,
                    sim: SimParams {
                        kernel: Some(modref_sim::SimKernel::Compiled),
                        verify_traces: Some(true),
                    },
                },
            ),
            Request::new(
                7,
                RequestOp::Verify {
                    source: SpecSource::Workload("fig2".into()),
                    part: None,
                    seeds: None,
                    threads: None,
                    sim: SimParams::default(),
                },
            ),
        ];
        for req in reqs {
            let line = req.to_json_line();
            assert!(!line.contains("\"v\""), "v1 lines carry no version: {line}");
            assert_eq!(Request::from_json(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn v2_requests_round_trip_through_json() {
        let reqs = vec![
            Request::v2(
                1,
                RequestOp::LoadSpec {
                    text: "spec s;\n".into(),
                },
            ),
            Request::v2(
                2,
                RequestOp::Parse {
                    source: SpecSource::Hash("00e1ab33cd9f2277".into()),
                },
            ),
            Request::v2(
                3,
                RequestOp::Verify {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(1),
                    threads: None,
                    sim: SimParams {
                        kernel: Some(modref_sim::SimKernel::Compiled),
                        verify_traces: Some(true),
                    },
                },
            ),
            Request::v2(
                4,
                RequestOp::Explore {
                    source: SpecSource::Workload("fig2".into()),
                    part: None,
                    seeds: Some(2),
                    threads: None,
                    top: Some(3),
                },
            )
            .with_stream(true),
            Request::v2(
                5,
                RequestOp::Batch {
                    source: SpecSource::Hash("00e1ab33cd9f2277".into()),
                    items: vec![
                        BatchItem {
                            sub: 1,
                            op: RequestOp::Parse {
                                source: SpecSource::Hash("00e1ab33cd9f2277".into()),
                            },
                        },
                        BatchItem {
                            sub: 2,
                            op: RequestOp::Lint {
                                source: SpecSource::Hash("00e1ab33cd9f2277".into()),
                                part: None,
                                model: None,
                                deny: vec![],
                                allow: vec![],
                            },
                        },
                    ],
                },
            )
            .with_deadline_ms(5_000),
        ];
        for req in reqs {
            let line = req.to_json_line();
            assert!(line.contains("\"v\":2"), "{line}");
            assert_eq!(Request::from_json(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn v2_sim_object_replaces_flat_fields() {
        // Nested sim decodes.
        let req = Request::from_json(
            r#"{"v":2,"id":1,"op":"verify","workload":"fig2","sim":{"kernel":"compiled","verify_traces":true}}"#,
        )
        .unwrap();
        match req.op {
            RequestOp::Verify { sim, .. } => {
                assert_eq!(sim.kernel, Some(modref_sim::SimKernel::Compiled));
                assert_eq!(sim.verify_traces, Some(true));
            }
            other => panic!("expected verify, got {other:?}"),
        }
        // Flat legacy fields are rejected under v2, with a pointer.
        let err = Request::from_json(
            r#"{"v":2,"id":1,"op":"verify","workload":"fig2","kernel":"compiled"}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("`sim` object"), "{err}");
        // ...but still work under v1.
        let req =
            Request::from_json(r#"{"id":1,"op":"verify","workload":"fig2","kernel":"compiled"}"#)
                .unwrap();
        assert!(matches!(
            req.op,
            RequestOp::Verify {
                sim: SimParams {
                    kernel: Some(modref_sim::SimKernel::Compiled),
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn unknown_versions_are_rejected_with_a_stable_message() {
        for line in [
            r#"{"v":3,"id":1,"op":"parse","workload":"fig2"}"#,
            r#"{"v":0,"id":1,"op":"parse","workload":"fig2"}"#,
        ] {
            let err = Request::from_json(line).unwrap_err();
            assert_eq!(err.code(), "invalid_request");
            assert!(
                err.to_string().contains("unsupported protocol version"),
                "{err}"
            );
            assert!(err.to_string().contains("(supported: 1, 2)"), "{err}");
        }
    }

    #[test]
    fn v1_ignores_v2_only_fields_and_rejects_v2_only_ops() {
        // `stream` is ignored by v1 (unknown fields are skipped).
        let req =
            Request::from_json(r#"{"id":1,"op":"parse","workload":"fig2","stream":true}"#).unwrap();
        assert!(!req.stream);
        // `hash` sources and the v2-only ops don't exist in v1.
        for line in [
            r#"{"id":1,"op":"parse","hash":"00e1ab33cd9f2277"}"#,
            r#"{"id":1,"op":"load_spec","spec":"spec s;\n"}"#,
            r#"{"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse"}]}"#,
        ] {
            let err = Request::from_json(line).unwrap_err();
            assert_eq!(err.code(), "invalid_request", "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_invalid_not_panics() {
        for line in [
            "",
            "not json",
            "[1,2]",
            r#"{"op":"parse","workload":"fig2"}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"op":"warp"}"#,
            r#"{"id":1,"op":"parse"}"#,
            r#"{"id":1,"op":"parse","spec":"x","workload":"y"}"#,
            r#"{"id":1,"op":"refine","workload":"fig2","part":"p","model":9}"#,
            r#"{"id":1,"op":"cancel"}"#,
            r#"{"id":"one","op":"parse","workload":"fig2"}"#,
            r#"{"id":1,"op":"verify","workload":"fig2","verify_traces":"yes"}"#,
            r#"{"id":1,"op":"verify","workload":"fig2","verify_traces":1}"#,
            r#"{"v":"two","id":1,"op":"parse","workload":"fig2"}"#,
            r#"{"v":2,"id":1,"op":"parse","spec":"x","hash":"y"}"#,
            r#"{"v":2,"id":1,"op":"load_spec"}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2"}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[]}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"op":"parse"}]}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"cancel"}]}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse","workload":"dsp"}]}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse","deadline_ms":5}]}"#,
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse"},{"sub":1,"op":"parse"}]}"#,
        ] {
            let err = Request::from_json(line).unwrap_err();
            assert_eq!(err.code(), "invalid_request", "{line}");
        }
    }

    #[test]
    fn batch_items_inherit_the_batch_source() {
        let req = Request::from_json(
            r#"{"v":2,"id":9,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse"},{"sub":2,"op":"refine","part":"p","model":2}]}"#,
        )
        .unwrap();
        let RequestOp::Batch { source, items } = &req.op else {
            panic!("expected batch, got {:?}", req.op);
        };
        assert_eq!(*source, SpecSource::Workload("fig2".into()));
        assert_eq!(items.len(), 2);
        for item in items {
            assert_eq!(item.op.source(), Some(source));
        }
    }

    #[test]
    fn response_encoding_is_canonical_and_decodable() {
        let resp = Response::ok(
            9,
            ResponseBody::Explored {
                points: vec![PointSummary {
                    algorithm: "anneal".into(),
                    seed: 7,
                    model: 2,
                    cost: 12.5,
                    max_bus_rate: 3.25,
                    buses: 2,
                    pareto: true,
                }],
                pareto: 1,
                total: 24,
            },
        );
        let line = resp.to_json_line();
        assert_eq!(Response::from_json(&line).unwrap(), resp);
        // Canonical: keys sorted within each object.
        assert!(line.starts_with(r#"{"id":9,"#), "{line}");

        let err = Response::err(3, &ModrefError::Timeout);
        let line = err.to_json_line();
        assert_eq!(
            line,
            r#"{"error":{"code":"timeout","message":"deadline exceeded"},"id":3,"ok":false}"#
        );
        assert_eq!(Response::from_json(&line).unwrap(), err);
    }

    #[test]
    fn batch_and_loaded_responses_round_trip() {
        let stats = SpecStats {
            name: "s".into(),
            behaviors: 2,
            leaves: 1,
            variables: 1,
            signals: 0,
            subroutines: 0,
            statements: 3,
            printed_lines: 5,
            data_channels: 1,
            control_channels: 1,
        };
        let loaded = Response::ok(
            1,
            ResponseBody::Loaded {
                hash: "00e1ab33cd9f2277".into(),
                stats: stats.clone(),
            },
        );
        let line = loaded.to_json_line();
        assert!(line.contains(r#""op":"load_spec""#), "{line}");
        assert_eq!(Response::from_json(&line).unwrap(), loaded);

        let batch = Response::ok(
            2,
            ResponseBody::Batch {
                results: vec![
                    SubResult {
                        sub: 1,
                        body: ResponseBody::Parsed(stats),
                    },
                    SubResult {
                        sub: 2,
                        body: ResponseBody::Error {
                            code: "partition".into(),
                            message: "bad part".into(),
                        },
                    },
                ],
            },
        );
        let line = batch.to_json_line();
        assert_eq!(Response::from_json(&line).unwrap(), batch);
        // Sub-results render like miniature responses, keyed by sub.
        assert!(
            line.contains(r#"{"ok":true,"op":"parse","stats":"#),
            "{line}"
        );
        assert!(
            line.contains(
                r#"{"error":{"code":"partition","message":"bad part"},"ok":false,"sub":2}"#
            ),
            "{line}"
        );
    }

    #[test]
    fn progress_frames_encode_and_decode() {
        let frame = ProgressFrame {
            id: 4,
            phase: "explore.job".into(),
            done: 3,
            total: 7,
        };
        let line = frame.to_json_line();
        assert_eq!(
            line,
            r#"{"done":3,"event":"progress","id":4,"phase":"explore.job","total":7}"#
        );
        assert_eq!(ProgressFrame::from_json(&line).unwrap(), frame);
        assert!(ProgressFrame::is_progress_line(&line));
        // Ordinary responses are not progress frames.
        let resp = Response::err(4, &ModrefError::Timeout).to_json_line();
        assert!(!ProgressFrame::is_progress_line(&resp));
    }
}
