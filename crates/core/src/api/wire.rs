//! The typed JSONL wire protocol of `modref serve`.
//!
//! Each request is one JSON object per line; each reply is one JSON
//! object per line tagged with the request's `id`. [`Request`] and
//! [`Response`] are the typed forms: [`Request::from_json`] decodes a
//! client line (malformed input becomes
//! [`ModrefError::InvalidRequest`], never a panic), and
//! [`Response::to_json_line`] encodes a reply canonically — object keys
//! sorted, floats in shortest round-trip form, no timestamps — so a
//! fixed request stream yields byte-identical responses across runs.
//!
//! ```
//! use modref_core::api::{Request, RequestOp, SpecSource};
//! let req = Request::from_json(
//!     r#"{"id":7,"op":"parse","workload":"fig2","deadline_ms":500}"#,
//! ).unwrap();
//! assert_eq!(req.id, 7);
//! assert_eq!(req.deadline_ms, Some(500));
//! assert!(matches!(
//!     req.op,
//!     RequestOp::Parse { source: SpecSource::Workload(_) }
//! ));
//! // Encoding is canonical and stable.
//! let line = req.to_json_line();
//! assert_eq!(Request::from_json(&line).unwrap(), req);
//! ```

use std::collections::BTreeMap;

use modref_analyze::{Diagnostic, Totals};
use modref_obs::json::{self, Value};

use crate::explore::{Exploration, Verification};
use crate::model::ImplModel;

use super::error::ModrefError;
use super::facade::SpecStats;

/// Where the specification of a request comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// Inline specification text (the `"spec"` field).
    Text(String),
    /// The name of a shipped workload (the `"workload"` field), resolved
    /// by the server's workload resolver.
    Workload(String),
}

/// The operation a request asks for, with its operation-specific
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestOp {
    /// Parse + validate a spec and report its size statistics.
    Parse {
        /// The specification to parse.
        source: SpecSource,
    },
    /// Refine the spec under a partition into one implementation model.
    Refine {
        /// The specification to refine.
        source: SpecSource,
        /// Partition text (allocation + assignment).
        part: String,
        /// Implementation model number, 1–4.
        model: u8,
    },
    /// Render the lifetime/channel-rate estimation report.
    Estimate {
        /// The specification to estimate.
        source: SpecSource,
        /// Partition text (allocation + assignment).
        part: String,
    },
    /// Run the multi-start design-space exploration.
    Explore {
        /// The specification to explore.
        source: SpecSource,
        /// Optional partition text supplying the allocation.
        part: Option<String>,
        /// Seed count (`None` keeps the default).
        seeds: Option<u64>,
        /// Worker threads for the exploration itself.
        threads: Option<usize>,
        /// Keep only the best N points in the response.
        top: Option<usize>,
    },
    /// Explore, then verify the Pareto front by simulation.
    Verify {
        /// The specification to explore and verify.
        source: SpecSource,
        /// Optional partition text supplying the allocation.
        part: Option<String>,
        /// Seed count for the exploration phase.
        seeds: Option<u64>,
        /// Worker threads.
        threads: Option<usize>,
        /// Simulation kernel for the verification runs (the `"kernel"`
        /// field, one of `event`, `roundrobin`, `compiled`); `None`
        /// keeps the default event-driven kernel. Omitted from the
        /// encoded form when absent, so existing request streams are
        /// unchanged.
        kernel: Option<modref_sim::SimKernel>,
        /// The optional `"verify_traces"` boolean: when `true`, both
        /// simulations record event traces and the stuttering-refinement
        /// trace check runs per candidate × model. Omitted when absent,
        /// keeping existing request streams valid.
        verify_traces: Option<bool>,
    },
    /// Run the static-analysis lints (plus conformance lints with a
    /// partition).
    Lint {
        /// The specification to lint.
        source: SpecSource,
        /// Optional partition text enabling the conformance lints.
        part: Option<String>,
        /// Restrict conformance linting to one model (1–4).
        model: Option<u8>,
        /// Lint codes/names (or `warnings`) promoted to errors.
        deny: Vec<String>,
        /// Lint codes/names suppressed.
        allow: Vec<String>,
    },
    /// Cooperatively cancel the in-flight request with id `target`.
    Cancel {
        /// The id of the request to stop.
        target: u64,
    },
}

impl RequestOp {
    /// The wire name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            RequestOp::Parse { .. } => "parse",
            RequestOp::Refine { .. } => "refine",
            RequestOp::Estimate { .. } => "estimate",
            RequestOp::Explore { .. } => "explore",
            RequestOp::Verify { .. } => "verify",
            RequestOp::Lint { .. } => "lint",
            RequestOp::Cancel { .. } => "cancel",
        }
    }
}

/// One decoded serve request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on the response.
    pub id: u64,
    /// Per-request deadline in milliseconds (overrides the server
    /// default).
    pub deadline_ms: Option<u64>,
    /// The operation and its parameters.
    pub op: RequestOp,
}

/// The payload of a reply.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResponseBody {
    /// `parse` succeeded.
    Parsed(SpecStats),
    /// `refine` succeeded.
    Refined {
        /// The implementation model refined under.
        model: u8,
        /// Behavior count of the refined specification.
        behaviors: usize,
        /// Buses the refinement plan allocated.
        buses: usize,
        /// Lines of the refined spec's canonical pretty-print.
        printed_lines: usize,
    },
    /// `estimate` succeeded.
    Estimated {
        /// The rendered estimation report.
        report: String,
    },
    /// `explore` succeeded.
    Explored {
        /// Evaluated design points (possibly truncated to the request's
        /// `top`).
        points: Vec<PointSummary>,
        /// Number of Pareto-optimal points over the *full* set.
        pareto: usize,
        /// Total points evaluated before truncation.
        total: usize,
    },
    /// `verify` succeeded.
    Verified {
        /// One record per front candidate × implementation model.
        records: Vec<RecordSummary>,
        /// Whether every record verified equivalent.
        equivalent: bool,
        /// Final simulated time of the original specification.
        original_time: u64,
        /// Micro-steps of the original simulation.
        original_steps: u64,
    },
    /// `lint` succeeded (diagnostics may still contain errors).
    Linted {
        /// The diagnostics, in canonical order.
        diagnostics: Vec<DiagSummary>,
        /// Error-severity count.
        errors: usize,
        /// Warning-severity count.
        warnings: usize,
        /// Note-severity count.
        notes: usize,
    },
    /// `cancel` was processed (an ack — the cancelled request itself
    /// still replies with a `cancelled` error).
    Cancelled {
        /// The id the cancel aimed at.
        target: u64,
        /// Whether that id was in flight when the cancel arrived.
        found: bool,
    },
    /// The request failed; `code` is the stable
    /// [`ModrefError::code`] class.
    Error {
        /// Stable failure class.
        code: String,
        /// Human-readable description.
        message: String,
    },
}

/// One design point of an `explore` response.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: String,
    /// The seed that drove it.
    pub seed: u64,
    /// The implementation model evaluated (1–4).
    pub model: u8,
    /// Weighted total partition cost.
    pub cost: f64,
    /// Peak bus transfer rate in Mbit/s.
    pub max_bus_rate: f64,
    /// Buses the refinement plan allocates.
    pub buses: usize,
    /// Whether the point is Pareto-optimal.
    pub pareto: bool,
}

/// One candidate×model record of a `verify` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSummary {
    /// The partitioning algorithm that produced the candidate.
    pub algorithm: String,
    /// The seed that drove it.
    pub seed: u64,
    /// The implementation model refined under (1–4).
    pub model: u8,
    /// Whether the refined spec simulated equivalently.
    pub equivalent: bool,
    /// Divergence description (empty when equivalent).
    pub detail: String,
    /// Signal writes introduced by the refinement's bus protocol.
    pub bus_traffic: u64,
}

/// One diagnostic of a `lint` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagSummary {
    /// Stable lint code (`ST01`, `DF02`, `RC01`, ...).
    pub code: String,
    /// Severity label: `note`, `warning` or `error`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the spec came from text.
    pub line: Option<u32>,
    /// 1-based source column.
    pub col: Option<u32>,
}

/// One reply, tagged with the id of the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this answers (0 for lines that carried no id).
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

impl Response {
    /// A success reply.
    pub fn ok(id: u64, body: ResponseBody) -> Self {
        Response { id, body }
    }

    /// A failure reply carrying the error's stable code.
    pub fn err(id: u64, e: &ModrefError) -> Self {
        Response {
            id,
            body: ResponseBody::Error {
                code: e.code().to_string(),
                message: e.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Conversions from pipeline results.

impl ResponseBody {
    /// Summarizes an exploration, keeping only the best `top` points
    /// (all when `None`).
    pub fn from_exploration(out: &Exploration, top: Option<usize>) -> Self {
        let total = out.points.len();
        let pareto = out.points.iter().filter(|p| p.pareto).count();
        let keep = top.unwrap_or(total).min(total);
        let points = out.points[..keep]
            .iter()
            .map(|p| PointSummary {
                algorithm: p.algorithm.to_string(),
                seed: p.seed,
                model: p.model.number(),
                cost: p.cost.total,
                max_bus_rate: p.max_bus_rate,
                buses: p.bus_count,
                pareto: p.pareto,
            })
            .collect();
        ResponseBody::Explored {
            points,
            pareto,
            total,
        }
    }

    /// Summarizes a verification.
    pub fn from_verification(v: &Verification) -> Self {
        ResponseBody::Verified {
            records: v
                .records
                .iter()
                .map(|r| RecordSummary {
                    algorithm: r.algorithm.to_string(),
                    seed: r.seed,
                    model: r.model.number(),
                    equivalent: r.equivalent,
                    detail: r.detail.clone(),
                    bus_traffic: r.bus_traffic,
                })
                .collect(),
            equivalent: v.all_equivalent(),
            original_time: v.original_time,
            original_steps: v.original_steps,
        }
    }

    /// Summarizes lint diagnostics (assumed already in canonical order).
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let totals = Totals::of(diags);
        ResponseBody::Linted {
            diagnostics: diags
                .iter()
                .map(|d| DiagSummary {
                    code: d.code.to_string(),
                    severity: d.severity.label().to_string(),
                    message: d.message.clone(),
                    line: d.span.map(|s| s.line),
                    col: d.span.map(|s| s.col),
                })
                .collect(),
            errors: totals.errors,
            warnings: totals.warnings,
            notes: totals.notes,
        }
    }
}

/// The implementation model for a wire model number.
pub(crate) fn model_from(n: u64) -> Result<ImplModel, ModrefError> {
    match n {
        1..=4 => Ok(ImplModel::ALL[(n - 1) as usize]),
        _ => Err(ModrefError::InvalidRequest(format!(
            "model must be 1..=4, got {n}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Encoding.

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(v: &Value) -> String {
    let mut out = String::new();
    json::write_value(&mut out, v);
    out
}

fn str_arr(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

impl Request {
    /// Encodes the request as one canonical JSON line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let mut m: Vec<(&str, Value)> = vec![
            ("id", Value::UInt(self.id)),
            ("op", Value::Str(self.op.name().to_string())),
        ];
        if let Some(d) = self.deadline_ms {
            m.push(("deadline_ms", Value::UInt(d)));
        }
        let push_source = |m: &mut Vec<(&str, Value)>, s: &SpecSource| match s {
            SpecSource::Text(t) => m.push(("spec", Value::Str(t.clone()))),
            SpecSource::Workload(w) => m.push(("workload", Value::Str(w.clone()))),
        };
        match &self.op {
            RequestOp::Parse { source } => push_source(&mut m, source),
            RequestOp::Refine {
                source,
                part,
                model,
            } => {
                push_source(&mut m, source);
                m.push(("part", Value::Str(part.clone())));
                m.push(("model", Value::UInt(u64::from(*model))));
            }
            RequestOp::Estimate { source, part } => {
                push_source(&mut m, source);
                m.push(("part", Value::Str(part.clone())));
            }
            RequestOp::Explore {
                source,
                part,
                seeds,
                threads,
                top,
            } => {
                push_source(&mut m, source);
                if let Some(p) = part {
                    m.push(("part", Value::Str(p.clone())));
                }
                if let Some(s) = seeds {
                    m.push(("seeds", Value::UInt(*s)));
                }
                if let Some(t) = threads {
                    m.push(("threads", Value::UInt(*t as u64)));
                }
                if let Some(t) = top {
                    m.push(("top", Value::UInt(*t as u64)));
                }
            }
            RequestOp::Verify {
                source,
                part,
                seeds,
                threads,
                kernel,
                verify_traces,
            } => {
                push_source(&mut m, source);
                if let Some(p) = part {
                    m.push(("part", Value::Str(p.clone())));
                }
                if let Some(s) = seeds {
                    m.push(("seeds", Value::UInt(*s)));
                }
                if let Some(t) = threads {
                    m.push(("threads", Value::UInt(*t as u64)));
                }
                if let Some(k) = kernel {
                    m.push(("kernel", Value::Str(k.name().to_string())));
                }
                if let Some(v) = verify_traces {
                    m.push(("verify_traces", Value::Bool(*v)));
                }
            }
            RequestOp::Lint {
                source,
                part,
                model,
                deny,
                allow,
            } => {
                push_source(&mut m, source);
                if let Some(p) = part {
                    m.push(("part", Value::Str(p.clone())));
                }
                if let Some(n) = model {
                    m.push(("model", Value::UInt(u64::from(*n))));
                }
                if !deny.is_empty() {
                    m.push(("deny", str_arr(deny)));
                }
                if !allow.is_empty() {
                    m.push(("allow", str_arr(allow)));
                }
            }
            RequestOp::Cancel { target } => m.push(("target", Value::UInt(*target))),
        }
        render(&obj(m))
    }
}

impl Response {
    /// Encodes the reply as one canonical JSON line (no trailing
    /// newline). Responses carry no timestamps, so a fixed request is
    /// answered byte-identically across runs.
    pub fn to_json_line(&self) -> String {
        let mut m: Vec<(&str, Value)> = vec![("id", Value::UInt(self.id))];
        match &self.body {
            ResponseBody::Error { code, message } => {
                m.push(("ok", Value::Bool(false)));
                m.push((
                    "error",
                    obj(vec![
                        ("code", Value::Str(code.clone())),
                        ("message", Value::Str(message.clone())),
                    ]),
                ));
            }
            body => {
                m.push(("ok", Value::Bool(true)));
                match body {
                    ResponseBody::Parsed(s) => {
                        m.push(("op", Value::Str("parse".into())));
                        m.push((
                            "stats",
                            obj(vec![
                                ("behaviors", Value::UInt(s.behaviors as u64)),
                                ("control_channels", Value::UInt(s.control_channels as u64)),
                                ("data_channels", Value::UInt(s.data_channels as u64)),
                                ("leaves", Value::UInt(s.leaves as u64)),
                                ("name", Value::Str(s.name.clone())),
                                ("printed_lines", Value::UInt(s.printed_lines as u64)),
                                ("signals", Value::UInt(s.signals as u64)),
                                ("statements", Value::UInt(s.statements as u64)),
                                ("subroutines", Value::UInt(s.subroutines as u64)),
                                ("variables", Value::UInt(s.variables as u64)),
                            ]),
                        ));
                    }
                    ResponseBody::Refined {
                        model,
                        behaviors,
                        buses,
                        printed_lines,
                    } => {
                        m.push(("op", Value::Str("refine".into())));
                        m.push(("model", Value::UInt(u64::from(*model))));
                        m.push(("behaviors", Value::UInt(*behaviors as u64)));
                        m.push(("buses", Value::UInt(*buses as u64)));
                        m.push(("printed_lines", Value::UInt(*printed_lines as u64)));
                    }
                    ResponseBody::Estimated { report } => {
                        m.push(("op", Value::Str("estimate".into())));
                        m.push(("report", Value::Str(report.clone())));
                    }
                    ResponseBody::Explored {
                        points,
                        pareto,
                        total,
                    } => {
                        m.push(("op", Value::Str("explore".into())));
                        m.push(("total", Value::UInt(*total as u64)));
                        m.push(("pareto", Value::UInt(*pareto as u64)));
                        m.push((
                            "points",
                            Value::Arr(
                                points
                                    .iter()
                                    .map(|p| {
                                        obj(vec![
                                            ("algorithm", Value::Str(p.algorithm.clone())),
                                            ("buses", Value::UInt(p.buses as u64)),
                                            ("cost", Value::Num(p.cost)),
                                            ("max_bus_rate", Value::Num(p.max_bus_rate)),
                                            ("model", Value::UInt(u64::from(p.model))),
                                            ("pareto", Value::Bool(p.pareto)),
                                            ("seed", Value::UInt(p.seed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                    ResponseBody::Verified {
                        records,
                        equivalent,
                        original_time,
                        original_steps,
                    } => {
                        m.push(("op", Value::Str("verify".into())));
                        m.push(("equivalent", Value::Bool(*equivalent)));
                        m.push(("original_time", Value::UInt(*original_time)));
                        m.push(("original_steps", Value::UInt(*original_steps)));
                        m.push((
                            "records",
                            Value::Arr(
                                records
                                    .iter()
                                    .map(|r| {
                                        obj(vec![
                                            ("algorithm", Value::Str(r.algorithm.clone())),
                                            ("bus_traffic", Value::UInt(r.bus_traffic)),
                                            ("detail", Value::Str(r.detail.clone())),
                                            ("equivalent", Value::Bool(r.equivalent)),
                                            ("model", Value::UInt(u64::from(r.model))),
                                            ("seed", Value::UInt(r.seed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                    ResponseBody::Linted {
                        diagnostics,
                        errors,
                        warnings,
                        notes,
                    } => {
                        m.push(("op", Value::Str("lint".into())));
                        m.push(("errors", Value::UInt(*errors as u64)));
                        m.push(("warnings", Value::UInt(*warnings as u64)));
                        m.push(("notes", Value::UInt(*notes as u64)));
                        m.push((
                            "diagnostics",
                            Value::Arr(
                                diagnostics
                                    .iter()
                                    .map(|d| {
                                        let mut e = vec![
                                            ("code", Value::Str(d.code.clone())),
                                            ("message", Value::Str(d.message.clone())),
                                            ("severity", Value::Str(d.severity.clone())),
                                        ];
                                        if let Some(line) = d.line {
                                            e.push(("line", Value::UInt(u64::from(line))));
                                        }
                                        if let Some(col) = d.col {
                                            e.push(("col", Value::UInt(u64::from(col))));
                                        }
                                        obj(e)
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                    ResponseBody::Cancelled { target, found } => {
                        m.push(("op", Value::Str("cancel".into())));
                        m.push(("target", Value::UInt(*target)));
                        m.push(("found", Value::Bool(*found)));
                    }
                    ResponseBody::Error { .. } => unreachable!("handled above"),
                }
            }
        }
        render(&obj(m))
    }
}

// ---------------------------------------------------------------------
// Decoding.

fn invalid(msg: impl Into<String>) -> ModrefError {
    ModrefError::InvalidRequest(msg.into())
}

fn get_u64(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_str(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<String>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("`{key}` must be a string"))),
    }
}

fn get_bool(o: &BTreeMap<String, Value>, key: &str) -> Result<Option<bool>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(invalid(format!("`{key}` must be a boolean"))),
    }
}

/// The optional `"kernel"` field, by wire name. An unknown kernel name
/// is an invalid request, not a silent fallback to the default.
fn get_kernel(o: &BTreeMap<String, Value>) -> Result<Option<modref_sim::SimKernel>, ModrefError> {
    match get_str(o, "kernel")? {
        None => Ok(None),
        Some(name) => modref_sim::SimKernel::from_name(&name)
            .map(Some)
            .ok_or_else(|| {
                invalid(format!(
                    "unknown kernel `{name}` (expected event|roundrobin|compiled)"
                ))
            }),
    }
}

fn get_str_list(o: &BTreeMap<String, Value>, key: &str) -> Result<Vec<String>, ModrefError> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(|s| s.to_string())
                        .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))
                })
                .collect()
        }
    }
}

fn get_model(o: &BTreeMap<String, Value>) -> Result<Option<u8>, ModrefError> {
    match get_u64(o, "model")? {
        None => Ok(None),
        Some(n) => Ok(Some(model_from(n)?.number())),
    }
}

fn source_of(o: &BTreeMap<String, Value>) -> Result<SpecSource, ModrefError> {
    let spec = get_str(o, "spec")?;
    let workload = get_str(o, "workload")?;
    match (spec, workload) {
        (Some(text), None) => Ok(SpecSource::Text(text)),
        (None, Some(name)) => Ok(SpecSource::Workload(name)),
        (Some(_), Some(_)) => Err(invalid("give either `spec` or `workload`, not both")),
        (None, None) => Err(invalid("missing `spec` text or `workload` name")),
    }
}

impl Request {
    /// Decodes one request line. Every malformation — bad JSON, a
    /// missing id, an unknown op, a wrongly typed field — is an
    /// [`ModrefError::InvalidRequest`], never a panic.
    pub fn from_json(line: &str) -> Result<Self, ModrefError> {
        let v = json::parse(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let o = v
            .as_obj()
            .ok_or_else(|| invalid("request must be a JSON object"))?;
        let id = get_u64(o, "id")?.ok_or_else(|| invalid("missing numeric `id`"))?;
        let op_name = get_str(o, "op")?.ok_or_else(|| invalid("missing `op`"))?;
        let deadline_ms = get_u64(o, "deadline_ms")?;
        let op = match op_name.as_str() {
            "parse" => RequestOp::Parse {
                source: source_of(o)?,
            },
            "refine" => RequestOp::Refine {
                source: source_of(o)?,
                part: get_str(o, "part")?.ok_or_else(|| invalid("refine needs `part` text"))?,
                model: get_model(o)?.ok_or_else(|| invalid("refine needs `model` 1..=4"))?,
            },
            "estimate" => RequestOp::Estimate {
                source: source_of(o)?,
                part: get_str(o, "part")?.ok_or_else(|| invalid("estimate needs `part` text"))?,
            },
            "explore" => RequestOp::Explore {
                source: source_of(o)?,
                part: get_str(o, "part")?,
                seeds: get_u64(o, "seeds")?,
                threads: get_u64(o, "threads")?.map(|t| t as usize),
                top: get_u64(o, "top")?.map(|t| t as usize),
            },
            "verify" => RequestOp::Verify {
                source: source_of(o)?,
                part: get_str(o, "part")?,
                seeds: get_u64(o, "seeds")?,
                threads: get_u64(o, "threads")?.map(|t| t as usize),
                kernel: get_kernel(o)?,
                verify_traces: get_bool(o, "verify_traces")?,
            },
            "lint" => RequestOp::Lint {
                source: source_of(o)?,
                part: get_str(o, "part")?,
                model: get_model(o)?,
                deny: get_str_list(o, "deny")?,
                allow: get_str_list(o, "allow")?,
            },
            "cancel" => RequestOp::Cancel {
                target: get_u64(o, "target")?
                    .ok_or_else(|| invalid("cancel needs a numeric `target`"))?,
            },
            other => return Err(invalid(format!("unknown op `{other}`"))),
        };
        Ok(Request {
            id,
            deadline_ms,
            op,
        })
    }
}

impl Response {
    /// Decodes one response line — the client half of the protocol,
    /// used by tests and scripted drivers.
    pub fn from_json(line: &str) -> Result<Self, ModrefError> {
        let v = json::parse(line).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let o = v
            .as_obj()
            .ok_or_else(|| invalid("response must be a JSON object"))?;
        let id = get_u64(o, "id")?.ok_or_else(|| invalid("missing numeric `id`"))?;
        let ok = match o.get("ok") {
            Some(Value::Bool(b)) => *b,
            _ => return Err(invalid("missing boolean `ok`")),
        };
        if !ok {
            let e = o
                .get("error")
                .and_then(Value::as_obj)
                .ok_or_else(|| invalid("failure response needs an `error` object"))?;
            return Ok(Response {
                id,
                body: ResponseBody::Error {
                    code: get_str(e, "code")?.unwrap_or_default(),
                    message: get_str(e, "message")?.unwrap_or_default(),
                },
            });
        }
        let op = get_str(o, "op")?.ok_or_else(|| invalid("missing `op`"))?;
        let body = match op.as_str() {
            "parse" => {
                let s = o
                    .get("stats")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| invalid("parse response needs `stats`"))?;
                let field = |k: &str| -> Result<usize, ModrefError> {
                    Ok(get_u64(s, k)?.unwrap_or(0) as usize)
                };
                ResponseBody::Parsed(SpecStats {
                    name: get_str(s, "name")?.unwrap_or_default(),
                    behaviors: field("behaviors")?,
                    leaves: field("leaves")?,
                    variables: field("variables")?,
                    signals: field("signals")?,
                    subroutines: field("subroutines")?,
                    statements: field("statements")?,
                    printed_lines: field("printed_lines")?,
                    data_channels: field("data_channels")?,
                    control_channels: field("control_channels")?,
                })
            }
            "refine" => ResponseBody::Refined {
                model: get_u64(o, "model")?.unwrap_or(0) as u8,
                behaviors: get_u64(o, "behaviors")?.unwrap_or(0) as usize,
                buses: get_u64(o, "buses")?.unwrap_or(0) as usize,
                printed_lines: get_u64(o, "printed_lines")?.unwrap_or(0) as usize,
            },
            "estimate" => ResponseBody::Estimated {
                report: get_str(o, "report")?.unwrap_or_default(),
            },
            "explore" => {
                let pts = o.get("points").and_then(Value::as_arr).unwrap_or(&[]);
                let points = pts
                    .iter()
                    .map(|p| {
                        let p = p
                            .as_obj()
                            .ok_or_else(|| invalid("points must be objects"))?;
                        Ok(PointSummary {
                            algorithm: get_str(p, "algorithm")?.unwrap_or_default(),
                            seed: get_u64(p, "seed")?.unwrap_or(0),
                            model: get_u64(p, "model")?.unwrap_or(0) as u8,
                            cost: p.get("cost").and_then(Value::as_f64).unwrap_or(0.0),
                            max_bus_rate: p
                                .get("max_bus_rate")
                                .and_then(Value::as_f64)
                                .unwrap_or(0.0),
                            buses: get_u64(p, "buses")?.unwrap_or(0) as usize,
                            pareto: matches!(p.get("pareto"), Some(Value::Bool(true))),
                        })
                    })
                    .collect::<Result<Vec<_>, ModrefError>>()?;
                ResponseBody::Explored {
                    points,
                    pareto: get_u64(o, "pareto")?.unwrap_or(0) as usize,
                    total: get_u64(o, "total")?.unwrap_or(0) as usize,
                }
            }
            "verify" => {
                let recs = o.get("records").and_then(Value::as_arr).unwrap_or(&[]);
                let records = recs
                    .iter()
                    .map(|r| {
                        let r = r
                            .as_obj()
                            .ok_or_else(|| invalid("records must be objects"))?;
                        Ok(RecordSummary {
                            algorithm: get_str(r, "algorithm")?.unwrap_or_default(),
                            seed: get_u64(r, "seed")?.unwrap_or(0),
                            model: get_u64(r, "model")?.unwrap_or(0) as u8,
                            equivalent: matches!(r.get("equivalent"), Some(Value::Bool(true))),
                            detail: get_str(r, "detail")?.unwrap_or_default(),
                            bus_traffic: get_u64(r, "bus_traffic")?.unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, ModrefError>>()?;
                ResponseBody::Verified {
                    records,
                    equivalent: matches!(o.get("equivalent"), Some(Value::Bool(true))),
                    original_time: get_u64(o, "original_time")?.unwrap_or(0),
                    original_steps: get_u64(o, "original_steps")?.unwrap_or(0),
                }
            }
            "lint" => {
                let ds = o.get("diagnostics").and_then(Value::as_arr).unwrap_or(&[]);
                let diagnostics = ds
                    .iter()
                    .map(|d| {
                        let d = d
                            .as_obj()
                            .ok_or_else(|| invalid("diagnostics must be objects"))?;
                        Ok(DiagSummary {
                            code: get_str(d, "code")?.unwrap_or_default(),
                            severity: get_str(d, "severity")?.unwrap_or_default(),
                            message: get_str(d, "message")?.unwrap_or_default(),
                            line: get_u64(d, "line")?.map(|n| n as u32),
                            col: get_u64(d, "col")?.map(|n| n as u32),
                        })
                    })
                    .collect::<Result<Vec<_>, ModrefError>>()?;
                ResponseBody::Linted {
                    diagnostics,
                    errors: get_u64(o, "errors")?.unwrap_or(0) as usize,
                    warnings: get_u64(o, "warnings")?.unwrap_or(0) as usize,
                    notes: get_u64(o, "notes")?.unwrap_or(0) as usize,
                }
            }
            "cancel" => ResponseBody::Cancelled {
                target: get_u64(o, "target")?.unwrap_or(0),
                found: matches!(o.get("found"), Some(Value::Bool(true))),
            },
            other => return Err(invalid(format!("unknown response op `{other}`"))),
        };
        Ok(Response { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let reqs = vec![
            Request {
                id: 1,
                deadline_ms: Some(250),
                op: RequestOp::Parse {
                    source: SpecSource::Workload("fig2".into()),
                },
            },
            Request {
                id: 2,
                deadline_ms: None,
                op: RequestOp::Refine {
                    source: SpecSource::Text("spec s;\n".into()),
                    part: "component PROC processor\n".into(),
                    model: 3,
                },
            },
            Request {
                id: 3,
                deadline_ms: None,
                op: RequestOp::Explore {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(4),
                    threads: Some(2),
                    top: Some(5),
                },
            },
            Request {
                id: 4,
                deadline_ms: None,
                op: RequestOp::Lint {
                    source: SpecSource::Workload("dsp".into()),
                    part: None,
                    model: Some(1),
                    deny: vec!["warnings".into()],
                    allow: vec!["DF02".into()],
                },
            },
            Request {
                id: 5,
                deadline_ms: None,
                op: RequestOp::Cancel { target: 3 },
            },
            Request {
                id: 6,
                deadline_ms: None,
                op: RequestOp::Verify {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(1),
                    threads: None,
                    kernel: Some(modref_sim::SimKernel::Compiled),
                    verify_traces: Some(true),
                },
            },
            Request {
                id: 7,
                deadline_ms: None,
                op: RequestOp::Verify {
                    source: SpecSource::Workload("fig2".into()),
                    part: None,
                    seeds: None,
                    threads: None,
                    kernel: None,
                    verify_traces: None,
                },
            },
        ];
        for req in reqs {
            let line = req.to_json_line();
            assert_eq!(Request::from_json(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_invalid_not_panics() {
        for line in [
            "",
            "not json",
            "[1,2]",
            r#"{"op":"parse","workload":"fig2"}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"op":"warp"}"#,
            r#"{"id":1,"op":"parse"}"#,
            r#"{"id":1,"op":"parse","spec":"x","workload":"y"}"#,
            r#"{"id":1,"op":"refine","workload":"fig2","part":"p","model":9}"#,
            r#"{"id":1,"op":"cancel"}"#,
            r#"{"id":"one","op":"parse","workload":"fig2"}"#,
            r#"{"id":1,"op":"verify","workload":"fig2","verify_traces":"yes"}"#,
            r#"{"id":1,"op":"verify","workload":"fig2","verify_traces":1}"#,
        ] {
            let err = Request::from_json(line).unwrap_err();
            assert_eq!(err.code(), "invalid_request", "{line}");
        }
    }

    #[test]
    fn response_encoding_is_canonical_and_decodable() {
        let resp = Response::ok(
            9,
            ResponseBody::Explored {
                points: vec![PointSummary {
                    algorithm: "anneal".into(),
                    seed: 7,
                    model: 2,
                    cost: 12.5,
                    max_bus_rate: 3.25,
                    buses: 2,
                    pareto: true,
                }],
                pareto: 1,
                total: 24,
            },
        );
        let line = resp.to_json_line();
        assert_eq!(Response::from_json(&line).unwrap(), resp);
        // Canonical: keys sorted within each object.
        assert!(line.starts_with(r#"{"id":9,"#), "{line}");

        let err = Response::err(3, &ModrefError::Timeout);
        let line = err.to_json_line();
        assert_eq!(
            line,
            r#"{"error":{"code":"timeout","message":"deadline exceeded"},"id":3,"ok":false}"#
        );
        assert_eq!(Response::from_json(&line).unwrap(), err);
    }
}
