//! The [`Codesign`] session facade: load a specification once, run any
//! number of codesign operations against it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use modref_analyze::{analyze_spec, sort_canonical, Diagnostic, LintConfig};
use modref_graph::AccessGraph;
use modref_partition::explore::ExploreConfig;
use modref_partition::{parse_partition, Allocation, CostConfig, Partition};
use modref_sim::{SimConfig, SimKernel, SimResult, Simulator};
use modref_spec::{printer, SourceMap, Spec};

use modref_estimate::BusRateTable;

use crate::explore::{explore_designs_impl, verify_pareto_impl, Exploration, Verification};
use crate::model::ImplModel;
use crate::rates::figure9_rates;
use crate::refine::{refine, Refined};

use super::error::ModrefError;

/// Why a cooperative operation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// [`CancelToken::cancel`] was called (a `cancel` request).
    Cancelled,
    /// [`CancelToken::expire`] was called (the deadline reaper fired).
    Expired,
}

impl From<Stop> for ModrefError {
    fn from(stop: Stop) -> Self {
        match stop {
            Stop::Cancelled => ModrefError::Cancelled,
            Stop::Expired => ModrefError::Timeout,
        }
    }
}

/// A shared cooperative stop flag for long-running operations.
///
/// Clone the token, hand one clone to the operation (via
/// [`ExploreOpts::cancel`] / [`VerifyOpts::cancel`]) and keep the other;
/// [`cancel`](CancelToken::cancel) or [`expire`](CancelToken::expire)
/// from any thread makes the operation return
/// [`ModrefError::Cancelled`] / [`ModrefError::Timeout`] at its next
/// checkpoint (between exploration seeds or verification jobs). The
/// first stop reason wins and is sticky.
///
/// ```
/// use modref_core::api::{CancelToken, Stop};
/// let t = CancelToken::new();
/// assert_eq!(t.stopped(), None);
/// t.cancel();
/// t.expire(); // too late — the first reason sticks
/// assert_eq!(t.stopped(), Some(Stop::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

const RUNNING: u8 = 0;
const CANCELLED: u8 = 1;
const EXPIRED: u8 = 2;

impl CancelToken {
    /// A fresh, un-stopped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation. No-op if already stopped.
    pub fn cancel(&self) {
        let _ =
            self.state
                .compare_exchange(RUNNING, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Marks the deadline as exceeded. No-op if already stopped.
    pub fn expire(&self) {
        let _ = self
            .state
            .compare_exchange(RUNNING, EXPIRED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The stop reason, if any. One relaxed atomic load.
    pub fn stopped(&self) -> Option<Stop> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(Stop::Cancelled),
            EXPIRED => Some(Stop::Expired),
            _ => None,
        }
    }

    /// The stop reason as an error, for `?`-style checkpoints.
    pub fn check(&self) -> Result<(), ModrefError> {
        match self.stopped() {
            Some(stop) => Err(stop.into()),
            None => Ok(()),
        }
    }
}

/// One progress event from a long-running operation, delivered through
/// a [`ProgressFn`] callback.
///
/// Phases currently emitted: `explore.job` (one per partition-search
/// job), `explore.candidates` (once, after ranking — `done == total ==`
/// candidate count), `explore.rate` (one per candidate × model rate
/// evaluation) and `verify.job` (one per candidate × model simulation
/// pair).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Progress {
    /// The work phase the event belongs to.
    pub phase: &'static str,
    /// Units completed so far within the phase.
    pub done: u64,
    /// Total units the phase will run.
    pub total: u64,
}

/// A shared progress callback for long-running operations.
///
/// Attach one via [`ExploreOpts::with_progress`] /
/// [`VerifyOpts::with_progress`]; the operation invokes it after each
/// unit of work (see [`Progress`] for the phases). The callback may be
/// called concurrently from several worker threads, so it must be
/// cheap and internally synchronized — `modref serve` uses it to stream
/// `{"event":"progress",...}` frames to the client while an explore is
/// still running.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use modref_core::api::{Codesign, ExploreOpts, ProgressFn};
/// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
/// let seen = Arc::new(AtomicU64::new(0));
/// let counted = seen.clone();
/// let opts = ExploreOpts::new()
///     .with_seeds(1)
///     .with_anneal_iterations(40)
///     .with_migration_passes(2)
///     .with_progress(ProgressFn::new(move |_| {
///         counted.fetch_add(1, Ordering::Relaxed);
///     }));
/// cd.explore(&opts)?;
/// assert!(seen.load(Ordering::Relaxed) > 0);
/// # Ok::<(), modref_core::api::ModrefError>(())
/// ```
#[derive(Clone)]
pub struct ProgressFn(Arc<dyn Fn(&Progress) + Send + Sync>);

impl ProgressFn {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Delivers one event to the callback.
    pub fn emit(&self, p: &Progress) {
        (self.0)(p);
    }
}

impl std::fmt::Debug for ProgressFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressFn(..)")
    }
}

/// Basic size statistics of a loaded specification, as reported by the
/// `parse` serve operation and `modref check`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SpecStats {
    /// The specification's name.
    pub name: String,
    /// Total behaviors.
    pub behaviors: usize,
    /// Leaf behaviors.
    pub leaves: usize,
    /// Declared variables.
    pub variables: usize,
    /// Declared signals.
    pub signals: usize,
    /// Declared subroutines.
    pub subroutines: usize,
    /// Statements across all leaf bodies.
    pub statements: usize,
    /// Lines of the canonical pretty-print.
    pub printed_lines: usize,
    /// Derived data channels.
    pub data_channels: usize,
    /// Derived control channels.
    pub control_channels: usize,
}

/// Options for [`Codesign::explore`]. `#[non_exhaustive]` — construct
/// with [`ExploreOpts::new`] and the builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExploreOpts {
    /// Partition text supplying the allocation (components); `None`
    /// falls back to the default PROC+ASIC allocation.
    pub part: Option<String>,
    /// Number of random starting seeds (K).
    pub seeds: u64,
    /// Worker threads; `None` resolves like
    /// [`modref_partition::thread_count`].
    pub threads: Option<usize>,
    /// Iteration budget per annealing run.
    pub anneal_iterations: u32,
    /// Sweep budget per migration run.
    pub migration_passes: u32,
    /// Cooperative stop token, checked between jobs.
    pub cancel: Option<CancelToken>,
    /// Progress callback, invoked per finished job (see [`Progress`]).
    pub progress: Option<ProgressFn>,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        let d = ExploreConfig::default();
        Self {
            part: None,
            seeds: d.seeds,
            threads: d.threads,
            anneal_iterations: d.anneal_iterations,
            migration_passes: d.migration_passes,
            cancel: None,
            progress: None,
        }
    }
}

impl ExploreOpts {
    /// Default options: 4 seeds, automatic thread count, no partition
    /// file, no cancellation.
    ///
    /// ```
    /// use modref_core::api::ExploreOpts;
    /// let opts = ExploreOpts::new().with_seeds(2).with_threads(1);
    /// assert_eq!((opts.seeds, opts.threads), (2, Some(1)));
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the partition text supplying the allocation.
    #[must_use]
    pub fn with_part(mut self, text: impl Into<String>) -> Self {
        self.part = Some(text.into());
        self
    }

    /// Sets the seed count.
    #[must_use]
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the annealing iteration budget.
    #[must_use]
    pub fn with_anneal_iterations(mut self, iterations: u32) -> Self {
        self.anneal_iterations = iterations;
        self
    }

    /// Sets the migration sweep budget.
    #[must_use]
    pub fn with_migration_passes(mut self, passes: u32) -> Self {
        self.migration_passes = passes;
        self
    }

    /// Attaches a cooperative stop token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a progress callback (see [`ProgressFn`]).
    #[must_use]
    pub fn with_progress(mut self, f: ProgressFn) -> Self {
        self.progress = Some(f);
        self
    }

    /// Sets the partition text supplying the allocation.
    #[deprecated(since = "0.2.0", note = "renamed to `with_part`")]
    #[must_use]
    pub fn part(self, text: impl Into<String>) -> Self {
        self.with_part(text)
    }

    /// Sets the seed count.
    #[deprecated(since = "0.2.0", note = "renamed to `with_seeds`")]
    #[must_use]
    pub fn seeds(self, seeds: u64) -> Self {
        self.with_seeds(seeds)
    }

    /// Sets the worker-thread count.
    #[deprecated(since = "0.2.0", note = "renamed to `with_threads`")]
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.with_threads(threads)
    }

    /// Sets the annealing iteration budget.
    #[deprecated(since = "0.2.0", note = "renamed to `with_anneal_iterations`")]
    #[must_use]
    pub fn anneal_iterations(self, iterations: u32) -> Self {
        self.with_anneal_iterations(iterations)
    }

    /// Sets the migration sweep budget.
    #[deprecated(since = "0.2.0", note = "renamed to `with_migration_passes`")]
    #[must_use]
    pub fn migration_passes(self, passes: u32) -> Self {
        self.with_migration_passes(passes)
    }

    /// Attaches a cooperative stop token.
    #[deprecated(since = "0.2.0", note = "renamed to `with_cancel`")]
    #[must_use]
    pub fn cancel(self, token: CancelToken) -> Self {
        self.with_cancel(token)
    }
}

/// Options for [`Codesign::verify`]. `#[non_exhaustive]` — construct
/// with [`VerifyOpts::new`] and the builder methods.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct VerifyOpts {
    /// Partition text supplying the allocation; `None` falls back to the
    /// default PROC+ASIC allocation.
    pub part: Option<String>,
    /// Worker threads; `None` resolves like
    /// [`modref_partition::thread_count`].
    pub threads: Option<usize>,
    /// Cooperative stop token, checked between verification jobs.
    pub cancel: Option<CancelToken>,
    /// Scheduler kernel used for both the original and the refined
    /// simulations. Verdicts are kernel-independent (the kernels produce
    /// identical observable results), so this only changes how fast the
    /// verification runs.
    pub kernel: SimKernel,
    /// Additionally record event traces for both simulations and require
    /// every refined run to be a [stuttering
    /// refinement](crate::trace_check) of the original — the
    /// `modref explore --verify-traces` check. Off by default (tracing
    /// costs time and memory proportional to the write count).
    pub check_traces: bool,
    /// Progress callback, invoked per finished candidate × model job
    /// (see [`Progress`]).
    pub progress: Option<ProgressFn>,
}

impl VerifyOpts {
    /// Default options: default allocation, automatic thread count,
    /// event-driven kernel.
    ///
    /// ```
    /// use modref_core::api::VerifyOpts;
    /// use modref_sim::SimKernel;
    /// let opts = VerifyOpts::new().with_kernel(SimKernel::Compiled);
    /// assert_eq!(opts.kernel, SimKernel::Compiled);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks the scheduler kernel for the verification simulations.
    #[must_use]
    pub fn with_kernel(mut self, kernel: SimKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables the stuttering-refinement trace check.
    #[must_use]
    pub fn with_check_traces(mut self, on: bool) -> Self {
        self.check_traces = on;
        self
    }

    /// Sets the partition text supplying the allocation.
    #[must_use]
    pub fn with_part(mut self, text: impl Into<String>) -> Self {
        self.part = Some(text.into());
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a cooperative stop token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a progress callback (see [`ProgressFn`]).
    #[must_use]
    pub fn with_progress(mut self, f: ProgressFn) -> Self {
        self.progress = Some(f);
        self
    }

    /// Picks the scheduler kernel for the verification simulations.
    #[deprecated(since = "0.2.0", note = "renamed to `with_kernel`")]
    #[must_use]
    pub fn kernel(self, kernel: SimKernel) -> Self {
        self.with_kernel(kernel)
    }

    /// Enables the stuttering-refinement trace check.
    #[deprecated(since = "0.2.0", note = "renamed to `with_check_traces`")]
    #[must_use]
    pub fn check_traces(self, on: bool) -> Self {
        self.with_check_traces(on)
    }

    /// Sets the partition text supplying the allocation.
    #[deprecated(since = "0.2.0", note = "renamed to `with_part`")]
    #[must_use]
    pub fn part(self, text: impl Into<String>) -> Self {
        self.with_part(text)
    }

    /// Sets the worker-thread count.
    #[deprecated(since = "0.2.0", note = "renamed to `with_threads`")]
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.with_threads(threads)
    }

    /// Attaches a cooperative stop token.
    #[deprecated(since = "0.2.0", note = "renamed to `with_cancel`")]
    #[must_use]
    pub fn cancel(self, token: CancelToken) -> Self {
        self.with_cancel(token)
    }
}

/// Options for [`Codesign::lint`]. `#[non_exhaustive]` — construct with
/// [`LintOpts::new`] and the builder methods.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct LintOpts {
    /// Partition text; when present the refinement-conformance lints
    /// (RC01–RC04) run over the refined output.
    pub part: Option<String>,
    /// Restricts conformance linting to one implementation model;
    /// `None` refines under all four.
    pub model: Option<ImplModel>,
    /// Lint codes/names (or `warnings`) to promote to errors.
    pub deny: Vec<String>,
    /// Lint codes/names to suppress.
    pub allow: Vec<String>,
}

impl LintOpts {
    /// Default options: spec-level lints only, default severities.
    ///
    /// ```
    /// use modref_core::api::LintOpts;
    /// let opts = LintOpts::new().with_deny("warnings").with_allow("DF02");
    /// assert_eq!((opts.deny.len(), opts.allow.len()), (1, 1));
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Supplies partition text, enabling the conformance lints.
    #[must_use]
    pub fn with_part(mut self, text: impl Into<String>) -> Self {
        self.part = Some(text.into());
        self
    }

    /// Restricts conformance linting to one model.
    #[must_use]
    pub fn with_model(mut self, model: ImplModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Promotes a lint (or `warnings`) to error severity.
    #[must_use]
    pub fn with_deny(mut self, code_or_name: impl Into<String>) -> Self {
        self.deny.push(code_or_name.into());
        self
    }

    /// Suppresses a lint.
    #[must_use]
    pub fn with_allow(mut self, code_or_name: impl Into<String>) -> Self {
        self.allow.push(code_or_name.into());
        self
    }

    /// Supplies partition text, enabling the conformance lints.
    #[deprecated(since = "0.2.0", note = "renamed to `with_part`")]
    #[must_use]
    pub fn part(self, text: impl Into<String>) -> Self {
        self.with_part(text)
    }

    /// Restricts conformance linting to one model.
    #[deprecated(since = "0.2.0", note = "renamed to `with_model`")]
    #[must_use]
    pub fn model(self, model: ImplModel) -> Self {
        self.with_model(model)
    }

    /// Promotes a lint (or `warnings`) to error severity.
    #[deprecated(since = "0.2.0", note = "renamed to `with_deny`")]
    #[must_use]
    pub fn deny(self, code_or_name: impl Into<String>) -> Self {
        self.with_deny(code_or_name)
    }

    /// Suppresses a lint.
    #[deprecated(since = "0.2.0", note = "renamed to `with_allow`")]
    #[must_use]
    pub fn allow(self, code_or_name: impl Into<String>) -> Self {
        self.with_allow(code_or_name)
    }
}

/// Options for [`Codesign::simulate`]. `#[non_exhaustive]` — construct
/// with [`SimOpts::new`] and the builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimOpts {
    /// Micro-step budget; `None` keeps the simulator default.
    pub max_steps: Option<u64>,
    /// Scheduler kernel.
    pub kernel: SimKernel,
    /// Record a full event trace onto
    /// [`SimResult::trace`](modref_sim::SimResult) — the input to
    /// [`modref_sim::vcd::export`] and the JSONL trace dump.
    pub trace: bool,
}

impl Default for SimOpts {
    fn default() -> Self {
        Self {
            max_steps: None,
            kernel: SimKernel::EventDriven,
            trace: false,
        }
    }
}

impl SimOpts {
    /// Default options: event-driven kernel, default step budget.
    ///
    /// ```
    /// use modref_core::api::SimOpts;
    /// let opts = SimOpts::new().with_max_steps(10_000).with_trace(true);
    /// assert_eq!((opts.max_steps, opts.trace), (Some(10_000), true));
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the micro-step budget.
    #[must_use]
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Picks the scheduler kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: SimKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Enables event-trace recording.
    #[must_use]
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Sets the micro-step budget.
    #[deprecated(since = "0.2.0", note = "renamed to `with_max_steps`")]
    #[must_use]
    pub fn max_steps(self, steps: u64) -> Self {
        self.with_max_steps(steps)
    }

    /// Picks the scheduler kernel.
    #[deprecated(since = "0.2.0", note = "renamed to `with_kernel`")]
    #[must_use]
    pub fn kernel(self, kernel: SimKernel) -> Self {
        self.with_kernel(kernel)
    }

    /// Enables event-trace recording.
    #[deprecated(since = "0.2.0", note = "renamed to `with_trace`")]
    #[must_use]
    pub fn trace(self, on: bool) -> Self {
        self.with_trace(on)
    }
}

/// A codesign session: one parsed specification plus its lazily derived
/// access graph, against which every pipeline operation runs.
///
/// This facade is the single typed entry point the CLI, the
/// `modref serve` server and library consumers share — spec loading and
/// graph derivation happen once per session instead of once per call
/// site, and every operation fails with a structured [`ModrefError`].
///
/// ```
/// use modref_core::api::Codesign;
/// let src = "spec tiny;\nvar x : int<16> = 0;\n\
///            behavior L leaf { x := x + 5; }\n\
///            behavior T seq { children { L; } }\ntop T;\n";
/// let cd = Codesign::parse("tiny.spec", src)?;
/// assert_eq!(cd.stats().behaviors, 2);
/// # Ok::<(), modref_core::api::ModrefError>(())
/// ```
#[derive(Debug)]
pub struct Codesign {
    name: String,
    spec: Spec,
    map: SourceMap,
    graph: OnceLock<AccessGraph>,
}

impl Codesign {
    /// Parses and validates specification text, keeping the source map
    /// for positioned diagnostics. Rejects both syntax errors
    /// ([`ModrefError::Parse`]) and structural violations
    /// ([`ModrefError::Spec`]).
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let err = Codesign::parse("bad.spec", "spec x;\ntop missing;\n").unwrap_err();
    /// assert_eq!(err.code(), "parse");
    /// ```
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, ModrefError> {
        let cd = Self::parse_lenient(name, text)?;
        modref_spec::validate::check(&cd.spec)?;
        Ok(cd)
    }

    /// Parses specification text but skips structural validation, so
    /// [`check`](Self::check) and [`lint`](Self::lint) can report *every*
    /// violation with positions instead of stopping at the first.
    ///
    /// Operations that need a well-formed hierarchy (refine, explore,
    /// simulate, [`stats`](Self::stats)) must not be called on a lenient
    /// session that failed [`check`](Self::check).
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// // Missing top behavior parses leniently but fails `check`.
    /// let src = "spec s;\nvar v : int<8> = 0;\nvar v2 : int<8> = 0;\n\
    ///            behavior L leaf { v := v2; }\n\
    ///            behavior T seq { children { L; } }\ntop T;\n";
    /// let cd = Codesign::parse_lenient("s.spec", src)?;
    /// assert!(cd.check().is_empty());
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn parse_lenient(name: impl Into<String>, text: &str) -> Result<Self, ModrefError> {
        let (spec, map) = modref_spec::parser::parse_with_spans(text)?;
        Ok(Self {
            name: name.into(),
            spec,
            map,
            graph: OnceLock::new(),
        })
    }

    /// Wraps an already built (and therefore valid) specification, e.g.
    /// one of the shipped workloads.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// assert_eq!(cd.name(), cd.spec().name());
    /// ```
    pub fn from_spec(spec: Spec) -> Self {
        Self {
            name: spec.name().to_string(),
            spec,
            map: SourceMap::new(),
            graph: OnceLock::new(),
        }
    }

    /// Reads, parses and validates a specification file.
    ///
    /// ```no_run
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::load("designs/medical.spec")?;
    /// println!("{} behaviors", cd.stats().behaviors);
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn load(path: &str) -> Result<Self, ModrefError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ModrefError::Io(format!("reading {path}: {e}")))?;
        Self::parse(path, &text)
    }

    /// Like [`load`](Self::load) but using
    /// [`parse_lenient`](Self::parse_lenient).
    ///
    /// ```no_run
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::load_lenient("designs/medical.spec")?;
    /// for d in cd.check() {
    ///     eprintln!("{}", d.render_human(cd.name()));
    /// }
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn load_lenient(path: &str) -> Result<Self, ModrefError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ModrefError::Io(format!("reading {path}: {e}")))?;
        Self::parse_lenient(path, &text)
    }

    /// The session's display name (usually the file path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loaded specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The source map (empty for built specs).
    pub fn source_map(&self) -> &SourceMap {
        &self.map
    }

    /// The derived access graph, computed on first use and shared by
    /// every subsequent operation.
    pub fn graph(&self) -> &AccessGraph {
        self.graph.get_or_init(|| AccessGraph::derive(&self.spec))
    }

    /// Size statistics of the specification, including derived channel
    /// counts. Requires a validated spec (see
    /// [`parse_lenient`](Self::parse_lenient)).
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let stats = cd.stats();
    /// assert!(stats.leaves <= stats.behaviors);
    /// assert!(stats.data_channels > 0);
    /// ```
    pub fn stats(&self) -> SpecStats {
        let graph = self.graph();
        SpecStats {
            name: self.spec.name().to_string(),
            behaviors: self.spec.behavior_count(),
            leaves: self.spec.leaves().len(),
            variables: self.spec.variable_count(),
            signals: self.spec.signal_count(),
            subroutines: self.spec.subroutine_count(),
            statements: self.spec.total_statements(),
            printed_lines: printer::line_count(&self.spec),
            data_channels: graph.data_channel_count(),
            control_channels: graph.control_channels().count(),
        }
    }

    /// The canonical pretty-print of the specification.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// assert!(cd.pretty().starts_with("spec "));
    /// ```
    pub fn pretty(&self) -> String {
        printer::print(&self.spec)
    }

    /// Runs the structural well-formedness lints (`ST01`–`ST06`),
    /// returning every violation with source positions. Empty means the
    /// spec is valid.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// // A scalar indexed like an array: parses, fails `check`.
    /// let src = "spec s;\nvar x : int<16> = 0;\n\
    ///            behavior L leaf { x[0] := 1; }\n\
    ///            behavior T seq { children { L; } }\ntop T;\n";
    /// let cd = Codesign::parse_lenient("s.spec", src)?;
    /// let diags = cd.check();
    /// assert!(diags.iter().any(|d| d.code.starts_with("ST")), "{diags:?}");
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut diags = modref_analyze::structural::structural_lints(&self.spec, &self.map);
        sort_canonical(&mut diags);
        diags
    }

    /// Runs the full static-analysis suite (structural, dataflow,
    /// concurrency), plus the refinement-conformance lints when
    /// [`LintOpts::part`] is set, applying the deny/allow configuration.
    ///
    /// ```
    /// use modref_core::api::{Codesign, LintOpts};
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let diags = cd.lint(&LintOpts::new())?;
    /// assert!(diags.iter().all(|d| d.severity < modref_analyze::Severity::Error));
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn lint(&self, opts: &LintOpts) -> Result<Vec<Diagnostic>, ModrefError> {
        let mut config = LintConfig::new();
        for name in &opts.deny {
            config.deny(name).map_err(ModrefError::InvalidRequest)?;
        }
        for name in &opts.allow {
            config.allow(name).map_err(ModrefError::InvalidRequest)?;
        }
        let mut diags = analyze_spec(&self.spec, &self.map);
        if let Some(part_text) = &opts.part {
            let (alloc, partition) = self.partition(part_text)?;
            let models: Vec<ImplModel> = match opts.model {
                Some(m) => vec![m],
                None => ImplModel::ALL.to_vec(),
            };
            for model in models {
                let refined = refine(&self.spec, self.graph(), &alloc, &partition, model)?;
                diags.extend(crate::lint::lint_refined_impl(
                    &self.spec,
                    self.graph(),
                    &refined,
                ));
            }
            sort_canonical(&mut diags);
        }
        Ok(config.apply_all(diags))
    }

    /// Parses partition text against this spec, yielding the allocation
    /// (components) and the behavior/variable assignment.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let text = modref_workloads::named_partition("fig2").unwrap();
    /// let (alloc, part) = cd.partition(&text)?;
    /// assert!(part.is_complete(cd.spec(), &alloc));
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn partition(&self, text: &str) -> Result<(Allocation, Partition), ModrefError> {
        Ok(parse_partition(&self.spec, text)?)
    }

    /// Refines the specification under a partition into one of the four
    /// implementation models.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// use modref_core::ImplModel;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let part = modref_workloads::named_partition("fig2").unwrap();
    /// let refined = cd.refine(&part, ImplModel::Model1)?;
    /// assert!(refined.spec.behavior_count() > cd.spec().behavior_count());
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn refine(&self, part_text: &str, model: ImplModel) -> Result<Refined, ModrefError> {
        let (alloc, partition) = self.partition(part_text)?;
        Ok(refine(&self.spec, self.graph(), &alloc, &partition, model)?)
    }

    /// Runs the refinement-conformance lints (`RC01`–`RC04`, plus the
    /// deadlock family over the refined behaviors) on a refined
    /// candidate produced by [`Codesign::refine`]. Prefer
    /// [`Codesign::lint`] with [`LintOpts::with_part`] when starting
    /// from partition text; this entry point is for callers that
    /// already hold a [`Refined`].
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// use modref_core::ImplModel;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let part = modref_workloads::named_partition("fig2").unwrap();
    /// let refined = cd.refine(&part, ImplModel::Model1)?;
    /// let diags = cd.lint_refined(&refined);
    /// assert!(modref_core::static_reject(&diags).is_none(), "{diags:?}");
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn lint_refined(&self, refined: &Refined) -> Vec<Diagnostic> {
        crate::lint::lint_refined_impl(&self.spec, self.graph(), refined)
    }

    /// Renders the lifetime/channel-rate estimation report for the
    /// specification under a partition.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let part = modref_workloads::named_partition("fig2").unwrap();
    /// let report = cd.estimate(&part)?;
    /// assert!(report.contains("behavior lifetimes"));
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn estimate(&self, part_text: &str) -> Result<String, ModrefError> {
        let (alloc, partition) = self.partition(part_text)?;
        let model_of = |b: modref_spec::BehaviorId| {
            partition
                .component_of_behavior(&self.spec, b)
                .map(|c| alloc.component(c).timing_model())
                .unwrap_or_default()
        };
        Ok(modref_estimate::estimation_report(
            &self.spec,
            self.graph(),
            &model_of,
            &modref_estimate::LifetimeConfig::default(),
        ))
    }

    /// Evaluates the Figure 9 bus transfer-rate table for one
    /// implementation model under a partition.
    ///
    /// ```
    /// use modref_core::api::Codesign;
    /// use modref_core::ImplModel;
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let part = modref_workloads::named_partition("fig2").unwrap();
    /// let table = cd.rates(&part, ImplModel::Model2)?;
    /// assert!(table.bus_count() >= 1);
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn rates(&self, part_text: &str, model: ImplModel) -> Result<BusRateTable, ModrefError> {
        let (alloc, partition) = self.partition(part_text)?;
        Ok(figure9_rates(
            &self.spec,
            self.graph(),
            &alloc,
            &partition,
            model,
            &modref_estimate::LifetimeConfig::default(),
        )?)
    }

    /// Simulates the specification to completion.
    ///
    /// ```
    /// use modref_core::api::{Codesign, SimOpts};
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let result = cd.simulate(&SimOpts::new())?;
    /// assert!(result.steps > 0);
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn simulate(&self, opts: &SimOpts) -> Result<SimResult, ModrefError> {
        let config = SimConfig {
            max_steps: opts.max_steps.unwrap_or(SimConfig::default().max_steps),
            kernel: opts.kernel,
            trace: opts.trace,
        };
        Ok(Simulator::with_config(&self.spec, config).run()?)
    }

    /// Runs the parallel multi-start design-space exploration: K seeds ×
    /// algorithms × the four implementation models, ranked with the
    /// Pareto front flagged. Deterministic for fixed options regardless
    /// of thread count; honors [`ExploreOpts::cancel`].
    ///
    /// ```
    /// use modref_core::api::{Codesign, ExploreOpts};
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let opts = ExploreOpts::new()
    ///     .with_seeds(1)
    ///     .with_anneal_iterations(40)
    ///     .with_migration_passes(2);
    /// let out = cd.explore(&opts)?;
    /// assert!(!out.pareto_front().is_empty());
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn explore(&self, opts: &ExploreOpts) -> Result<Exploration, ModrefError> {
        let alloc = self.allocation_from(opts.part.as_deref())?;
        let expl = ExploreConfig {
            seeds: opts.seeds,
            anneal_iterations: opts.anneal_iterations,
            migration_passes: opts.migration_passes,
            threads: opts.threads,
        };
        let out = explore_designs_impl(
            &self.spec,
            self.graph(),
            &alloc,
            &CostConfig::default(),
            &expl,
            opts.cancel.as_ref(),
            opts.progress.as_ref(),
        )?;
        if let Some(token) = &opts.cancel {
            token.check()?;
        }
        Ok(out)
    }

    /// Verifies an exploration's Pareto front by simulation: every
    /// distinct front candidate is refined under Models 1–4 and the
    /// refined spec is simulated against the original. Honors
    /// [`VerifyOpts::cancel`].
    ///
    /// ```
    /// use modref_core::api::{Codesign, ExploreOpts, VerifyOpts};
    /// let cd = Codesign::from_spec(modref_workloads::fig2_spec());
    /// let opts = ExploreOpts::new()
    ///     .with_seeds(1)
    ///     .with_anneal_iterations(40)
    ///     .with_migration_passes(2);
    /// let out = cd.explore(&opts)?;
    /// let v = cd.verify(&out, &VerifyOpts::new())?;
    /// assert!(v.all_equivalent());
    /// # Ok::<(), modref_core::api::ModrefError>(())
    /// ```
    pub fn verify(
        &self,
        exploration: &Exploration,
        opts: &VerifyOpts,
    ) -> Result<Verification, ModrefError> {
        let alloc = self.allocation_from(opts.part.as_deref())?;
        let v = verify_pareto_impl(
            &self.spec,
            self.graph(),
            &alloc,
            exploration,
            opts.threads,
            opts.cancel.as_ref(),
            opts.kernel,
            opts.check_traces,
            &self.map,
            opts.progress.as_ref(),
        );
        if let Some(token) = &opts.cancel {
            token.check()?;
        }
        Ok(v)
    }

    /// The allocation from partition text, or the default PROC+ASIC
    /// allocation when no text is supplied.
    fn allocation_from(&self, part: Option<&str>) -> Result<Allocation, ModrefError> {
        match part {
            Some(text) => Ok(self.partition(text)?.0),
            None => Ok(Allocation::proc_plus_asic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_first_reason_wins() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.expire();
        t.cancel();
        assert_eq!(t.stopped(), Some(Stop::Expired));
        assert_eq!(t.check().unwrap_err(), ModrefError::Timeout);
        // Clones share state.
        let u = t.clone();
        assert_eq!(u.stopped(), Some(Stop::Expired));
    }

    #[test]
    fn parse_rejects_invalid_spec_with_structured_error() {
        // Valid syntax, but a scalar is indexed like an array — a
        // structural violation only validation catches.
        let src = "spec s;\nvar x : int<16> = 0;\n\
                   behavior L leaf { x[0] := 1; }\n\
                   behavior T seq { children { L; } }\ntop T;\n";
        let err = Codesign::parse("x.spec", src).unwrap_err();
        assert_eq!(err.code(), "spec");
        // Lenient parse accepts it and reports through lint instead.
        let cd = Codesign::parse_lenient("x.spec", src).expect("syntax is fine");
        assert_eq!(cd.stats().behaviors, 2);
    }

    #[test]
    fn unknown_lint_name_is_invalid_request() {
        let cd = Codesign::from_spec(modref_workloads::fig2_spec());
        let err = cd.lint(&LintOpts::new().with_deny("NOPE99")).unwrap_err();
        assert_eq!(err.code(), "invalid_request");
    }

    #[test]
    fn bad_partition_is_partition_error() {
        let cd = Codesign::from_spec(modref_workloads::fig2_spec());
        let err = cd.partition("component ???").unwrap_err();
        assert_eq!(err.code(), "partition");
    }

    #[test]
    fn cancelled_explore_returns_cancelled() {
        let cd = Codesign::from_spec(modref_workloads::fig2_spec());
        let token = CancelToken::new();
        token.cancel();
        let err = cd
            .explore(&ExploreOpts::new().with_seeds(2).with_cancel(token))
            .unwrap_err();
        assert_eq!(err, ModrefError::Cancelled);
    }
}
