//! The unified error type of the typed codesign API.
//!
//! Every operation of the [`Codesign`](super::Codesign) facade — and
//! therefore every `modref serve` request — fails with one
//! [`ModrefError`]. The per-crate error enums ([`modref_spec::ParseError`],
//! [`modref_spec::SpecError`], [`RefineError`](crate::RefineError),
//! [`modref_sim::SimError`], the partition-file parse error) are wrapped,
//! not replaced: the original error rides along as the source, and a
//! stable [`code`](ModrefError::code) string identifies the failure class
//! on the wire, so a malformed or doomed request always becomes a
//! structured response instead of aborting the process.

use std::error::Error;
use std::fmt;

use modref_sim::SimError;
use modref_spec::{ParseError, SpecError};

use crate::error::RefineError;

/// Any failure of a [`Codesign`](super::Codesign) operation or a serve
/// request, with a stable wire code per class.
///
/// ```
/// use modref_core::api::ModrefError;
/// let e = ModrefError::Cancelled;
/// assert_eq!(e.code(), "cancelled");
/// assert_eq!(e.to_string(), "request cancelled");
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModrefError {
    /// Reading a file failed (CLI convenience constructors only).
    Io(String),
    /// The specification text did not parse.
    Parse(ParseError),
    /// The specification parsed but failed structural validation.
    Spec(SpecError),
    /// The partition file did not parse or does not fit the spec.
    Partition {
        /// 1-based line in the partition text (0 when unknown).
        line: u32,
        /// Description of the problem.
        message: String,
    },
    /// Refinement rejected the (spec, partition, model) combination.
    Refine(RefineError),
    /// Simulation of the specification failed.
    Sim(SimError),
    /// Lint found hard errors (count carried for exit-code decisions).
    Lint {
        /// Number of error-severity diagnostics.
        errors: usize,
    },
    /// A `"workload"` request named no shipped workload.
    UnknownWorkload(String),
    /// The request itself is malformed: bad JSON, missing fields, an
    /// out-of-range model number, an unknown lint name...
    InvalidRequest(String),
    /// The per-request deadline expired before the operation finished.
    Timeout,
    /// A `cancel` request stopped the operation.
    Cancelled,
    /// The server's bounded queue was full; the request was rejected
    /// instead of buffered.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The operation panicked; the worker caught it and kept serving.
    Internal(String),
}

impl ModrefError {
    /// The stable, machine-readable failure class used as the wire
    /// `error.code` field. Never changes for an existing variant.
    pub fn code(&self) -> &'static str {
        match self {
            ModrefError::Io(_) => "io",
            ModrefError::Parse(_) => "parse",
            ModrefError::Spec(_) => "spec",
            ModrefError::Partition { .. } => "partition",
            ModrefError::Refine(_) => "refine",
            ModrefError::Sim(_) => "sim",
            ModrefError::Lint { .. } => "lint",
            ModrefError::UnknownWorkload(_) => "unknown_workload",
            ModrefError::InvalidRequest(_) => "invalid_request",
            ModrefError::Timeout => "timeout",
            ModrefError::Cancelled => "cancelled",
            ModrefError::Overloaded { .. } => "overloaded",
            ModrefError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ModrefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModrefError::Io(msg) => write!(f, "{msg}"),
            ModrefError::Parse(e) => write!(f, "{e}"),
            ModrefError::Spec(e) => write!(f, "invalid specification: {e}"),
            ModrefError::Partition { line: 0, message } => {
                write!(f, "partition error: {message}")
            }
            ModrefError::Partition { line, message } => {
                write!(f, "partition error at line {line}: {message}")
            }
            ModrefError::Refine(e) => write!(f, "{e}"),
            ModrefError::Sim(e) => write!(f, "simulation failed: {e}"),
            ModrefError::Lint { errors } => write!(f, "lint found {errors} error(s)"),
            ModrefError::UnknownWorkload(name) => {
                write!(f, "unknown workload `{name}`")
            }
            ModrefError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ModrefError::Timeout => write!(f, "deadline exceeded"),
            ModrefError::Cancelled => write!(f, "request cancelled"),
            ModrefError::Overloaded { capacity } => {
                write!(f, "server overloaded (queue of {capacity} full)")
            }
            ModrefError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl Error for ModrefError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModrefError::Parse(e) => Some(e),
            ModrefError::Spec(e) => Some(e),
            ModrefError::Refine(e) => Some(e),
            ModrefError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ModrefError {
    fn from(e: ParseError) -> Self {
        ModrefError::Parse(e)
    }
}

impl From<SpecError> for ModrefError {
    fn from(e: SpecError) -> Self {
        ModrefError::Spec(e)
    }
}

impl From<RefineError> for ModrefError {
    fn from(e: RefineError) -> Self {
        ModrefError::Refine(e)
    }
}

impl From<SimError> for ModrefError {
    fn from(e: SimError) -> Self {
        ModrefError::Sim(e)
    }
}

impl From<modref_partition::ParsePartitionError> for ModrefError {
    fn from(e: modref_partition::ParsePartitionError) -> Self {
        ModrefError::Partition {
            line: e.line,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ModrefError::Io("x".into()),
            ModrefError::Parse(ParseError::new(1, 1, "x")),
            ModrefError::Partition {
                line: 2,
                message: "x".into(),
            },
            ModrefError::Refine(RefineError::EmptyAllocation),
            ModrefError::Sim(SimError::StepLimitExceeded { limit: 1 }),
            ModrefError::Lint { errors: 2 },
            ModrefError::UnknownWorkload("z".into()),
            ModrefError::InvalidRequest("x".into()),
            ModrefError::Timeout,
            ModrefError::Cancelled,
            ModrefError::Overloaded { capacity: 8 },
            ModrefError::Internal("boom".into()),
        ];
        let codes: std::collections::BTreeSet<&str> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn wrapped_errors_keep_their_source() {
        let e: ModrefError = RefineError::EmptyAllocation.into();
        assert!(e.source().is_some());
        assert_eq!(e.code(), "refine");
        let e: ModrefError = SimError::StepLimitExceeded { limit: 9 }.into();
        assert!(e.to_string().contains("simulation failed"));
    }
}
