//! The typed codesign API: one facade, one error type, one wire format.
//!
//! This module is the single entry point the `modref` CLI, the
//! `modref serve` server ([`crate::serve`]) and library consumers
//! share:
//!
//! * [`Codesign`] — a session holding one parsed specification and its
//!   lazily derived access graph, with a method per pipeline operation
//!   (`check`, `lint`, `refine`, `estimate`, `rates`, `simulate`,
//!   `explore`, `verify`);
//! * [`ModrefError`] — the unified error every operation fails with,
//!   wrapping the per-crate errors and carrying a stable wire
//!   [`code`](ModrefError::code);
//! * [`Request`] / [`Response`] — the JSONL wire protocol of
//!   `modref serve`, decoded and encoded without panicking;
//! * [`CancelToken`] — cooperative cancellation for the long-running
//!   operations, shared by deadlines (`expire`) and `cancel` requests.
//!
//! Options structs ([`ExploreOpts`], [`VerifyOpts`], [`LintOpts`],
//! [`SimOpts`]) are `#[non_exhaustive]` builders, so new knobs can be
//! added without breaking callers.
//!
//! ```
//! use modref_core::api::{Codesign, ExploreOpts, VerifyOpts};
//! let cd = Codesign::from_spec(modref_workloads::fig2_spec());
//! let opts = ExploreOpts::new()
//!     .with_seeds(1)
//!     .with_anneal_iterations(40)
//!     .with_migration_passes(2);
//! let out = cd.explore(&opts)?;
//! let verdict = cd.verify(&out, &VerifyOpts::new())?;
//! assert!(verdict.all_equivalent());
//! # Ok::<(), modref_core::api::ModrefError>(())
//! ```

mod error;
mod facade;
mod wire;

pub use error::ModrefError;
pub use facade::{
    CancelToken, Codesign, ExploreOpts, LintOpts, Progress, ProgressFn, SimOpts, SpecStats, Stop,
    VerifyOpts,
};
pub use wire::{
    BatchItem, DiagSummary, PointSummary, ProgressFrame, RecordSummary, Request, RequestOp,
    Response, ResponseBody, SimParams, SpecSource, SubResult,
};

pub(crate) use wire::model_from;
