//! Refinement errors.

use std::error::Error;
use std::fmt;

use modref_spec::{BehaviorId, SpecError, VarId};

/// An error raised by the refinement engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefineError {
    /// The partition does not assign a component to a leaf behavior.
    UnassignedBehavior(BehaviorId),
    /// The partition does not assign a component to a variable.
    UnassignedVar(VarId),
    /// The chosen model requires at least one component.
    EmptyAllocation,
    /// The refined specification failed validation — an engine bug
    /// surfaced as an error rather than a panic.
    InvalidOutput(SpecError),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::UnassignedBehavior(b) => {
                write!(f, "partition assigns no component to behavior {b}")
            }
            RefineError::UnassignedVar(v) => {
                write!(f, "partition assigns no component to variable {v}")
            }
            RefineError::EmptyAllocation => write!(f, "allocation has no components"),
            RefineError::InvalidOutput(e) => write!(f, "refined spec failed validation: {e}"),
        }
    }
}

impl Error for RefineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RefineError::InvalidOutput(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for RefineError {
    fn from(e: SpecError) -> Self {
        RefineError::InvalidOutput(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = RefineError::EmptyAllocation;
        assert_eq!(e.to_string(), "allocation has no components");
        let inner = SpecError::UnknownVar(VarId::from_raw(0));
        let e = RefineError::InvalidOutput(inner.clone());
        assert!(e.to_string().contains("failed validation"));
        assert!(e.source().is_some());
    }
}
