//! The refinement plan: the pure analysis shared by the spec transformer
//! and the Figure 9 rate tables.
//!
//! Given a spec, access graph, allocation, partition and an
//! [`ImplModel`], the plan decides:
//!
//! * which **memory modules** exist and which variables each holds
//!   (grouped by the variable's *home component* and its local/global
//!   class, matching the paper's Gmem/Lmem split — Model1 maps everything
//!   to global memories, Model4 everything to local memories);
//! * which **buses** exist, named `b1`, `b2`, ... in the paper's canonical
//!   order for each model (Figure 3);
//! * the **global address map** (each memory occupies a contiguous range
//!   so slaves can range-decode shared buses);
//! * which bus (or bus *chain*, for Model4 remote accesses) carries each
//!   variable access.

use std::collections::HashMap;

use modref_graph::{AccessGraph, ChannelId};
use modref_partition::{Allocation, ComponentId, Partition, VarClass};
use modref_spec::{Spec, VarId};

use crate::address::AddressMap;
use crate::arch::BusKind;
use crate::error::RefineError;
use crate::model::ImplModel;

/// A planned memory module.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Module name (`Gmem_p0`, `Lmem_p1`, ...).
    pub name: String,
    /// The component whose variables it holds (its *home*).
    pub home: ComponentId,
    /// Whether it holds global (cross-partition) variables.
    pub global: bool,
    /// The variables stored, in address order.
    pub vars: Vec<VarId>,
    /// The buses its ports serve (one entry per port).
    pub port_buses: Vec<String>,
}

/// A planned bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusPlan {
    /// Bus name in paper order (`b1`...).
    pub name: String,
    /// Bus role.
    pub kind: BusKind,
}

/// The complete analysis result. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinePlan {
    /// The implementation model planned for.
    pub model: ImplModel,
    /// Global address map over all memory-resident variables.
    pub addr: AddressMap,
    /// Planned memory modules.
    pub memories: Vec<MemoryPlan>,
    /// Planned buses, in naming order.
    pub buses: Vec<BusPlan>,
    /// Data-line width shared by all buses (widest single access).
    pub data_bits: u32,
    /// Address-line width shared by all buses.
    pub addr_bits: u32,
    var_memory: HashMap<VarId, usize>,
    local_bus: HashMap<ComponentId, String>,
    shared_global_bus: Option<String>,
    gmem_bus: HashMap<(ComponentId, usize), String>,
    ifc_bus: HashMap<ComponentId, String>,
    inter_bus: Option<String>,
}

impl RefinePlan {
    /// Builds the plan.
    ///
    /// # Errors
    ///
    /// * [`RefineError::EmptyAllocation`] for an empty allocation;
    /// * [`RefineError::UnassignedVar`] / `UnassignedBehavior` when the
    ///   partition leaves objects without a component.
    pub fn build(
        spec: &Spec,
        graph: &AccessGraph,
        allocation: &Allocation,
        partition: &Partition,
        model: ImplModel,
    ) -> Result<Self, RefineError> {
        if allocation.is_empty() {
            return Err(RefineError::EmptyAllocation);
        }
        for leaf in spec.leaves() {
            if partition.component_of_behavior(spec, leaf).is_none() {
                return Err(RefineError::UnassignedBehavior(leaf));
            }
        }

        // Group variables by (home component, memory class).
        let mut groups: HashMap<(ComponentId, bool), Vec<VarId>> = HashMap::new();
        for (v, _) in spec.variables() {
            let home = partition
                .component_of_var(spec, v)
                .ok_or(RefineError::UnassignedVar(v))?;
            let class = partition.classify_var(spec, graph, v);
            let global_mem = match model {
                ImplModel::Model1 => true,
                ImplModel::Model2 | ImplModel::Model3 => class == VarClass::Global,
                ImplModel::Model4 => false,
            };
            groups.entry((home, global_mem)).or_default().push(v);
        }

        // Memory modules in deterministic order: by component, locals
        // before globals.
        let mut memories = Vec::new();
        let mut var_memory = HashMap::new();
        for (cid, _) in allocation.iter() {
            for &global in &[false, true] {
                if let Some(vars) = groups.remove(&(cid, global)) {
                    let name = if global {
                        format!("Gmem_p{}", cid.index())
                    } else {
                        format!("Lmem_p{}", cid.index())
                    };
                    for &v in &vars {
                        var_memory.insert(v, memories.len());
                    }
                    memories.push(MemoryPlan {
                        name,
                        home: cid,
                        global,
                        vars,
                        port_buses: Vec::new(),
                    });
                }
            }
        }

        // Address map, contiguous per module.
        let mut addr = AddressMap::new();
        for m in &memories {
            for &v in &m.vars {
                addr.assign(spec, v);
            }
        }

        // Buses in the paper's canonical per-model order.
        let mut plan = Self {
            model,
            addr,
            memories,
            buses: Vec::new(),
            data_bits: spec
                .variables()
                .map(|(_, v)| v.ty().access_width())
                .max()
                .unwrap_or(8)
                .max(1),
            addr_bits: 0,
            var_memory,
            local_bus: HashMap::new(),
            shared_global_bus: None,
            gmem_bus: HashMap::new(),
            ifc_bus: HashMap::new(),
            inter_bus: None,
        };
        plan.addr_bits = plan.addr.addr_bits();
        plan.plan_buses(allocation);
        plan.attach_memory_ports(allocation);
        Ok(plan)
    }

    fn next_bus(&mut self, kind: BusKind) -> String {
        let name = format!("b{}", self.buses.len() + 1);
        self.buses.push(BusPlan {
            name: name.clone(),
            kind,
        });
        name
    }

    fn has_local_memory(&self, cid: ComponentId) -> bool {
        self.memories.iter().any(|m| m.home == cid && !m.global)
    }

    fn plan_buses(&mut self, allocation: &Allocation) {
        let components = allocation.ids();
        match self.model {
            ImplModel::Model1 => {
                let b = self.next_bus(BusKind::Global);
                self.shared_global_bus = Some(b);
            }
            ImplModel::Model2 => {
                // Paper order (Figure 3(b), p = 2): b1 local0, b2 global,
                // b3 local1 — first local bus, shared global bus, then the
                // remaining local buses.
                if let Some(&first) = components.first() {
                    if self.has_local_memory(first) {
                        let b = self.next_bus(BusKind::Local(first));
                        self.local_bus.insert(first, b);
                    }
                }
                if self.memories.iter().any(|m| m.global) {
                    let b = self.next_bus(BusKind::Global);
                    self.shared_global_bus = Some(b);
                }
                for &cid in components.iter().skip(1) {
                    if self.has_local_memory(cid) {
                        let b = self.next_bus(BusKind::Local(cid));
                        self.local_bus.insert(cid, b);
                    }
                }
            }
            ImplModel::Model3 => {
                // Paper order (Figure 3(c), p = 2): b1 local0, b2..b5 the
                // dedicated component->global-memory buses, b6 local1.
                if let Some(&first) = components.first() {
                    if self.has_local_memory(first) {
                        let b = self.next_bus(BusKind::Local(first));
                        self.local_bus.insert(first, b);
                    }
                }
                let gmem_indices: Vec<usize> = self
                    .memories
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.global)
                    .map(|(i, _)| i)
                    .collect();
                for mem_idx in gmem_indices {
                    for &accessor in &components {
                        let b = self.next_bus(BusKind::Global);
                        self.gmem_bus.insert((accessor, mem_idx), b);
                    }
                }
                for &cid in components.iter().skip(1) {
                    if self.has_local_memory(cid) {
                        let b = self.next_bus(BusKind::Local(cid));
                        self.local_bus.insert(cid, b);
                    }
                }
            }
            ImplModel::Model4 => {
                // Paper order (Figure 3(d), p = 2): b1 local0, b2 ifc0,
                // b3 inter, b4 ifc1, b5 local1.
                if let Some(&first) = components.first() {
                    if self.has_local_memory(first) {
                        let b = self.next_bus(BusKind::Local(first));
                        self.local_bus.insert(first, b);
                    }
                    let b = self.next_bus(BusKind::InterfaceAccess(first));
                    self.ifc_bus.insert(first, b);
                }
                let b = self.next_bus(BusKind::InterComponent);
                self.inter_bus = Some(b);
                for &cid in components.iter().skip(1) {
                    let b = self.next_bus(BusKind::InterfaceAccess(cid));
                    self.ifc_bus.insert(cid, b);
                    if self.has_local_memory(cid) {
                        let b = self.next_bus(BusKind::Local(cid));
                        self.local_bus.insert(cid, b);
                    }
                }
            }
        }
    }

    fn attach_memory_ports(&mut self, allocation: &Allocation) {
        let components = allocation.ids();
        for idx in 0..self.memories.len() {
            let (home, global) = (self.memories[idx].home, self.memories[idx].global);
            let ports: Vec<String> = match self.model {
                ImplModel::Model1 => vec![self
                    .shared_global_bus
                    .clone()
                    .expect("Model1 plans a global bus")],
                ImplModel::Model2 => {
                    if global {
                        vec![self
                            .shared_global_bus
                            .clone()
                            .expect("Model2 with globals plans a global bus")]
                    } else {
                        vec![self.local_bus[&home].clone()]
                    }
                }
                ImplModel::Model3 => {
                    if global {
                        components
                            .iter()
                            .map(|&c| self.gmem_bus[&(c, idx)].clone())
                            .collect()
                    } else {
                        vec![self.local_bus[&home].clone()]
                    }
                }
                ImplModel::Model4 => vec![self.local_bus[&home].clone()],
            };
            self.memories[idx].port_buses = ports;
        }
    }

    /// The memory module holding `var`.
    pub fn memory_of(&self, var: VarId) -> Option<&MemoryPlan> {
        self.var_memory.get(&var).map(|&i| &self.memories[i])
    }

    /// The index into [`RefinePlan::memories`] of the module holding `var`.
    pub fn memory_index_of(&self, var: VarId) -> Option<usize> {
        self.var_memory.get(&var).copied()
    }

    /// The per-component local bus, if planned.
    pub fn local_bus_of(&self, cid: ComponentId) -> Option<&str> {
        self.local_bus.get(&cid).map(String::as_str)
    }

    /// Model4's inter-component bus, if planned.
    pub fn inter_bus_name(&self) -> Option<&str> {
        self.inter_bus.as_deref()
    }

    /// Model4's interface-access bus for a component.
    pub fn ifc_bus_of(&self, cid: ComponentId) -> Option<&str> {
        self.ifc_bus.get(&cid).map(String::as_str)
    }

    /// The bus chain an access travels when a behavior on `accessor`
    /// touches `var`: one bus for shared-memory models, and
    /// `[interface-access, inter-component, remote local]` for Model4
    /// remote accesses. The first element is the bus the *master behavior*
    /// itself drives.
    pub fn access_buses(&self, accessor: ComponentId, var: VarId) -> Vec<String> {
        let Some(&mem_idx) = self.var_memory.get(&var) else {
            return Vec::new();
        };
        let mem = &self.memories[mem_idx];
        match self.model {
            ImplModel::Model1 => vec![self
                .shared_global_bus
                .clone()
                .expect("Model1 plans a global bus")],
            ImplModel::Model2 => {
                if mem.global {
                    vec![self
                        .shared_global_bus
                        .clone()
                        .expect("Model2 with globals plans a global bus")]
                } else {
                    vec![self.local_bus[&mem.home].clone()]
                }
            }
            ImplModel::Model3 => {
                if mem.global {
                    vec![self.gmem_bus[&(accessor, mem_idx)].clone()]
                } else {
                    vec![self.local_bus[&mem.home].clone()]
                }
            }
            ImplModel::Model4 => {
                if accessor == mem.home {
                    vec![self.local_bus[&mem.home].clone()]
                } else {
                    vec![
                        self.ifc_bus[&accessor].clone(),
                        self.inter_bus.clone().expect("Model4 plans an inter bus"),
                        self.local_bus[&mem.home].clone(),
                    ]
                }
            }
        }
    }

    /// Maps every data channel of the access graph to the buses carrying
    /// it — the Figure 9 accounting. Channels to variables that end up as
    /// registers (none today; kept for forward compatibility) map to no
    /// bus.
    pub fn channel_buses(
        &self,
        spec: &Spec,
        graph: &AccessGraph,
        partition: &Partition,
    ) -> HashMap<ChannelId, Vec<String>> {
        let mut out = HashMap::new();
        for ch in graph.data_channels() {
            let (Some(b), Some(v)) = (ch.behavior(), ch.var()) else {
                continue;
            };
            let Some(accessor) = partition.component_of_behavior(spec, b) else {
                continue;
            };
            out.insert(ch.id(), self.access_buses(accessor, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    /// Two components; x local to PROC, g global (PROC-homed, read by
    /// ASIC), y local to ASIC.
    fn fixture() -> (Spec, AccessGraph, Allocation, Partition) {
        let mut b = SpecBuilder::new("plan");
        let x = b.var_int("x", 16, 0);
        let g = b.var_int("g", 16, 0);
        let y = b.var_int("y", 16, 0);
        let b1 = b.leaf(
            "B1",
            vec![stmt::assign(x, expr::lit(1)), stmt::assign(g, expr::var(x))],
        );
        let b2 = b.leaf("B2", vec![stmt::assign(y, expr::var(g))]);
        let top = b.concurrent("Top", vec![b1, b2]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::new();
        part.assign_behavior(top, proc);
        part.assign_behavior(b1, proc);
        part.assign_behavior(b2, asic);
        part.assign_var(x, proc);
        part.assign_var(g, proc);
        part.assign_var(y, asic);
        (spec, graph, alloc, part)
    }

    fn proc_asic(alloc: &Allocation) -> (ComponentId, ComponentId) {
        (
            alloc.by_name("PROC").unwrap(),
            alloc.by_name("ASIC").unwrap(),
        )
    }

    #[test]
    fn model1_maps_everything_to_global_memories_on_one_bus() {
        let (spec, graph, alloc, part) = fixture();
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model1).unwrap();
        assert_eq!(plan.buses.len(), 1);
        assert!(plan.memories.iter().all(|m| m.global));
        assert_eq!(plan.memories.len(), 2); // Gmem_p0 {x,g}, Gmem_p1 {y}
        let (proc, _) = proc_asic(&alloc);
        let x = spec.variable_by_name("x").unwrap();
        assert_eq!(plan.access_buses(proc, x), vec!["b1".to_string()]);
    }

    #[test]
    fn model2_splits_local_and_global() {
        let (spec, graph, alloc, part) = fixture();
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model2).unwrap();
        // Memories: Lmem_p0 {x}, Gmem_p0 {g}, Lmem_p1 {y}.
        assert_eq!(plan.memories.len(), 3);
        // Buses: b1 local0, b2 global, b3 local1 — paper order.
        assert_eq!(
            plan.buses
                .iter()
                .map(|b| b.name.as_str())
                .collect::<Vec<_>>(),
            vec!["b1", "b2", "b3"]
        );
        assert!(matches!(plan.buses[0].kind, BusKind::Local(_)));
        assert!(matches!(plan.buses[1].kind, BusKind::Global));
        let (proc, asic) = proc_asic(&alloc);
        let g = spec.variable_by_name("g").unwrap();
        let y = spec.variable_by_name("y").unwrap();
        assert_eq!(plan.access_buses(proc, g), vec!["b2".to_string()]);
        assert_eq!(plan.access_buses(asic, g), vec!["b2".to_string()]);
        assert_eq!(plan.access_buses(asic, y), vec!["b3".to_string()]);
    }

    #[test]
    fn model3_gives_each_component_a_dedicated_global_bus() {
        let (spec, graph, alloc, part) = fixture();
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model3).unwrap();
        // One Gmem (on PROC) with 2 ports -> 2 dedicated buses + 2 locals.
        assert_eq!(plan.buses.len(), 4);
        let (proc, asic) = proc_asic(&alloc);
        let g = spec.variable_by_name("g").unwrap();
        let from_proc = plan.access_buses(proc, g);
        let from_asic = plan.access_buses(asic, g);
        assert_ne!(from_proc, from_asic, "dedicated buses per component");
        let gmem = plan.memory_of(g).unwrap();
        assert_eq!(gmem.port_buses.len(), 2);
    }

    #[test]
    fn model4_routes_remote_accesses_through_the_interface_chain() {
        let (spec, graph, alloc, part) = fixture();
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model4).unwrap();
        // Buses: b1 local0, b2 ifc0, b3 inter, b4 ifc1, b5 local1.
        assert_eq!(plan.buses.len(), 5);
        let (proc, asic) = proc_asic(&alloc);
        let g = spec.variable_by_name("g").unwrap();
        // g homed on PROC: local access from PROC is one bus...
        assert_eq!(plan.access_buses(proc, g).len(), 1);
        // ...remote access from ASIC traverses ifc1 -> inter -> local0.
        let chain = plan.access_buses(asic, g);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[1], plan.inter_bus_name().unwrap());
        // All memories are local under Model4.
        assert!(plan.memories.iter().all(|m| !m.global));
    }

    #[test]
    fn addresses_are_contiguous_per_memory() {
        let (spec, graph, alloc, part) = fixture();
        let plan = RefinePlan::build(&spec, &graph, &alloc, &part, ImplModel::Model2).unwrap();
        for m in &plan.memories {
            let (lo, hi) = plan.addr.range_of(&spec, &m.vars).unwrap();
            assert!(hi >= lo);
            // Each var's base lies within the module range.
            for &v in &m.vars {
                let base = plan.addr.base(v).unwrap();
                assert!(base >= lo && base <= hi);
            }
        }
        assert_eq!(plan.addr.words(), 3);
    }

    #[test]
    fn channel_buses_covers_every_data_channel() {
        let (spec, graph, alloc, part) = fixture();
        for model in ImplModel::ALL {
            let plan = RefinePlan::build(&spec, &graph, &alloc, &part, model).unwrap();
            let map = plan.channel_buses(&spec, &graph, &part);
            assert_eq!(map.len(), graph.data_channel_count(), "{model}");
            assert!(map.values().all(|buses| !buses.is_empty()), "{model}");
        }
    }

    #[test]
    fn bus_counts_respect_paper_maxima() {
        let (spec, graph, alloc, part) = fixture();
        for model in ImplModel::ALL {
            let plan = RefinePlan::build(&spec, &graph, &alloc, &part, model).unwrap();
            assert!(
                plan.buses.len() <= model.max_buses(alloc.len()),
                "{model}: {} buses",
                plan.buses.len()
            );
        }
    }

    #[test]
    fn empty_allocation_is_rejected() {
        let (spec, graph, _, part) = fixture();
        let empty = Allocation::new();
        assert!(matches!(
            RefinePlan::build(&spec, &graph, &empty, &part, ImplModel::Model1),
            Err(RefineError::EmptyAllocation)
        ));
    }
}
