//! Conformance linting of refined output: bridges the refiner's
//! [`Refined`] result to the neutral views `modref-analyze` checks.
//!
//! The conformance lints (`RC01`–`RC04`) validate the *architecture* a
//! refinement produced — arbiters present on multi-master buses, disjoint
//! address decode ranges, two-sided buses, sufficient bus widths. They
//! are cheap (no simulation), so
//! [`Codesign::verify`](crate::api::Codesign::verify) runs them on every
//! refined candidate first and rejects statically broken ones before
//! spending simulation time.

use modref_analyze::{
    conformance_lints, deadlock_lints, BusView, Diagnostic, HandshakePair, MemoryView, RefinedView,
    Severity,
};
use modref_graph::{AccessGraph, ChannelKind};
use modref_spec::Spec;

use crate::refine::Refined;

/// Builds the neutral conformance view of a refined candidate and runs
/// the `RC01`–`RC04` lints over it. `spec` and `graph` are the *original*
/// specification and its access graph (the plan's variable ids and the
/// channel ids in `refined.channel_buses` belong to them). This is the
/// conformance half of [`Codesign::lint`](crate::api::Codesign::lint)
/// and the whole of
/// [`Codesign::lint_refined`](crate::api::Codesign::lint_refined).
pub(crate) fn lint_refined_impl(
    spec: &Spec,
    graph: &AccessGraph,
    refined: &Refined,
) -> Vec<Diagnostic> {
    let arch = &refined.architecture;
    let plan = &refined.plan;

    // Widest access each bus must carry: max bits-per-access over the
    // original data channels routed across it.
    let required = |bus_name: &str| -> u32 {
        refined
            .channel_buses
            .iter()
            .filter(|(_, buses)| buses.iter().any(|b| b == bus_name))
            .filter_map(|(cid, _)| match graph.channel(*cid).kind() {
                ChannelKind::Data {
                    bits_per_access, ..
                } => Some(*bits_per_access),
                ChannelKind::Control { .. } => None,
            })
            .max()
            .unwrap_or(0)
    };

    let buses = arch
        .buses
        .iter()
        .map(|b| BusView {
            name: b.name.clone(),
            data_bits: b.data_bits,
            addr_bits: b.addr_bits,
            masters: b.masters.clone(),
            slaves: b.slaves.clone(),
            has_arbiter: arch.arbiters.iter().any(|a| a.bus == b.name),
            required_data_bits: required(&b.name),
        })
        .collect();

    let memories = plan
        .memories
        .iter()
        .map(|m| MemoryView {
            name: m.name.clone(),
            global: m.global,
            range: plan.addr.range_of(spec, &m.vars),
            port_buses: m.port_buses.clone(),
        })
        .collect();

    let view = RefinedView {
        model: plan.model.number(),
        buses,
        memories,
    };
    let mut diags = conformance_lints(&view);

    // Deadlock/liveness lints over the refined behaviors themselves,
    // seeded with the arbiters' exact request/ack wiring so a broken
    // four-phase handshake is caught without relying on inference. A
    // refined candidate has no source map — diagnostics carry object
    // names instead of positions.
    diags.extend(deadlock_lints(
        &refined.spec,
        None,
        &arbiter_handshakes(refined),
    ));
    modref_analyze::sort_canonical(&mut diags);
    diags
}

/// The request/ack pairs of every arbiter the refiner inserted, resolved
/// against the refined spec's signal/behavior tables. Wire names follow
/// the refiner's `{bus}_req_{slot}` convention; anything that fails to
/// resolve (foreign architecture edits) is skipped rather than guessed.
fn arbiter_handshakes(refined: &Refined) -> Vec<HandshakePair> {
    let spec = &refined.spec;
    let mut pairs = Vec::new();
    for desc in &refined.architecture.arbiters {
        let Some(server) = spec.behavior_by_name(&desc.name) else {
            continue;
        };
        for slot in 0..desc.masters.len() {
            let req = spec.signal_by_name(&format!("{}_req_{slot}", desc.bus));
            let ack = spec.signal_by_name(&format!("{}_ack_{slot}", desc.bus));
            if let (Some(req), Some(ack)) = (req, ack) {
                pairs.push(HandshakePair { req, ack, server });
            }
        }
    }
    pairs
}

/// When any error-severity diagnostic is present, a short rejection
/// summary ("RC01 ×2, RC04 ×1") for verification records; `None` when the
/// candidate is statically sound.
pub fn static_reject(diags: &[Diagnostic]) -> Option<String> {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for d in diags {
        if d.severity != Severity::Error {
            continue;
        }
        match counts.iter_mut().find(|(c, _)| *c == d.code) {
            Some((_, n)) => *n += 1,
            None => counts.push((d.code, 1)),
        }
    }
    if counts.is_empty() {
        return None;
    }
    let summary = counts
        .iter()
        .map(|(c, n)| {
            if *n == 1 {
                (*c).to_string()
            } else {
                format!("{c} \u{d7}{n}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{refine, ImplModel};
    use modref_workloads::{medical_allocation, medical_partition, medical_spec, Design};

    #[test]
    fn clean_medical_refinements_pass_all_models() {
        let spec = medical_spec();
        let graph = AccessGraph::derive(&spec);
        let alloc = medical_allocation();
        let part = medical_partition(&spec, &alloc, Design::Design1);
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model).expect("refines");
            let diags = lint_refined_impl(&spec, &graph, &refined);
            assert!(
                static_reject(&diags).is_none(),
                "{model:?} rejected: {diags:?}"
            );
        }
    }

    #[test]
    fn tampered_architecture_is_rejected() {
        let spec = medical_spec();
        let graph = AccessGraph::derive(&spec);
        let alloc = medical_allocation();
        let part = medical_partition(&spec, &alloc, Design::Design1);
        let mut refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).expect("refines");
        // Knock out the arbiters: the shared global bus has several
        // masters, so RC01 must fire.
        refined.architecture.arbiters.clear();
        let diags = lint_refined_impl(&spec, &graph, &refined);
        let reject = static_reject(&diags).expect("rejected");
        assert!(reject.contains("RC01"), "{reject}");
    }

    #[test]
    fn static_reject_summarizes_error_codes_only() {
        let diags = vec![
            Diagnostic::new("RC01", Severity::Error, "a"),
            Diagnostic::new("RC01", Severity::Error, "b"),
            Diagnostic::new("CC01", Severity::Note, "c"),
        ];
        assert_eq!(static_reject(&diags).as_deref(), Some("RC01 \u{d7}2"));
        assert_eq!(static_reject(&diags[2..]), None);
    }
}
