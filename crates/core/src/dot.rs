//! Graphviz (DOT) export of the refined architecture — the emerging
//! netlist pictures of the paper's Figure 3: components and memories as
//! boxes, buses as bus-shaped nodes, arbiters and interfaces attached to
//! the buses they guard/serve.

use std::fmt::Write as _;

use crate::arch::{Architecture, BusKind};

/// Renders the architecture netlist in DOT format.
pub fn to_dot(arch: &Architecture) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph architecture {{");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");

    for bus in &arch.buses {
        let color = match bus.kind {
            BusKind::Local(_) => "gray70",
            BusKind::Global => "black",
            BusKind::InterfaceAccess(_) => "steelblue",
            BusKind::InterComponent => "firebrick",
        };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{} ({}d+{}a)\", shape=underline, color={color}];",
            bus.name, bus.name, bus.data_bits, bus.addr_bits
        );
        for master in &bus.masters {
            let _ = writeln!(out, "  \"m_{master}\" [label=\"{master}\", shape=box];");
            let _ = writeln!(out, "  \"m_{master}\" -- \"{}\";", bus.name);
        }
    }

    for mem in &arch.memories {
        let shape = if mem.global { "box3d" } else { "cylinder" };
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n{} words\", shape={shape}];",
            mem.name, mem.name, mem.words
        );
        for bus in &mem.port_buses {
            let _ = writeln!(out, "  \"{}\" -- \"{bus}\";", mem.name);
        }
    }

    for arb in &arch.arbiters {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\", shape=diamond];",
            arb.name, arb.name
        );
        let _ = writeln!(out, "  \"{}\" -- \"{}\" [style=dotted];", arb.name, arb.bus);
    }

    for ifc in &arch.interfaces {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\", shape=component];",
            ifc.name, ifc.name
        );
        let _ = writeln!(out, "  \"{}\" -- \"{}\";", ifc.name, ifc.serves_bus);
        let _ = writeln!(out, "  \"{}\" -- \"{}\";", ifc.name, ifc.masters_bus);
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine;
    use crate::ImplModel;
    use modref_graph::AccessGraph;
    use modref_partition::{Allocation, Partition};
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    #[test]
    fn architecture_dot_lists_buses_memories_arbiters() {
        let mut b = SpecBuilder::new("archdot");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf("A", vec![stmt::assign(x, expr::lit(1))]);
        let c = b.leaf("C", vec![stmt::assign(x, expr::lit(2))]);
        let top = b.concurrent("Top", vec![a, c]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let part = Partition::with_default(alloc.by_name("PROC").unwrap());
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model1).unwrap();
        let dot = to_dot(&refined.architecture);
        assert!(dot.starts_with("graph architecture {"));
        assert!(dot.contains("\"b1\""));
        assert!(dot.contains("Gmem_p0"));
        assert!(dot.contains("shape=diamond"), "arbiter rendered");
        assert!(dot.contains("\"m_A\" -- \"b1\";"));
    }

    #[test]
    fn model4_dot_shows_interfaces() {
        let mut b = SpecBuilder::new("ifcdot");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf("A", vec![stmt::assign(x, expr::lit(1))]);
        let c = b.leaf("C", vec![stmt::assign(x, expr::lit(2))]);
        let top = b.seq_in_order("Top", vec![a, c]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::with_default(proc);
        part.assign_behavior(spec.behavior_by_name("C").unwrap(), asic);
        part.assign_var(spec.variable_by_name("x").unwrap(), proc);
        let refined = refine(&spec, &graph, &alloc, &part, ImplModel::Model4).unwrap();
        let dot = to_dot(&refined.architecture);
        assert!(dot.contains("shape=component"), "interfaces rendered");
    }
}
