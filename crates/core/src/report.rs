//! Architecture reports: the design-cost summary of the paper's
//! Section 5 discussion ("we need to take into account not only the
//! number of buses, the bus transfer rate required for each bus, but
//! also the cost of bus interfaces ... the number of memories and the
//! sizes of the memories required in each model").

use std::fmt;
use std::fmt::Write as _;

use crate::arch::Architecture;

/// Aggregate cost indicators of a refined architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostSummary {
    /// Number of buses.
    pub buses: usize,
    /// Total pins consumed by all buses at component boundaries.
    pub bus_pins: u32,
    /// Number of memory modules.
    pub memories: usize,
    /// Total memory bits across modules.
    pub memory_bits: u64,
    /// Total memory ports (multi-port memories cost more).
    pub memory_ports: usize,
    /// Number of arbiters.
    pub arbiters: usize,
    /// Number of bus interfaces.
    pub interfaces: usize,
}

impl CostSummary {
    /// Computes the summary for an architecture.
    pub fn of(arch: &Architecture) -> Self {
        Self {
            buses: arch.bus_count(),
            bus_pins: arch.buses.iter().map(|b| b.pins()).sum(),
            memories: arch.memory_count(),
            memory_bits: arch.total_memory_bits(),
            memory_ports: arch.memories.iter().map(|m| m.ports()).sum(),
            arbiters: arch.arbiters.len(),
            interfaces: arch.interfaces.len(),
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} buses ({} pins), {} memories ({} bits, {} ports), {} arbiters, {} interfaces",
            self.buses,
            self.bus_pins,
            self.memories,
            self.memory_bits,
            self.memory_ports,
            self.arbiters,
            self.interfaces
        )
    }
}

/// Renders a full textual netlist description of an architecture.
pub fn describe(arch: &Architecture) -> String {
    let mut out = String::new();
    for bus in &arch.buses {
        let _ = writeln!(
            out,
            "bus {} ({:?}): {} data + {} addr bits, masters [{}], slaves [{}]",
            bus.name,
            bus.kind,
            bus.data_bits,
            bus.addr_bits,
            bus.masters.join(", "),
            bus.slaves.join(", ")
        );
    }
    for mem in &arch.memories {
        let _ = writeln!(
            out,
            "memory {}: {} words / {} bits, {} port(s) on [{}]",
            mem.name,
            mem.words,
            mem.bits,
            mem.ports(),
            mem.port_buses.join(", ")
        );
    }
    for arb in &arch.arbiters {
        let _ = writeln!(
            out,
            "arbiter {} on {} over [{}]",
            arb.name,
            arb.bus,
            arb.masters.join(", ")
        );
    }
    for ifc in &arch.interfaces {
        let _ = writeln!(
            out,
            "interface {}: serves {}, masters {}",
            ifc.name, ifc.serves_bus, ifc.masters_bus
        );
    }
    let _ = writeln!(out, "cost: {}", CostSummary::of(arch));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine;
    use crate::ImplModel;
    use modref_graph::AccessGraph;
    use modref_partition::{Allocation, Partition};
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    fn refined(model: ImplModel) -> crate::Refined {
        let mut b = SpecBuilder::new("cost");
        let x = b.var_int("x", 16, 0);
        let y = b.var_int("y", 16, 0);
        let a = b.leaf("A", vec![stmt::assign(x, expr::lit(1))]);
        let c = b.leaf("C", vec![stmt::assign(y, expr::var(x))]);
        let top = b.seq_in_order("Top", vec![a, c]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let alloc = Allocation::proc_plus_asic();
        let proc = alloc.by_name("PROC").unwrap();
        let asic = alloc.by_name("ASIC").unwrap();
        let mut part = Partition::with_default(proc);
        part.assign_behavior(spec.behavior_by_name("C").unwrap(), asic);
        part.assign_var(spec.variable_by_name("x").unwrap(), proc);
        part.assign_var(spec.variable_by_name("y").unwrap(), asic);
        refine(&spec, &graph, &alloc, &part, model).unwrap()
    }

    #[test]
    fn summary_counts_everything() {
        let r = refined(ImplModel::Model4);
        let cost = CostSummary::of(&r.architecture);
        assert_eq!(cost.buses, r.architecture.bus_count());
        assert!(cost.bus_pins > 0);
        assert_eq!(cost.memories, 2);
        assert_eq!(cost.memory_bits, 32);
        assert!(cost.interfaces >= 2);
        assert!(cost.to_string().contains("memories"));
    }

    #[test]
    fn model3_pays_for_extra_ports() {
        let c1 = CostSummary::of(&refined(ImplModel::Model1).architecture);
        let c3 = CostSummary::of(&refined(ImplModel::Model3).architecture);
        assert!(c3.memory_ports > c1.memory_ports);
        assert!(c3.buses > c1.buses);
    }

    #[test]
    fn describe_mentions_every_section() {
        let r = refined(ImplModel::Model4);
        let text = describe(&r.architecture);
        assert!(text.contains("bus b1"));
        assert!(text.contains("memory Lmem_p0"));
        assert!(text.contains("interface Bus_interface_"));
        assert!(text.contains("cost: "));
    }
}
