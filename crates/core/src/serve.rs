//! `modref serve` — a long-running concurrent codesign service.
//!
//! The server reads newline-delimited JSON requests (the
//! [`api::Request`](crate::api::Request) wire format) from a byte
//! stream, executes them on a bounded worker pool, and writes one JSON
//! response line per request, tagged with the request's id. Responses
//! may interleave in completion order; ids are what correlate them.
//!
//! Robustness model — every failure is a structured response, never a
//! dead server:
//!
//! * **deadlines** — each request may carry `deadline_ms` (or inherit
//!   [`ServeConfig::default_deadline_ms`]); a reaper thread expires the
//!   request's [`CancelToken`] when time runs out and the client gets a
//!   `timeout` error;
//! * **cancellation** — a `cancel` request flips the target's token;
//!   in-flight explorations/verifications stop at their next checkpoint
//!   and answer with a `cancelled` error, while the cancel itself is
//!   acknowledged immediately from the reader thread;
//! * **backpressure** — the job queue is bounded; when it is full new
//!   requests are rejected with an `overloaded` error instead of
//!   buffering without limit;
//! * **panic isolation** — a panicking operation is caught per worker
//!   ([`std::panic::catch_unwind`]); the client gets an `internal`
//!   error and the worker keeps serving;
//! * **graceful drain** — on end of input the queue is closed, queued
//!   work finishes, workers are joined, and [`serve`] returns its
//!   [`ServeStats`].
//!
//! Every request runs under a `serve.request` span with queue-wait and
//! execution-time histograms (`serve.queue_ns`, `serve.exec_ns`) and
//! `serve.*` counters, so a `--trace` session round-trips through
//! `modref report`.
//!
//! ```
//! use modref_core::api::{Request, RequestOp, Response, SpecSource};
//! use modref_core::serve::{serve, ServeConfig};
//! let spec = "spec tiny;\nvar x : int<16> = 0;\n\
//!             behavior L leaf { x := x + 5; }\n\
//!             behavior T seq { children { L; } }\ntop T;\n";
//! let req = Request {
//!     id: 1,
//!     deadline_ms: None,
//!     op: RequestOp::Parse { source: SpecSource::Text(spec.into()) },
//! };
//! let input = format!("{}\n", req.to_json_line());
//! let mut out = Vec::new();
//! let stats = serve(
//!     std::io::Cursor::new(input.into_bytes()),
//!     &mut out,
//!     &ServeConfig::default().workers(1),
//! );
//! assert_eq!((stats.accepted, stats.completed), (1, 1));
//! let line = String::from_utf8(out).unwrap();
//! assert_eq!(Response::from_json(line.trim()).unwrap().id, 1);
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{mpsc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use modref_spec::Spec;

use crate::api::{
    CancelToken, Codesign, ExploreOpts, LintOpts, ModrefError, Request, RequestOp, Response,
    ResponseBody, SpecSource, VerifyOpts,
};

/// How often the deadline reaper scans in-flight requests.
const REAPER_TICK: Duration = Duration::from_millis(2);

/// Server configuration. `#[non_exhaustive]` — construct with
/// [`ServeConfig::default`] and the builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with
    /// `overloaded`.
    pub queue: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline_ms: Option<u64>,
    /// For [`serve_listener`]: stop accepting after this many
    /// connections (`None` accepts forever).
    pub max_connections: Option<usize>,
    /// Resolves `"workload"` request names to specs. The CLI injects
    /// `modref_workloads::named_spec`; `None` rejects workload requests
    /// with `unknown_workload`.
    pub workload_resolver: Option<fn(&str) -> Option<Spec>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: modref_partition::thread_count(None),
            queue: 64,
            default_deadline_ms: None,
            max_connections: None,
            workload_resolver: None,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (minimum 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the bounded job-queue capacity (minimum 1).
    #[must_use]
    pub fn queue(mut self, queue: usize) -> Self {
        self.queue = queue.max(1);
        self
    }

    /// Sets the default per-request deadline.
    #[must_use]
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.default_deadline_ms = Some(ms);
        self
    }

    /// Limits [`serve_listener`] to a fixed number of connections.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = Some(n);
        self
    }

    /// Installs the workload-name resolver.
    #[must_use]
    pub fn workload_resolver(mut self, f: fn(&str) -> Option<Spec>) -> Self {
        self.workload_resolver = Some(f);
        self
    }
}

/// What a serve session did, returned by [`serve`] when the input
/// drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeStats {
    /// Requests accepted onto the queue.
    pub accepted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (any structured error, including timeout
    /// and cancellation).
    pub errors: u64,
    /// Failures whose code was `cancelled`.
    pub cancelled: u64,
    /// Failures whose code was `timeout`.
    pub timeouts: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Input lines that did not decode to a request.
    pub malformed: u64,
}

impl ServeStats {
    /// Accumulates another session's counts (used by
    /// [`serve_listener`]).
    pub fn merge(&mut self, other: &ServeStats) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.errors += other.errors;
        self.cancelled += other.cancelled;
        self.timeouts += other.timeouts;
        self.overloaded += other.overloaded;
        self.malformed += other.malformed;
    }
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }
}

/// One queued request: the decoded form, its stop token, and when it
/// was enqueued (for the queue-wait histogram).
struct Job {
    req: Request,
    token: CancelToken,
    span_parent: u64,
    enqueued: Instant,
}

/// In-flight request registry: id → (token, optional deadline).
type Registry = Mutex<HashMap<u64, (CancelToken, Option<Instant>)>>;

/// Locks poison-tolerantly: a panicking worker must not take the whole
/// server down with a poisoned mutex.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn emit<W: Write>(writer: &Mutex<W>, resp: &Response) {
    let mut w = lock(writer);
    // A vanished client is not a server error; keep draining.
    let _ = writeln!(w, "{}", resp.to_json_line());
    let _ = w.flush();
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "operation panicked".to_string()
    }
}

/// Runs one serve session: reads request lines from `reader` until end
/// of input, answers on `writer`, drains queued work, and returns the
/// session's [`ServeStats`]. See the [module docs](self) for the
/// robustness model and an example.
pub fn serve<R: BufRead, W: Write + Send>(reader: R, writer: W, cfg: &ServeConfig) -> ServeStats {
    let stats = AtomicStats::default();
    let registry: Registry = Mutex::new(HashMap::new());
    let writer = Mutex::new(writer);
    let drained = AtomicBool::new(false);
    let session = modref_obs::span("serve.session").attr("workers", cfg.workers.max(1));
    let session_id = session.id();
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue.max(1));
    let rx = Mutex::new(rx);

    thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| s.spawn(|| worker_loop(&rx, &writer, &registry, &stats, cfg)))
            .collect();
        let reaper = s.spawn(|| {
            while !drained.load(Ordering::Relaxed) {
                reap_deadlines(&registry);
                thread::sleep(REAPER_TICK);
            }
        });

        read_loop(reader, &tx, &writer, &registry, &stats, cfg, session_id);

        drop(tx); // close the queue: workers drain and exit
        for w in workers {
            let _ = w.join();
        }
        drained.store(true, Ordering::Relaxed);
        let _ = reaper.join();
    });
    drop(session);
    stats.snapshot()
}

/// Serves one session over stdin/stdout (the `modref serve --stdio`
/// transport).
pub fn serve_stdio(cfg: &ServeConfig) -> ServeStats {
    let stdin = std::io::stdin();
    serve(stdin.lock(), std::io::stdout(), cfg)
}

/// Accepts TCP connections and runs one serve session per connection,
/// concurrently. Stops after [`ServeConfig::max_connections`]
/// connections (forever when `None`) and returns the merged stats of
/// every session.
pub fn serve_listener(listener: TcpListener, cfg: &ServeConfig) -> std::io::Result<ServeStats> {
    let total = Mutex::new(ServeStats::default());
    thread::scope(|s| -> std::io::Result<()> {
        let mut handles = Vec::new();
        let mut accepted = 0usize;
        while cfg.max_connections.is_none_or(|max| accepted < max) {
            let (stream, _) = listener.accept()?;
            accepted += 1;
            let total = &total;
            handles.push(s.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(_) => return,
                };
                let stats = serve(reader, stream, cfg);
                lock(total).merge(&stats);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    })?;
    let stats = *lock(&total);
    Ok(stats)
}

/// The reader half: decodes lines, acknowledges cancels inline, and
/// enqueues everything else with backpressure.
#[allow(clippy::too_many_arguments)]
fn read_loop<R: BufRead, W: Write>(
    reader: R,
    tx: &SyncSender<Job>,
    writer: &Mutex<W>,
    registry: &Registry,
    stats: &AtomicStats,
    cfg: &ServeConfig,
    session_span: u64,
) {
    for line in reader.lines() {
        let Ok(line) = line else {
            break; // unreadable input stream: drain and exit
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::from_json(&line) {
            Ok(req) => req,
            Err(e) => {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.malformed").inc();
                // Salvage the id when the object had one, so the client
                // can still correlate; 0 otherwise.
                let id = modref_obs::json::parse(&line)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.as_obj())
                    .and_then(|o| o.get("id"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                emit(writer, &Response::err(id, &e));
                continue;
            }
        };

        if let RequestOp::Cancel { target } = req.op {
            let found = match lock(registry).get(&target) {
                Some((token, _)) => {
                    token.cancel();
                    true
                }
                None => false,
            };
            modref_obs::counter("serve.cancel_requests").inc();
            emit(
                writer,
                &Response::ok(req.id, ResponseBody::Cancelled { target, found }),
            );
            continue;
        }

        let token = CancelToken::new();
        let deadline = req
            .deadline_ms
            .or(cfg.default_deadline_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        {
            let mut reg = lock(registry);
            if reg.contains_key(&req.id) {
                drop(reg);
                let e = ModrefError::InvalidRequest(format!("id {} is already in flight", req.id));
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                emit(writer, &Response::err(req.id, &e));
                continue;
            }
            reg.insert(req.id, (token.clone(), deadline));
        }

        let id = req.id;
        let job = Job {
            req,
            token,
            span_parent: session_span,
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.accepted").inc();
            }
            Err(TrySendError::Full(_)) => {
                lock(registry).remove(&id);
                stats.overloaded.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.overloaded").inc();
                let e = ModrefError::Overloaded {
                    capacity: cfg.queue.max(1),
                };
                emit(writer, &Response::err(id, &e));
            }
            Err(TrySendError::Disconnected(_)) => {
                lock(registry).remove(&id);
                break; // workers are gone; nothing more can be served
            }
        }
    }
}

/// Expires the token of every in-flight request whose deadline passed.
fn reap_deadlines(registry: &Registry) {
    let now = Instant::now();
    for (token, deadline) in lock(registry).values() {
        if deadline.is_some_and(|d| d <= now) {
            token.expire();
        }
    }
}

/// The worker half: dequeues jobs, executes them with panic isolation,
/// and emits the response.
fn worker_loop<W: Write>(
    rx: &Mutex<mpsc::Receiver<Job>>,
    writer: &Mutex<W>,
    registry: &Registry,
    stats: &AtomicStats,
    cfg: &ServeConfig,
) {
    loop {
        let job = lock(rx).recv();
        let Ok(job) = job else {
            return; // queue closed and drained
        };
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        modref_obs::histogram("serve.queue_ns").record(queue_ns);
        let span = modref_obs::span_under(job.span_parent, "serve.request")
            .attr("op", job.req.op.name())
            .attr("request_id", job.req.id);

        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| execute(&job.req.op, &job.token, cfg)))
            .unwrap_or_else(|payload| Err(ModrefError::Internal(panic_message(payload))));
        modref_obs::histogram("serve.exec_ns").record(started.elapsed().as_nanos() as u64);

        lock(registry).remove(&job.req.id);
        let resp = match result {
            Ok(body) => {
                stats.completed.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.completed").inc();
                Response::ok(job.req.id, body)
            }
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.errors").inc();
                match e {
                    ModrefError::Cancelled => {
                        stats.cancelled.fetch_add(1, Ordering::Relaxed);
                        modref_obs::counter("serve.cancelled").inc();
                    }
                    ModrefError::Timeout => {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        modref_obs::counter("serve.timeout").inc();
                    }
                    _ => {}
                }
                Response::err(job.req.id, &e)
            }
        };
        drop(span);
        emit(writer, &resp);
    }
}

/// Executes one non-cancel operation against a fresh [`Codesign`]
/// session, honoring the request's stop token.
fn execute(
    op: &RequestOp,
    token: &CancelToken,
    cfg: &ServeConfig,
) -> Result<ResponseBody, ModrefError> {
    token.check()?; // the deadline may have expired while queued
    let load = |source: &SpecSource| -> Result<Codesign, ModrefError> {
        match source {
            SpecSource::Text(text) => Codesign::parse("<request>", text),
            SpecSource::Workload(name) => cfg
                .workload_resolver
                .and_then(|resolve| resolve(name))
                .map(Codesign::from_spec)
                .ok_or_else(|| ModrefError::UnknownWorkload(name.clone())),
        }
    };
    match op {
        RequestOp::Parse { source } => Ok(ResponseBody::Parsed(load(source)?.stats())),
        RequestOp::Refine {
            source,
            part,
            model,
        } => {
            let cd = load(source)?;
            let model = crate::api::model_from(u64::from(*model))?;
            let refined = cd.refine(part, model)?;
            Ok(ResponseBody::Refined {
                model: model.number(),
                behaviors: refined.spec.behavior_count(),
                buses: refined.architecture.buses.len(),
                printed_lines: modref_spec::printer::line_count(&refined.spec),
            })
        }
        RequestOp::Estimate { source, part } => Ok(ResponseBody::Estimated {
            report: load(source)?.estimate(part)?,
        }),
        RequestOp::Explore {
            source,
            part,
            seeds,
            threads,
            top,
        } => {
            let cd = load(source)?;
            let mut opts = ExploreOpts::new().cancel(token.clone());
            if let Some(p) = part {
                opts = opts.part(p.clone());
            }
            if let Some(k) = seeds {
                opts = opts.seeds(*k);
            }
            if let Some(t) = threads {
                opts = opts.threads(*t);
            }
            let out = cd.explore(&opts)?;
            Ok(ResponseBody::from_exploration(&out, *top))
        }
        RequestOp::Verify {
            source,
            part,
            seeds,
            threads,
            kernel,
            verify_traces,
        } => {
            let cd = load(source)?;
            let mut eopts = ExploreOpts::new().cancel(token.clone());
            let mut vopts = VerifyOpts::new().cancel(token.clone());
            if let Some(k) = kernel {
                vopts = vopts.kernel(*k);
            }
            if let Some(t) = verify_traces {
                vopts = vopts.check_traces(*t);
            }
            if let Some(p) = part {
                eopts = eopts.part(p.clone());
                vopts = vopts.part(p.clone());
            }
            if let Some(k) = seeds {
                eopts = eopts.seeds(*k);
            }
            if let Some(t) = threads {
                eopts = eopts.threads(*t);
                vopts = vopts.threads(*t);
            }
            let out = cd.explore(&eopts)?;
            let v = cd.verify(&out, &vopts)?;
            Ok(ResponseBody::from_verification(&v))
        }
        RequestOp::Lint {
            source,
            part,
            model,
            deny,
            allow,
        } => {
            let cd = load(source)?;
            let mut opts = LintOpts::new();
            if let Some(p) = part {
                opts = opts.part(p.clone());
            }
            if let Some(n) = model {
                opts = opts.model(crate::api::model_from(u64::from(*n))?);
            }
            for name in deny {
                opts = opts.deny(name.clone());
            }
            for name in allow {
                opts = opts.allow(name.clone());
            }
            Ok(ResponseBody::from_diagnostics(&cd.lint(&opts)?))
        }
        RequestOp::Cancel { .. } => Err(ModrefError::InvalidRequest(
            "cancel is handled by the reader, not the worker pool".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(input: &str, cfg: &ServeConfig) -> (ServeStats, Vec<Response>) {
        let mut out = Vec::new();
        let stats = serve(Cursor::new(input.as_bytes().to_vec()), &mut out, cfg);
        let text = String::from_utf8(out).expect("utf8 output");
        let responses = text
            .lines()
            .map(|l| Response::from_json(l).expect("decodable response"))
            .collect();
        (stats, responses)
    }

    fn resolver(name: &str) -> Option<Spec> {
        modref_workloads::named_spec(name)
    }

    fn cfg() -> ServeConfig {
        ServeConfig::default().workload_resolver(resolver)
    }

    fn line(id: u64, body: &str) -> String {
        format!("{{\"id\":{id},{body}}}\n")
    }

    fn body_of(responses: &[Response], id: u64) -> &ResponseBody {
        &responses
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no response for id {id}"))
            .body
    }

    fn error_code(responses: &[Response], id: u64) -> &str {
        match body_of(responses, id) {
            ResponseBody::Error { code, .. } => code,
            other => panic!("id {id}: expected error, got {other:?}"),
        }
    }

    #[test]
    fn mixed_session_answers_every_id() {
        let mut input = String::new();
        input.push_str(&line(1, r#""op":"parse","workload":"fig2""#));
        input.push_str(&line(2, r#""op":"parse","workload":"nope""#));
        input.push_str(&line(3, r#""op":"lint","workload":"dsp""#));
        input.push_str(&line(
            4,
            r#""op":"explore","workload":"fig2","seeds":1,"top":3"#,
        ));
        input.push_str("this is not json\n");
        input.push_str(&line(5, r#""op":"cancel","target":77"#));
        let (stats, responses) = run(&input, &cfg().workers(2));
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.malformed, 1);
        assert!(matches!(body_of(&responses, 1), ResponseBody::Parsed(_)));
        assert_eq!(error_code(&responses, 2), "unknown_workload");
        assert!(matches!(
            body_of(&responses, 3),
            ResponseBody::Linted { .. }
        ));
        assert!(matches!(
            body_of(&responses, 4),
            ResponseBody::Explored { .. }
        ));
        assert!(matches!(
            body_of(&responses, 5),
            ResponseBody::Cancelled { found: false, .. }
        ));
        // The malformed line got a structured reply with id 0.
        assert_eq!(error_code(&responses, 0), "invalid_request");
        assert_eq!(responses.len(), 6, "one response per line, none dropped");
    }

    #[test]
    fn verify_traces_field_runs_the_trace_check() {
        let mut input = String::new();
        input.push_str(&line(
            1,
            r#""op":"verify","workload":"fig2","seeds":1,"verify_traces":true"#,
        ));
        // Invalid value: strict decode, not a silent default.
        input.push_str(&line(
            2,
            r#""op":"verify","workload":"fig2","verify_traces":"yes""#,
        ));
        let (stats, responses) = run(&input, &cfg().workers(1));
        match body_of(&responses, 1) {
            ResponseBody::Verified { equivalent, .. } => {
                assert!(equivalent, "fig2 front must pass the trace check");
            }
            other => panic!("expected Verified, got {other:?}"),
        }
        assert_eq!(error_code(&responses, 2), "invalid_request");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn cancel_stops_an_inflight_explore() {
        let mut input = String::new();
        input.push_str(&line(
            1,
            r#""op":"explore","workload":"medical","seeds":64"#,
        ));
        input.push_str(&line(2, r#""op":"cancel","target":1"#));
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(error_code(&responses, 1), "cancelled");
        assert!(matches!(
            body_of(&responses, 2),
            ResponseBody::Cancelled {
                target: 1,
                found: true
            }
        ));
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn expired_deadline_is_a_timeout_error() {
        let input = line(
            9,
            r#""op":"explore","workload":"medical","seeds":32,"deadline_ms":1"#,
        );
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(error_code(&responses, 9), "timeout");
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One slow worker, queue of one: of three quick-fire explores at
        // least one cannot fit and must be rejected — but still answered.
        let mut input = String::new();
        for id in 1..=3u64 {
            input.push_str(&line(
                id,
                r#""op":"explore","workload":"medical","seeds":4"#,
            ));
        }
        let (stats, responses) = run(&input, &cfg().workers(1).queue(1));
        assert!(stats.overloaded >= 1, "{stats:?}");
        assert_eq!(stats.accepted + stats.overloaded, 3);
        for id in 1..=3 {
            match body_of(&responses, id) {
                ResponseBody::Explored { .. } => {}
                ResponseBody::Error { code, .. } => assert_eq!(code, "overloaded"),
                other => panic!("id {id}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_inflight_id_is_rejected() {
        let mut input = String::new();
        input.push_str(&line(
            5,
            r#""op":"explore","workload":"medical","seeds":16"#,
        ));
        input.push_str(&line(5, r#""op":"parse","workload":"fig2""#));
        let (stats, responses) = run(&input, &cfg().workers(1).queue(4));
        // Two responses for id 5: one invalid_request (the duplicate,
        // answered inline) and one for whichever request ran.
        let for_five: Vec<_> = responses.iter().filter(|r| r.id == 5).collect();
        assert_eq!(for_five.len(), 2);
        assert!(for_five.iter().any(
            |r| matches!(&r.body, ResponseBody::Error { code, .. } if code == "invalid_request")
        ));
        assert_eq!(stats.malformed, 1);
    }

    #[test]
    fn tcp_transport_serves_a_connection() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            serve_listener(listener, &cfg().workers(1).max_connections(1)).expect("serve")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(line(1, r#""op":"parse","workload":"fig2""#).as_bytes())
            .expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown write");
        let mut lines = Vec::new();
        for l in BufReader::new(&stream).lines() {
            lines.push(l.expect("read line"));
        }
        assert_eq!(lines.len(), 1);
        let resp = Response::from_json(&lines[0]).expect("decodes");
        assert_eq!(resp.id, 1);
        assert!(matches!(resp.body, ResponseBody::Parsed(_)));
        let stats = server.join().expect("join");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn serve_counters_round_trip_through_a_trace() {
        modref_obs::init(modref_obs::ClockMode::Wall);
        let input = line(1, r#""op":"parse","workload":"fig2""#);
        let (stats, _) = run(&input, &cfg().workers(1));
        assert_eq!(stats.completed, 1);
        let trace = modref_obs::shutdown();
        assert!(trace.counter("serve.accepted").unwrap_or(0) >= 1);
        assert!(trace.counter("serve.completed").unwrap_or(0) >= 1);
        assert!(
            !trace.spans_named("serve.request").is_empty(),
            "per-request span recorded"
        );
    }
}
