//! `modref serve` — a long-running concurrent codesign service.
//!
//! The server reads newline-delimited JSON requests (the versioned
//! [`api::Request`](crate::api::Request) wire format, v1 and v2) from
//! one or more byte streams, executes them on a bounded worker pool,
//! and writes one JSON response line per request, tagged with the
//! request's id. Responses may interleave in completion order; ids are
//! what correlate them.
//!
//! Production-scale serving model:
//!
//! * **one shared pool** — [`serve_listener`] multiplexes every TCP
//!   connection onto a single bounded worker pool (one reader thread
//!   per connection, `serve.connections` counter), so a thousand idle
//!   clients cost a thousand parked readers, not a thousand pools;
//! * **spec cache** — specs are content-addressed ([`spec_hash`]) and
//!   parsed once into a shared session ([`ServeConfig::cache_capacity`]
//!   entries, LRU-evicted); the v2 `load_spec` op returns the hash and
//!   later requests — from any connection — reference it, sharing the
//!   parse and the lazily-derived access graph (`serve.cache.hit` /
//!   `.miss` / `.evict` counters);
//! * **streaming** — a v2 request with `"stream":true` receives
//!   incremental `{"event":"progress",...}` frames while its explore or
//!   verify runs; the final response line is byte-identical with
//!   streaming on or off;
//! * **batching** — the v2 `batch` op runs several sub-requests against
//!   one cached session and answers them in a single reply keyed by
//!   sub-id.
//!
//! Robustness model — every failure is a structured response, never a
//! dead server:
//!
//! * **deadlines** — each request may carry `deadline_ms` (or inherit
//!   [`ServeConfig::default_deadline_ms`]); a reaper thread expires the
//!   request's [`CancelToken`] when time runs out and the client gets a
//!   `timeout` error;
//! * **cancellation** — a `cancel` request flips the target's token
//!   (ids are scoped per connection); in-flight explorations stop at
//!   their next checkpoint and answer with a `cancelled` error, while
//!   the cancel itself is acknowledged immediately from the reader
//!   thread;
//! * **disconnect drain** — a client that half-closes its write side
//!   still receives every in-flight response; a client whose socket
//!   *fails on write* is gone, so all of its in-flight work is
//!   cancelled (`serve.disconnects` counter) instead of burning the
//!   pool;
//! * **backpressure** — the job queue is bounded; when it is full new
//!   requests are rejected with an `overloaded` error instead of
//!   buffering without limit;
//! * **panic isolation** — a panicking operation is caught per worker
//!   ([`std::panic::catch_unwind`]); the client gets an `internal`
//!   error and the worker keeps serving;
//! * **graceful drain** — on end of input the queue is closed, queued
//!   work finishes, workers are joined, and [`serve`] returns its
//!   [`ServeStats`].
//!
//! Every request runs under a `serve.request` span with queue-wait,
//! execution-time and end-to-end histograms (`serve.queue_ns`,
//! `serve.exec_ns`, `serve.request_ns`) and `serve.*` counters, so a
//! `--trace` session round-trips through `modref report`.
//!
//! ```
//! use modref_core::api::{Request, RequestOp, Response, SpecSource};
//! use modref_core::serve::{serve, ServeConfig};
//! let spec = "spec tiny;\nvar x : int<16> = 0;\n\
//!             behavior L leaf { x := x + 5; }\n\
//!             behavior T seq { children { L; } }\ntop T;\n";
//! let req = Request::new(1, RequestOp::Parse {
//!     source: SpecSource::Text(spec.into()),
//! });
//! let input = format!("{}\n", req.to_json_line());
//! let mut out = Vec::new();
//! let stats = serve(
//!     std::io::Cursor::new(input.into_bytes()),
//!     &mut out,
//!     &ServeConfig::default().workers(1),
//! );
//! assert_eq!((stats.accepted, stats.completed), (1, 1));
//! let line = String::from_utf8(out).unwrap();
//! assert_eq!(Response::from_json(line.trim()).unwrap().id, 1);
//! ```

mod cache;

pub use cache::spec_hash;

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use modref_spec::Spec;

use crate::api::{
    CancelToken, Codesign, ExploreOpts, LintOpts, ModrefError, Progress, ProgressFn, ProgressFrame,
    Request, RequestOp, Response, ResponseBody, SpecSource, SubResult, VerifyOpts,
};

use cache::SpecCache;

/// How often the deadline reaper scans in-flight requests.
const REAPER_TICK: Duration = Duration::from_millis(2);

/// Server configuration. `#[non_exhaustive]` — construct with
/// [`ServeConfig::default`] and the builder methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with
    /// `overloaded`.
    pub queue: usize,
    /// Bounded spec-cache capacity (parsed sessions, LRU-evicted).
    pub cache_capacity: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline_ms: Option<u64>,
    /// For [`serve_listener`]: stop accepting after this many
    /// connections (`None` accepts forever).
    pub max_connections: Option<usize>,
    /// Resolves `"workload"` request names to specs. The CLI injects
    /// `modref_workloads::named_spec`; `None` rejects workload requests
    /// with `unknown_workload`.
    pub workload_resolver: Option<fn(&str) -> Option<Spec>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: modref_partition::thread_count(None),
            queue: 64,
            cache_capacity: 64,
            default_deadline_ms: None,
            max_connections: None,
            workload_resolver: None,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (minimum 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the bounded job-queue capacity (minimum 1).
    #[must_use]
    pub fn queue(mut self, queue: usize) -> Self {
        self.queue = queue.max(1);
        self
    }

    /// Sets the spec-cache capacity (parsed sessions, minimum 1).
    #[must_use]
    pub fn cache(mut self, entries: usize) -> Self {
        self.cache_capacity = entries.max(1);
        self
    }

    /// Sets the default per-request deadline.
    #[must_use]
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.default_deadline_ms = Some(ms);
        self
    }

    /// Limits [`serve_listener`] to a fixed number of connections.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = Some(n);
        self
    }

    /// Installs the workload-name resolver.
    #[must_use]
    pub fn workload_resolver(mut self, f: fn(&str) -> Option<Spec>) -> Self {
        self.workload_resolver = Some(f);
        self
    }
}

/// What a serve session did, returned by [`serve`] (one connection) or
/// [`serve_listener`] (all connections, which share one pool and one
/// set of counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeStats {
    /// Requests accepted onto the queue.
    pub accepted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (any structured error, including timeout
    /// and cancellation).
    pub errors: u64,
    /// Failures whose code was `cancelled`.
    pub cancelled: u64,
    /// Failures whose code was `timeout`.
    pub timeouts: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Input lines that did not decode to a request.
    pub malformed: u64,
}

impl ServeStats {
    /// Accumulates another session's counts.
    pub fn merge(&mut self, other: &ServeStats) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.errors += other.errors;
        self.cancelled += other.cancelled;
        self.timeouts += other.timeouts;
        self.overloaded += other.overloaded;
        self.malformed += other.malformed;
    }
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    timeouts: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }
}

/// In-flight request registry, keyed `(connection id, request id)` —
/// request ids are client-chosen and only unique per connection.
type Registry = Mutex<HashMap<(u64, u64), (CancelToken, Option<Instant>)>>;

/// The state every connection and worker shares: configuration, the
/// spec cache, the in-flight registry and the counters.
struct Core<'c> {
    cfg: &'c ServeConfig,
    cache: SpecCache,
    registry: Registry,
    stats: AtomicStats,
    session_span: u64,
}

impl<'c> Core<'c> {
    fn new(cfg: &'c ServeConfig, session_span: u64) -> Self {
        Core {
            cfg,
            cache: SpecCache::new(cfg.cache_capacity),
            registry: Mutex::new(HashMap::new()),
            stats: AtomicStats::default(),
            session_span,
        }
    }

    /// Resolves a request's spec source to a (shared, cached) session.
    fn load(&self, source: &SpecSource) -> Result<Arc<Codesign>, ModrefError> {
        match source {
            SpecSource::Text(text) => {
                let hash = spec_hash(text);
                self.cache
                    .get_or_insert(&hash, || Codesign::parse("<request>", text))
            }
            SpecSource::Workload(name) => {
                let resolve = self.cfg.workload_resolver;
                self.cache.get_or_insert(&format!("workload:{name}"), || {
                    resolve
                        .and_then(|f| f(name))
                        .map(Codesign::from_spec)
                        .ok_or_else(|| ModrefError::UnknownWorkload(name.clone()))
                })
            }
            SpecSource::Hash(h) => self.cache.lookup(h).ok_or_else(|| {
                ModrefError::InvalidRequest(format!(
                    "unknown spec hash `{h}` (load it with `load_spec` first)"
                ))
            }),
        }
    }

    /// Cancels every in-flight request of a disconnected connection.
    fn cancel_conn(&self, conn_id: u64) {
        modref_obs::counter("serve.disconnects").inc();
        for ((conn, _), (token, _)) in lock(&self.registry).iter() {
            if *conn == conn_id {
                token.cancel();
            }
        }
    }
}

/// The writer half of one client connection, shared by the reader
/// thread (inline acks) and every worker answering its requests.
struct Conn<'w> {
    id: u64,
    writer: Mutex<Box<dyn Write + Send + 'w>>,
    alive: AtomicBool,
}

impl<'w> Conn<'w> {
    fn new(id: u64, writer: Box<dyn Write + Send + 'w>) -> Self {
        Conn {
            id,
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
        }
    }

    /// Writes one response/frame line. The first write failure marks
    /// the connection dead and cancels its in-flight work — a client
    /// that cannot receive answers should not keep burning the pool.
    fn send(&self, core: &Core<'_>, line: &str) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let failed = {
            let mut w = lock(&self.writer);
            writeln!(w, "{line}").is_err() || w.flush().is_err()
        };
        if failed && self.alive.swap(false, Ordering::SeqCst) {
            core.cancel_conn(self.id);
        }
    }
}

/// One queued request: the decoded form, its stop token, the connection
/// to answer on, and when it was enqueued (for the queue-wait
/// histogram).
struct Job<'w> {
    req: Request,
    token: CancelToken,
    conn: Arc<Conn<'w>>,
    enqueued: Instant,
}

/// Locks poison-tolerantly: a panicking worker must not take the whole
/// server down with a poisoned mutex.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "operation panicked".to_string()
    }
}

/// Runs one serve session: reads request lines from `reader` until end
/// of input, answers on `writer`, drains queued work, and returns the
/// session's [`ServeStats`]. See the [module docs](self) for the
/// serving and robustness model and an example.
pub fn serve<R: BufRead, W: Write + Send>(reader: R, writer: W, cfg: &ServeConfig) -> ServeStats {
    let session = modref_obs::span("serve.session").attr("workers", cfg.workers.max(1));
    let core = Core::new(cfg, session.id());
    let conn = Arc::new(Conn::new(0, Box::new(writer)));
    let (tx, rx) = mpsc::sync_channel::<Job<'_>>(cfg.queue.max(1));
    let rx = Mutex::new(rx);
    let drained = AtomicBool::new(false);

    thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| s.spawn(|| worker_loop(&rx, &core)))
            .collect();
        let reaper = s.spawn(|| {
            while !drained.load(Ordering::Relaxed) {
                reap_deadlines(&core.registry);
                thread::sleep(REAPER_TICK);
            }
        });

        read_loop(reader, &conn, &tx, &core);

        drop(tx); // close the queue: workers drain and exit
        for w in workers {
            let _ = w.join();
        }
        drained.store(true, Ordering::Relaxed);
        let _ = reaper.join();
    });
    drop(session);
    core.stats.snapshot()
}

/// Serves one session over stdin/stdout (the `modref serve --stdio`
/// transport).
pub fn serve_stdio(cfg: &ServeConfig) -> ServeStats {
    let stdin = std::io::stdin();
    serve(stdin.lock(), std::io::stdout(), cfg)
}

/// Accepts TCP connections and multiplexes all of them onto ONE shared
/// bounded worker pool: each connection gets a reader thread, every
/// request lands on the same queue (so [`ServeConfig::queue`] is the
/// global backpressure bound), and the spec cache is shared — two
/// clients loading the same spec share one parse. Stops accepting after
/// [`ServeConfig::max_connections`] connections (forever when `None`),
/// drains, and returns the pooled [`ServeStats`].
pub fn serve_listener(listener: TcpListener, cfg: &ServeConfig) -> std::io::Result<ServeStats> {
    let session = modref_obs::span("serve.session").attr("workers", cfg.workers.max(1));
    let core = Core::new(cfg, session.id());
    let (tx, rx) = mpsc::sync_channel::<Job<'static>>(cfg.queue.max(1));
    let rx = Mutex::new(rx);
    let drained = AtomicBool::new(false);
    let mut accept_err = None;

    thread::scope(|s| {
        let core = &core;
        let rx = &rx;
        let workers: Vec<_> = (0..cfg.workers.max(1))
            .map(|_| s.spawn(move || worker_loop(rx, core)))
            .collect();
        let reaper = s.spawn(|| {
            while !drained.load(Ordering::Relaxed) {
                reap_deadlines(&core.registry);
                thread::sleep(REAPER_TICK);
            }
        });

        let mut readers = Vec::new();
        let mut accepted = 0usize;
        while cfg.max_connections.is_none_or(|max| accepted < max) {
            let (stream, _) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    accept_err = Some(e);
                    break;
                }
            };
            accepted += 1;
            modref_obs::counter("serve.connections").inc();
            let conn_id = accepted as u64;
            let tx = tx.clone();
            readers.push(s.spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let conn = Arc::new(Conn::new(conn_id, Box::new(stream)));
                read_loop(BufReader::new(read_half), &conn, &tx, core);
            }));
        }
        for r in readers {
            let _ = r.join();
        }
        drop(tx); // all reader clones are gone too: workers drain and exit
        for w in workers {
            let _ = w.join();
        }
        drained.store(true, Ordering::Relaxed);
        let _ = reaper.join();
    });
    drop(session);
    match accept_err {
        Some(e) => Err(e),
        None => Ok(core.stats.snapshot()),
    }
}

/// The reader half of one connection: decodes lines, acknowledges
/// cancels inline, and enqueues everything else with backpressure. End
/// of input (including a TCP half-close) just stops reading — in-flight
/// responses still drain to the writer.
fn read_loop<'w, R: BufRead>(
    reader: R,
    conn: &Arc<Conn<'w>>,
    tx: &SyncSender<Job<'w>>,
    core: &Core<'_>,
) {
    for line in reader.lines() {
        let Ok(line) = line else {
            break; // unreadable input stream: drain and exit
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::from_json(&line) {
            Ok(req) => req,
            Err(e) => {
                core.stats.malformed.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.malformed").inc();
                // Salvage the id when the object had one, so the client
                // can still correlate; 0 otherwise.
                let id = modref_obs::json::parse(&line)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.as_obj())
                    .and_then(|o| o.get("id"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0);
                conn.send(core, &Response::err(id, &e).to_json_line());
                continue;
            }
        };

        if let RequestOp::Cancel { target } = req.op {
            let found = match lock(&core.registry).get(&(conn.id, target)) {
                Some((token, _)) => {
                    token.cancel();
                    true
                }
                None => false,
            };
            modref_obs::counter("serve.cancel_requests").inc();
            let resp = Response::ok(req.id, ResponseBody::Cancelled { target, found });
            conn.send(core, &resp.to_json_line());
            continue;
        }

        let token = CancelToken::new();
        let deadline = req
            .deadline_ms
            .or(core.cfg.default_deadline_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        {
            let mut reg = lock(&core.registry);
            if reg.contains_key(&(conn.id, req.id)) {
                drop(reg);
                let e = ModrefError::InvalidRequest(format!("id {} is already in flight", req.id));
                core.stats.malformed.fetch_add(1, Ordering::Relaxed);
                conn.send(core, &Response::err(req.id, &e).to_json_line());
                continue;
            }
            reg.insert((conn.id, req.id), (token.clone(), deadline));
        }

        let id = req.id;
        let job = Job {
            req,
            token,
            conn: Arc::clone(conn),
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                core.stats.accepted.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.accepted").inc();
            }
            Err(TrySendError::Full(_)) => {
                lock(&core.registry).remove(&(conn.id, id));
                core.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.overloaded").inc();
                let e = ModrefError::Overloaded {
                    capacity: core.cfg.queue.max(1),
                };
                conn.send(core, &Response::err(id, &e).to_json_line());
            }
            Err(TrySendError::Disconnected(_)) => {
                lock(&core.registry).remove(&(conn.id, id));
                break; // workers are gone; nothing more can be served
            }
        }
    }
}

/// Expires the token of every in-flight request whose deadline passed.
fn reap_deadlines(registry: &Registry) {
    let now = Instant::now();
    for (token, deadline) in lock(registry).values() {
        if deadline.is_some_and(|d| d <= now) {
            token.expire();
        }
    }
}

/// The worker half: dequeues jobs, executes them with panic isolation
/// (streaming progress frames when asked to), and emits the response on
/// the job's own connection.
fn worker_loop<'w>(rx: &Mutex<mpsc::Receiver<Job<'w>>>, core: &Core<'_>) {
    loop {
        let job = lock(rx).recv();
        let Ok(job) = job else {
            return; // queue closed and drained
        };
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        modref_obs::histogram("serve.queue_ns").record(queue_ns);
        let span = modref_obs::span_under(core.session_span, "serve.request")
            .attr("op", job.req.op.name())
            .attr("request_id", job.req.id)
            .attr("conn", job.conn.id);

        let started = Instant::now();
        let streaming = job.req.stream
            && matches!(
                job.req.op,
                RequestOp::Explore { .. } | RequestOp::Verify { .. }
            );
        let result = if streaming {
            stream_execute(&job, core)
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                execute(&job.req.op, &job.token, core, None)
            }))
            .unwrap_or_else(|payload| Err(ModrefError::Internal(panic_message(payload))))
        };
        modref_obs::histogram("serve.exec_ns").record(started.elapsed().as_nanos() as u64);
        modref_obs::histogram("serve.request_ns").record(job.enqueued.elapsed().as_nanos() as u64);

        lock(&core.registry).remove(&(job.conn.id, job.req.id));
        let resp = match result {
            Ok(body) => {
                core.stats.completed.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.completed").inc();
                Response::ok(job.req.id, body)
            }
            Err(e) => {
                core.stats.errors.fetch_add(1, Ordering::Relaxed);
                modref_obs::counter("serve.errors").inc();
                match e {
                    ModrefError::Cancelled => {
                        core.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                        modref_obs::counter("serve.cancelled").inc();
                    }
                    ModrefError::Timeout => {
                        core.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        modref_obs::counter("serve.timeout").inc();
                    }
                    _ => {}
                }
                Response::err(job.req.id, &e)
            }
        };
        drop(span);
        job.conn.send(core, &resp.to_json_line());
    }
}

/// Executes a streaming request: progress events are forwarded from the
/// operation's callback (which may fire from any exploration thread)
/// through a channel to one forwarder thread that owns the frame
/// ordering on the connection. The forwarder is joined before the final
/// response is emitted, so every frame precedes it.
fn stream_execute<'w>(job: &Job<'w>, core: &Core<'_>) -> Result<ResponseBody, ModrefError> {
    let (ptx, prx) = mpsc::channel::<ProgressFrame>();
    let id = job.req.id;
    let ptx = Mutex::new(ptx);
    let progress = ProgressFn::new(move |p: &Progress| {
        let _ = lock(&ptx).send(ProgressFrame {
            id,
            phase: p.phase.to_string(),
            done: p.done,
            total: p.total,
        });
    });
    thread::scope(|s| {
        let conn = &job.conn;
        let forwarder = s.spawn(move || {
            for frame in prx {
                conn.send(core, &frame.to_json_line());
            }
        });
        let result = catch_unwind(AssertUnwindSafe(|| {
            // `progress` (and every clone the opts hold) drops inside
            // `execute`, closing the channel; the forwarder then drains
            // and exits.
            execute(&job.req.op, &job.token, core, Some(progress))
        }))
        .unwrap_or_else(|payload| Err(ModrefError::Internal(panic_message(payload))));
        let _ = forwarder.join();
        result
    })
}

/// The body of a structured failure, for batch sub-results.
fn error_body(e: &ModrefError) -> ResponseBody {
    ResponseBody::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

/// Executes one non-cancel operation, honoring the request's stop
/// token. Specs resolve through the shared cache; `load_spec` populates
/// it; `batch` runs its items sequentially against one session.
fn execute(
    op: &RequestOp,
    token: &CancelToken,
    core: &Core<'_>,
    progress: Option<ProgressFn>,
) -> Result<ResponseBody, ModrefError> {
    token.check()?; // the deadline may have expired while queued
    match op {
        RequestOp::LoadSpec { text } => {
            let hash = spec_hash(text);
            let cd = core
                .cache
                .get_or_insert(&hash, || Codesign::parse("<request>", text))?;
            Ok(ResponseBody::Loaded {
                hash,
                stats: cd.stats(),
            })
        }
        RequestOp::Batch { items, .. } => {
            let cd = core.load(op.source().expect("batch carries a source"))?;
            let mut results = Vec::with_capacity(items.len());
            for item in items {
                // Deadline and cancellation are batch-level: they fail
                // the whole batch, not one item.
                token.check()?;
                match execute_spec_op(&cd, &item.op, token, None) {
                    Ok(body) => results.push(SubResult {
                        sub: item.sub,
                        body,
                    }),
                    Err(e @ (ModrefError::Cancelled | ModrefError::Timeout)) => return Err(e),
                    Err(e) => results.push(SubResult {
                        sub: item.sub,
                        body: error_body(&e),
                    }),
                }
            }
            Ok(ResponseBody::Batch { results })
        }
        RequestOp::Cancel { .. } => Err(ModrefError::InvalidRequest(
            "cancel is handled by the reader, not the worker pool".into(),
        )),
        op => {
            let cd = core.load(op.source().expect("spec ops carry a source"))?;
            execute_spec_op(&cd, op, token, progress.as_ref())
        }
    }
}

/// Executes one spec-consuming operation against an already-resolved
/// session — the shared tail of direct requests and batch items.
fn execute_spec_op(
    cd: &Codesign,
    op: &RequestOp,
    token: &CancelToken,
    progress: Option<&ProgressFn>,
) -> Result<ResponseBody, ModrefError> {
    match op {
        RequestOp::Parse { .. } => Ok(ResponseBody::Parsed(cd.stats())),
        RequestOp::Refine { part, model, .. } => {
            let model = crate::api::model_from(u64::from(*model))?;
            let refined = cd.refine(part, model)?;
            Ok(ResponseBody::Refined {
                model: model.number(),
                behaviors: refined.spec.behavior_count(),
                buses: refined.architecture.buses.len(),
                printed_lines: modref_spec::printer::line_count(&refined.spec),
            })
        }
        RequestOp::Estimate { part, .. } => Ok(ResponseBody::Estimated {
            report: cd.estimate(part)?,
        }),
        RequestOp::Explore {
            part,
            seeds,
            threads,
            top,
            ..
        } => {
            let mut opts = ExploreOpts::new().with_cancel(token.clone());
            if let Some(pf) = progress {
                opts = opts.with_progress(pf.clone());
            }
            if let Some(p) = part {
                opts = opts.with_part(p.clone());
            }
            if let Some(k) = seeds {
                opts = opts.with_seeds(*k);
            }
            if let Some(t) = threads {
                opts = opts.with_threads(*t);
            }
            let out = cd.explore(&opts)?;
            Ok(ResponseBody::from_exploration(&out, *top))
        }
        RequestOp::Verify {
            part,
            seeds,
            threads,
            sim,
            ..
        } => {
            let mut eopts = ExploreOpts::new().with_cancel(token.clone());
            let mut vopts = VerifyOpts::new().with_cancel(token.clone());
            if let Some(pf) = progress {
                eopts = eopts.with_progress(pf.clone());
                vopts = vopts.with_progress(pf.clone());
            }
            if let Some(k) = sim.kernel {
                vopts = vopts.with_kernel(k);
            }
            if let Some(t) = sim.verify_traces {
                vopts = vopts.with_check_traces(t);
            }
            if let Some(p) = part {
                eopts = eopts.with_part(p.clone());
                vopts = vopts.with_part(p.clone());
            }
            if let Some(k) = seeds {
                eopts = eopts.with_seeds(*k);
            }
            if let Some(t) = threads {
                eopts = eopts.with_threads(*t);
                vopts = vopts.with_threads(*t);
            }
            let out = cd.explore(&eopts)?;
            let v = cd.verify(&out, &vopts)?;
            Ok(ResponseBody::from_verification(&v))
        }
        RequestOp::Lint {
            part,
            model,
            deny,
            allow,
            ..
        } => {
            let mut opts = LintOpts::new();
            if let Some(p) = part {
                opts = opts.with_part(p.clone());
            }
            if let Some(n) = model {
                opts = opts.with_model(crate::api::model_from(u64::from(*n))?);
            }
            for name in deny {
                opts = opts.with_deny(name.clone());
            }
            for name in allow {
                opts = opts.with_allow(name.clone());
            }
            Ok(ResponseBody::from_diagnostics(&cd.lint(&opts)?))
        }
        RequestOp::LoadSpec { .. } | RequestOp::Batch { .. } | RequestOp::Cancel { .. } => Err(
            ModrefError::InvalidRequest(format!("`{}` is not a spec-level operation", op.name())),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(input: &str, cfg: &ServeConfig) -> (ServeStats, Vec<Response>) {
        let mut out = Vec::new();
        let stats = serve(Cursor::new(input.as_bytes().to_vec()), &mut out, cfg);
        let text = String::from_utf8(out).expect("utf8 output");
        let responses = text
            .lines()
            .filter(|l| !ProgressFrame::is_progress_line(l))
            .map(|l| Response::from_json(l).expect("decodable response"))
            .collect();
        (stats, responses)
    }

    fn resolver(name: &str) -> Option<Spec> {
        modref_workloads::named_spec(name)
    }

    fn cfg() -> ServeConfig {
        ServeConfig::default().workload_resolver(resolver)
    }

    fn line(id: u64, body: &str) -> String {
        format!("{{\"id\":{id},{body}}}\n")
    }

    fn body_of(responses: &[Response], id: u64) -> &ResponseBody {
        &responses
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no response for id {id}"))
            .body
    }

    fn error_code(responses: &[Response], id: u64) -> &str {
        match body_of(responses, id) {
            ResponseBody::Error { code, .. } => code,
            other => panic!("id {id}: expected error, got {other:?}"),
        }
    }

    #[test]
    fn mixed_session_answers_every_id() {
        let mut input = String::new();
        input.push_str(&line(1, r#""op":"parse","workload":"fig2""#));
        input.push_str(&line(2, r#""op":"parse","workload":"nope""#));
        input.push_str(&line(3, r#""op":"lint","workload":"dsp""#));
        input.push_str(&line(
            4,
            r#""op":"explore","workload":"fig2","seeds":1,"top":3"#,
        ));
        input.push_str("this is not json\n");
        input.push_str(&line(5, r#""op":"cancel","target":77"#));
        let (stats, responses) = run(&input, &cfg().workers(2));
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.malformed, 1);
        assert!(matches!(body_of(&responses, 1), ResponseBody::Parsed(_)));
        assert_eq!(error_code(&responses, 2), "unknown_workload");
        assert!(matches!(
            body_of(&responses, 3),
            ResponseBody::Linted { .. }
        ));
        assert!(matches!(
            body_of(&responses, 4),
            ResponseBody::Explored { .. }
        ));
        assert!(matches!(
            body_of(&responses, 5),
            ResponseBody::Cancelled { found: false, .. }
        ));
        // The malformed line got a structured reply with id 0.
        assert_eq!(error_code(&responses, 0), "invalid_request");
        assert_eq!(responses.len(), 6, "one response per line, none dropped");
    }

    #[test]
    fn verify_traces_field_runs_the_trace_check() {
        let mut input = String::new();
        input.push_str(&line(
            1,
            r#""op":"verify","workload":"fig2","seeds":1,"verify_traces":true"#,
        ));
        // Invalid value: strict decode, not a silent default.
        input.push_str(&line(
            2,
            r#""op":"verify","workload":"fig2","verify_traces":"yes""#,
        ));
        let (stats, responses) = run(&input, &cfg().workers(1));
        match body_of(&responses, 1) {
            ResponseBody::Verified { equivalent, .. } => {
                assert!(equivalent, "fig2 front must pass the trace check");
            }
            other => panic!("expected Verified, got {other:?}"),
        }
        assert_eq!(error_code(&responses, 2), "invalid_request");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn cancel_stops_an_inflight_explore() {
        let mut input = String::new();
        input.push_str(&line(
            1,
            r#""op":"explore","workload":"medical","seeds":64"#,
        ));
        input.push_str(&line(2, r#""op":"cancel","target":1"#));
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(error_code(&responses, 1), "cancelled");
        assert!(matches!(
            body_of(&responses, 2),
            ResponseBody::Cancelled {
                target: 1,
                found: true
            }
        ));
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn expired_deadline_is_a_timeout_error() {
        let input = line(
            9,
            r#""op":"explore","workload":"medical","seeds":32,"deadline_ms":1"#,
        );
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(error_code(&responses, 9), "timeout");
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One slow worker, queue of one: of three quick-fire explores at
        // least one cannot fit and must be rejected — but still answered.
        let mut input = String::new();
        for id in 1..=3u64 {
            input.push_str(&line(
                id,
                r#""op":"explore","workload":"medical","seeds":4"#,
            ));
        }
        let (stats, responses) = run(&input, &cfg().workers(1).queue(1));
        assert!(stats.overloaded >= 1, "{stats:?}");
        assert_eq!(stats.accepted + stats.overloaded, 3);
        for id in 1..=3 {
            match body_of(&responses, id) {
                ResponseBody::Explored { .. } => {}
                ResponseBody::Error { code, .. } => assert_eq!(code, "overloaded"),
                other => panic!("id {id}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_inflight_id_is_rejected() {
        let mut input = String::new();
        input.push_str(&line(
            5,
            r#""op":"explore","workload":"medical","seeds":16"#,
        ));
        input.push_str(&line(5, r#""op":"parse","workload":"fig2""#));
        let (stats, responses) = run(&input, &cfg().workers(1).queue(4));
        // Two responses for id 5: one invalid_request (the duplicate,
        // answered inline) and one for whichever request ran.
        let for_five: Vec<_> = responses.iter().filter(|r| r.id == 5).collect();
        assert_eq!(for_five.len(), 2);
        assert!(for_five.iter().any(
            |r| matches!(&r.body, ResponseBody::Error { code, .. } if code == "invalid_request")
        ));
        assert_eq!(stats.malformed, 1);
    }

    #[test]
    fn tcp_transport_serves_a_connection() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            serve_listener(listener, &cfg().workers(1).max_connections(1)).expect("serve")
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(line(1, r#""op":"parse","workload":"fig2""#).as_bytes())
            .expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown write");
        let mut lines = Vec::new();
        for l in BufReader::new(&stream).lines() {
            lines.push(l.expect("read line"));
        }
        assert_eq!(lines.len(), 1);
        let resp = Response::from_json(&lines[0]).expect("decodes");
        assert_eq!(resp.id, 1);
        assert!(matches!(resp.body, ResponseBody::Parsed(_)));
        let stats = server.join().expect("join");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn two_connections_share_one_spec_cache() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;
        modref_obs::init(modref_obs::ClockMode::Wall);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            serve_listener(listener, &cfg().workers(2).max_connections(2)).expect("serve")
        });
        let spec = "spec shared;\nvar x : int<16> = 0;\n\
                    behavior L leaf { x := x + 1; }\n\
                    behavior T seq { children { L; } }\ntop T;\n";
        let load = format!(
            "{}\n",
            Request::v2(
                1,
                RequestOp::LoadSpec {
                    text: spec.to_string()
                }
            )
            .to_json_line()
        );
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(load.as_bytes()).expect("send");
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            let mut reply = String::new();
            BufReader::new(&stream)
                .read_line(&mut reply)
                .expect("read reply");
            match Response::from_json(reply.trim()).expect("decodes").body {
                ResponseBody::Loaded { hash, .. } => hashes.push(hash),
                other => panic!("expected Loaded, got {other:?}"),
            }
        }
        let stats = server.join().expect("join");
        assert_eq!(stats.completed, 2);
        assert_eq!(
            hashes[0], hashes[1],
            "content-addressed: same text, same hash"
        );
        assert_eq!(hashes[0], spec_hash(spec));
        let trace = modref_obs::shutdown();
        assert!(
            trace.counter("serve.cache.hit").unwrap_or(0) >= 1,
            "second connection must hit the shared cache"
        );
        assert!(trace.counter("serve.connections").unwrap_or(0) >= 2);
    }

    #[test]
    fn load_spec_then_hash_ops_reuse_the_session() {
        let spec = "spec cached;\nvar x : int<16> = 0;\n\
                    behavior L leaf { x := x + 1; }\n\
                    behavior T seq { children { L; } }\ntop T;\n";
        let hash = spec_hash(spec);
        let mut input = String::new();
        input.push_str(&format!(
            "{}\n",
            Request::v2(
                1,
                RequestOp::LoadSpec {
                    text: spec.to_string()
                }
            )
            .to_json_line()
        ));
        input.push_str(&format!(
            "{{\"v\":2,\"id\":2,\"op\":\"parse\",\"hash\":\"{hash}\"}}\n"
        ));
        input.push_str(&format!(
            "{{\"v\":2,\"id\":3,\"op\":\"lint\",\"hash\":\"{hash}\"}}\n"
        ));
        input.push_str("{\"v\":2,\"id\":4,\"op\":\"parse\",\"hash\":\"ffffffffffffffff\"}\n");
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(stats.completed, 3);
        match body_of(&responses, 1) {
            ResponseBody::Loaded { hash: h, stats } => {
                assert_eq!(h, &hash);
                assert_eq!(stats.name, "cached");
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        assert!(matches!(body_of(&responses, 2), ResponseBody::Parsed(_)));
        assert!(matches!(
            body_of(&responses, 3),
            ResponseBody::Linted { .. }
        ));
        assert_eq!(error_code(&responses, 4), "invalid_request");
    }

    #[test]
    fn batch_answers_every_item_against_one_session() {
        let input = format!(
            "{}\n",
            r#"{"v":2,"id":1,"op":"batch","workload":"fig2","items":[{"sub":1,"op":"parse"},{"sub":2,"op":"refine","part":"not a partition","model":1},{"sub":3,"op":"lint"}]}"#
        );
        let (stats, responses) = run(&input, &cfg().workers(1));
        assert_eq!(stats.completed, 1, "the batch is one request");
        match body_of(&responses, 1) {
            ResponseBody::Batch { results } => {
                assert_eq!(results.len(), 3);
                assert_eq!(results[0].sub, 1);
                assert!(matches!(results[0].body, ResponseBody::Parsed(_)));
                assert!(matches!(
                    &results[1].body,
                    ResponseBody::Error { code, .. } if code == "partition"
                ));
                assert!(matches!(results[2].body, ResponseBody::Linted { .. }));
            }
            other => panic!("expected Batch, got {other:?}"),
        }
    }

    #[test]
    fn streaming_explore_frames_precede_an_unchanged_final_response() {
        let streamed = format!(
            "{}\n",
            Request::v2(
                1,
                RequestOp::Explore {
                    source: SpecSource::Workload("fig2".into()),
                    part: None,
                    seeds: Some(2),
                    threads: Some(1),
                    top: Some(3),
                }
            )
            .with_stream(true)
            .to_json_line()
        );
        let mut out = Vec::new();
        let stats = serve(
            Cursor::new(streamed.into_bytes()),
            &mut out,
            &cfg().workers(1),
        );
        assert_eq!(stats.completed, 1);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 1, "expected progress frames, got {lines:?}");
        let (final_line, frames) = lines.split_last().expect("at least the final response");
        for frame in frames {
            let f = ProgressFrame::from_json(frame).expect("progress frame");
            assert_eq!(f.id, 1);
            assert!(f.done <= f.total, "{f:?}");
        }
        assert!(
            frames
                .iter()
                .any(|l| ProgressFrame::from_json(l).unwrap().phase == "explore.job"),
            "per-seed-job completion frames present"
        );
        let streamed_final = Response::from_json(final_line).expect("final response");
        assert!(matches!(streamed_final.body, ResponseBody::Explored { .. }));

        // Streaming off: byte-identical final response, no frames.
        let plain = format!(
            "{}\n",
            Request::v2(
                1,
                RequestOp::Explore {
                    source: SpecSource::Workload("fig2".into()),
                    part: None,
                    seeds: Some(2),
                    threads: Some(1),
                    top: Some(3),
                }
            )
            .to_json_line()
        );
        let mut out = Vec::new();
        serve(Cursor::new(plain.into_bytes()), &mut out, &cfg().workers(1));
        let plain_text = String::from_utf8(out).expect("utf8");
        assert_eq!(plain_text.trim(), *final_line);
    }

    #[test]
    fn dead_connection_cancels_its_inflight_work() {
        /// A client whose socket fails on every write — the server must
        /// cancel its work, not complete it into the void.
        struct DeadWriter;
        impl Write for DeadWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("peer gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("peer gone"))
            }
        }
        let input = format!(
            "{}\n",
            Request::v2(
                1,
                RequestOp::Explore {
                    source: SpecSource::Workload("medical".into()),
                    part: None,
                    seeds: Some(64),
                    threads: Some(1),
                    top: None,
                }
            )
            .with_stream(true)
            .to_json_line()
        );
        let stats = serve(
            Cursor::new(input.into_bytes()),
            DeadWriter,
            &cfg().workers(1),
        );
        assert_eq!(stats.accepted, 1);
        assert_eq!(
            stats.cancelled, 1,
            "first failed frame write must cancel the in-flight explore: {stats:?}"
        );
    }

    #[test]
    fn serve_counters_round_trip_through_a_trace() {
        modref_obs::init(modref_obs::ClockMode::Wall);
        let input = line(1, r#""op":"parse","workload":"fig2""#);
        let (stats, _) = run(&input, &cfg().workers(1));
        assert_eq!(stats.completed, 1);
        let trace = modref_obs::shutdown();
        assert!(trace.counter("serve.accepted").unwrap_or(0) >= 1);
        assert!(trace.counter("serve.completed").unwrap_or(0) >= 1);
        assert!(trace.counter("serve.cache.miss").unwrap_or(0) >= 1);
        assert!(
            !trace.spans_named("serve.request").is_empty(),
            "per-request span recorded"
        );
    }
}
