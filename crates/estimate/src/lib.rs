//! # modref-estimate
//!
//! Quality-metrics estimation for hardware-software codesign, after the
//! estimators the paper builds on: software estimation from executable
//! specifications (Gong, Gajski & Narayan 1994) and channel/bus
//! transfer-rate analysis (Narayan & Gajski, EDAC 1994).
//!
//! Three layers:
//!
//! * [`latency`] — per-statement timing models. A [`TimingModel`] assigns
//!   costs (in nanoseconds) to operations, assignments, branches and memory
//!   accesses; presets model a mid-90s embedded processor
//!   ([`TimingModel::processor`]) and ASIC datapath logic
//!   ([`TimingModel::asic`]).
//! * [`lifetime`] — behavior *lifetime*: the estimated execution time of
//!   one activation of a behavior, the denominator of the paper's channel
//!   transfer rate.
//! * [`rates`] — channel transfer rates
//!   (`rate(ch) = bits_transferred / lifetime(behavior)`) and bus transfer
//!   rates (the sum of the rates of channels mapped to the bus) — the
//!   Figure 9 metric, in Mbit/s.
//!
//! Plus [`memory`]: memory-size and port estimation for the architecture
//! cost discussion in Section 5.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod latency;
pub mod lifetime;
pub mod memory;
pub mod rates;
pub mod report;

pub use latency::TimingModel;
pub use lifetime::{behavior_lifetime, LifetimeConfig, LifetimeTable};
pub use rates::{bus_rates, channel_rate, BusRateTable, MBITS_PER_BIT_PER_NS};
pub use report::estimation_report;
