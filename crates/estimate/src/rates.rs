//! Channel and bus transfer rates — the paper's Figure 9 metric.
//!
//! The *channel transfer rate* is the rate at which data moves over a
//! channel during the lifetime of the behavior driving it:
//! `rate = bits_per_activation / lifetime`. The *bus transfer rate* is
//! the sum of the rates of all channels mapped to the bus; a high bus rate
//! indicates a hot spot (Section 5 calls out 3636 Mbit/s on Model1's
//! single global bus).

use std::collections::BTreeMap;

use modref_graph::{AccessGraph, Channel, ChannelId};
use modref_spec::{BehaviorId, Spec};

use crate::latency::TimingModel;
use crate::lifetime::{behavior_lifetime, LifetimeConfig};

/// Conversion factor: a rate of 1 bit/ns equals 1000 Mbit/s.
pub const MBITS_PER_BIT_PER_NS: f64 = 1000.0;

/// The transfer rate of a single data channel, in Mbit/s.
///
/// `model_of` supplies the timing model for the channel's behavior —
/// behaviors partitioned to a processor and to an ASIC run at different
/// speeds, so the caller chooses per behavior.
///
/// Control channels have rate 0 (their start/done signalling volume is
/// negligible next to data traffic, as in the paper's accounting).
pub fn channel_rate(
    spec: &Spec,
    channel: &Channel,
    model_of: &impl Fn(BehaviorId) -> TimingModel,
    config: &LifetimeConfig,
) -> f64 {
    let Some(behavior) = channel.behavior() else {
        return 0.0;
    };
    let bits = channel.bits_per_activation();
    if bits == 0.0 {
        return 0.0;
    }
    let lifetime = behavior_lifetime(spec, behavior, &model_of(behavior), config).max(1.0);
    bits / lifetime * MBITS_PER_BIT_PER_NS
}

/// Per-bus transfer rates: bus name → Mbit/s.
///
/// Buses are keyed by name (`b1`, `b2`, ...) to match the paper's tables;
/// the map is ordered so reports print deterministically.
///
/// # Example
///
/// ```
/// use modref_estimate::BusRateTable;
///
/// let mut table = BusRateTable::new();
/// table.add("b1", 853.0);
/// table.add("b2", 2030.0);
/// table.add("b2", 6.0);
/// assert_eq!(table.hot_spot(), Some(("b2", 2036.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusRateTable {
    rates: BTreeMap<String, f64>,
}

impl BusRateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `mbits` to the named bus.
    pub fn add(&mut self, bus: impl Into<String>, mbits: f64) {
        *self.rates.entry(bus.into()).or_insert(0.0) += mbits;
    }

    /// Ensures a bus appears in the table even with zero traffic.
    pub fn touch(&mut self, bus: impl Into<String>) {
        self.rates.entry(bus.into()).or_insert(0.0);
    }

    /// The rate of one bus, or `None` if the bus is unknown.
    pub fn get(&self, bus: &str) -> Option<f64> {
        self.rates.get(bus).copied()
    }

    /// Iterates `(bus, rate)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.rates.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of buses.
    pub fn bus_count(&self) -> usize {
        self.rates.len()
    }

    /// The maximum per-bus rate — the paper's hot-spot indicator.
    pub fn max_rate(&self) -> f64 {
        self.rates.values().copied().fold(0.0, f64::max)
    }

    /// The total traffic over all buses.
    pub fn total_rate(&self) -> f64 {
        self.rates.values().sum()
    }

    /// The bus with the maximum rate, if any.
    pub fn hot_spot(&self) -> Option<(&str, f64)> {
        self.rates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("rates are finite"))
            .map(|(k, v)| (k.as_str(), *v))
    }
}

impl FromIterator<(String, f64)> for BusRateTable {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        let mut t = Self::new();
        for (bus, rate) in iter {
            t.add(bus, rate);
        }
        t
    }
}

/// Computes per-bus transfer rates given a channel→bus mapping.
///
/// `bus_of` maps each data channel to the name of the bus that carries it
/// after refinement, or `None` for channels that stay on-chip next to
/// their variable (local register access without a shared bus).
pub fn bus_rates(
    spec: &Spec,
    graph: &AccessGraph,
    bus_of: &impl Fn(ChannelId) -> Option<String>,
    model_of: &impl Fn(BehaviorId) -> TimingModel,
    config: &LifetimeConfig,
) -> BusRateTable {
    let span = modref_obs::span("estimate.bus_rates");
    let mut table = BusRateTable::new();
    let mut channels = 0u64;
    for ch in graph.data_channels() {
        if let Some(bus) = bus_of(ch.id()) {
            let rate = channel_rate(spec, ch, model_of, config);
            table.add(bus, rate);
            channels += 1;
        }
    }
    drop(
        span.attr("buses", table.bus_count())
            .attr("channels", channels),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    fn simple_spec() -> (Spec, AccessGraph) {
        let mut b = SpecBuilder::new("r");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf(
            "A",
            vec![
                stmt::assign(x, expr::add(expr::var(x), expr::lit(1))),
                stmt::delay(100),
            ],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        (spec, graph)
    }

    #[test]
    fn channel_rate_is_bits_over_lifetime() {
        let (spec, graph) = simple_spec();
        let cfg = LifetimeConfig::default();
        let model = |_| TimingModel::unit();
        // lifetime = assign(1) + op(1) + load(1) + delay(100) = 103 ns
        // read channel: 16 bits -> 16/103 * 1000 Mbit/s
        let read = graph
            .data_channels()
            .find(|c| {
                matches!(
                    c.kind(),
                    modref_graph::ChannelKind::Data {
                        direction: modref_graph::Direction::Read,
                        ..
                    }
                )
            })
            .expect("read channel");
        let rate = channel_rate(&spec, read, &model, &cfg);
        assert!((rate - 16.0 / 103.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bus_rates_sum_channels_on_same_bus() {
        let (spec, graph) = simple_spec();
        let cfg = LifetimeConfig::default();
        let model = |_| TimingModel::unit();
        let table = bus_rates(&spec, &graph, &|_| Some("b1".into()), &model, &cfg);
        assert_eq!(table.bus_count(), 1);
        let single: f64 = graph
            .data_channels()
            .map(|c| channel_rate(&spec, c, &model, &cfg))
            .sum();
        assert!((table.get("b1").unwrap() - single).abs() < 1e-9);
    }

    #[test]
    fn unmapped_channels_do_not_contribute() {
        let (spec, graph) = simple_spec();
        let cfg = LifetimeConfig::default();
        let model = |_| TimingModel::unit();
        let table = bus_rates(&spec, &graph, &|_| None, &model, &cfg);
        assert_eq!(table.bus_count(), 0);
        assert_eq!(table.max_rate(), 0.0);
    }

    #[test]
    fn hot_spot_finds_max_bus() {
        let mut t = BusRateTable::new();
        t.add("b1", 100.0);
        t.add("b2", 3636.0);
        t.add("b3", 50.0);
        assert_eq!(t.hot_spot(), Some(("b2", 3636.0)));
        assert_eq!(t.max_rate(), 3636.0);
        assert_eq!(t.total_rate(), 3786.0);
    }

    #[test]
    fn table_collects_from_iterator() {
        let t: BusRateTable = vec![("b1".to_string(), 1.0), ("b1".to_string(), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(t.get("b1"), Some(3.0));
    }

    #[test]
    fn touch_registers_zero_traffic_bus() {
        let mut t = BusRateTable::new();
        t.touch("b9");
        assert_eq!(t.get("b9"), Some(0.0));
        assert_eq!(t.bus_count(), 1);
    }
}
