//! Behavior lifetime estimation.
//!
//! The paper's channel transfer rate is "the rate at which data is sent
//! during the lifetime of the behaviors communicating over the channel".
//! We estimate a behavior's lifetime as the execution time of one
//! activation under a [`TimingModel`], walking the statement body with the
//! same loop/branch weighting as access counting, and — for composites —
//! summing the lifetimes of children along the sequential schedule.

use std::collections::HashMap;

use modref_spec::stmt::CallArg;
use modref_spec::{BehaviorId, BehaviorKind, Spec, Stmt, WaitCond};

use crate::latency::TimingModel;

/// Structural weighting knobs (mirrors `modref_graph::CountConfig` so the
/// numerator and denominator of a channel rate use consistent estimates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeConfig {
    /// Trip count assumed for `while` loops without an `@hint`.
    pub default_while_trips: u32,
    /// Weight applied to each arm of an `if`.
    pub branch_factor: f64,
    /// Time charged for a `wait until` (synchronization stall estimate).
    pub wait_until_ns: f64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        Self {
            default_while_trips: 4,
            branch_factor: 0.5,
            wait_until_ns: 1000.0,
        }
    }
}

/// Estimated execution time in nanoseconds of one activation of
/// `behavior` under `model`.
///
/// Composites: sequential composites sum their children in declaration
/// order (one pass); concurrent composites take the maximum child
/// lifetime. Both are per-activation estimates; the transfer-rate layer
/// divides traffic by this number.
pub fn behavior_lifetime(
    spec: &Spec,
    behavior: BehaviorId,
    model: &TimingModel,
    config: &LifetimeConfig,
) -> f64 {
    let b = spec.behavior(behavior);
    match b.kind() {
        BehaviorKind::Leaf { body } => stmts_cost(spec, body, model, config),
        BehaviorKind::Seq { children, .. } => children
            .iter()
            .map(|&c| behavior_lifetime(spec, c, model, config))
            .sum(),
        BehaviorKind::Concurrent { children } => children
            .iter()
            .map(|&c| behavior_lifetime(spec, c, model, config))
            .fold(0.0, f64::max),
    }
}

/// A memoization table for [`behavior_lifetime`].
///
/// Partitioning algorithms evaluate the same `(behavior, timing model)`
/// lifetimes thousands of times while exploring moves; this table computes
/// each pair once and serves the cached value afterwards. Keys combine the
/// behavior id with [`TimingModel::fingerprint`], so distinct models (and
/// user-tweaked variants) are cached independently.
///
/// # Example
///
/// ```
/// use modref_estimate::{LifetimeConfig, LifetimeTable, TimingModel};
/// use modref_spec::builder::SpecBuilder;
/// use modref_spec::{expr, stmt};
///
/// let mut b = SpecBuilder::new("t");
/// let x = b.var_int("x", 16, 0);
/// let leaf = b.leaf("L", vec![stmt::assign(x, expr::lit(1))]);
/// let top = b.seq_in_order("Top", vec![leaf]);
/// let spec = b.finish(top)?;
/// let mut table = LifetimeTable::new(LifetimeConfig::default());
/// let first = table.get(&spec, leaf, &TimingModel::processor());
/// let again = table.get(&spec, leaf, &TimingModel::processor());
/// assert_eq!(first, again);
/// assert_eq!(table.len(), 1);
/// # Ok::<(), modref_spec::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LifetimeTable {
    config: LifetimeConfig,
    cache: HashMap<(BehaviorId, u64), f64>,
}

impl LifetimeTable {
    /// Creates an empty table using `config` for every estimate.
    pub fn new(config: LifetimeConfig) -> Self {
        Self {
            config,
            cache: HashMap::new(),
        }
    }

    /// The configuration estimates are computed under.
    pub fn config(&self) -> &LifetimeConfig {
        &self.config
    }

    /// The lifetime of `behavior` under `model`, computed on first use and
    /// served from the cache afterwards. Identical to calling
    /// [`behavior_lifetime`] with the table's config.
    pub fn get(&mut self, spec: &Spec, behavior: BehaviorId, model: &TimingModel) -> f64 {
        let (hit, miss) = hit_miss_counters();
        let key = (behavior, model.fingerprint());
        if let Some(&v) = self.cache.get(&key) {
            hit.inc();
            return v;
        }
        miss.inc();
        let v = behavior_lifetime(spec, behavior, model, &self.config);
        self.cache.insert(key, v);
        v
    }

    /// Number of memoized `(behavior, model)` pairs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// The `lifetime.hit` / `lifetime.miss` counter handles, interned once.
fn hit_miss_counters() -> (modref_obs::Counter, modref_obs::Counter) {
    static CELLS: std::sync::OnceLock<(modref_obs::Counter, modref_obs::Counter)> =
        std::sync::OnceLock::new();
    *CELLS.get_or_init(|| {
        (
            modref_obs::counter("lifetime.hit"),
            modref_obs::counter("lifetime.miss"),
        )
    })
}

fn stmts_cost(spec: &Spec, stmts: &[Stmt], model: &TimingModel, config: &LifetimeConfig) -> f64 {
    stmts
        .iter()
        .map(|s| stmt_cost(spec, s, model, config))
        .sum()
}

fn stmt_cost(spec: &Spec, s: &Stmt, model: &TimingModel, config: &LifetimeConfig) -> f64 {
    match s {
        Stmt::Assign { target, value } => {
            let loads = (value.reads().len() + target.reads().len()) as u32;
            model.assign_ns + model.expr_cost(value.op_count(), loads) + extra_op_cost(value, model)
        }
        Stmt::SignalSet { value, .. } => {
            model.signal_ns + model.expr_cost(value.op_count(), value.reads().len() as u32)
        }
        Stmt::Wait(WaitCond::Until(_)) => config.wait_until_ns,
        Stmt::Wait(WaitCond::For(n)) => *n as f64,
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            model.branch_ns
                + model.expr_cost(cond.op_count(), cond.reads().len() as u32)
                + config.branch_factor * stmts_cost(spec, then_body, model, config)
                + config.branch_factor * stmts_cost(spec, else_body, model, config)
        }
        Stmt::While {
            cond,
            body,
            trip_hint,
        } => {
            let trips = f64::from(trip_hint.unwrap_or(config.default_while_trips));
            let cond_cost = model.expr_cost(cond.op_count(), cond.reads().len() as u32);
            (trips + 1.0) * (cond_cost + model.branch_ns)
                + trips * (stmts_cost(spec, body, model, config) + model.loop_overhead_ns)
        }
        Stmt::For { from, to, body, .. } => {
            let trips = match (
                modref_graph::access::const_value(from),
                modref_graph::access::const_value(to),
            ) {
                (Some(f), Some(t)) if t > f => (t - f) as f64,
                _ => f64::from(config.default_while_trips),
            };
            trips * (stmts_cost(spec, body, model, config) + model.loop_overhead_ns)
        }
        Stmt::Loop { body } => stmts_cost(spec, body, model, config),
        Stmt::Call { sub, args } => {
            let body = spec.subroutine(*sub).body().to_vec();
            let arg_cost: f64 = args
                .iter()
                .map(|a| match a {
                    CallArg::In(e) => model.expr_cost(e.op_count(), e.reads().len() as u32),
                    CallArg::Out(_) => model.assign_ns,
                })
                .sum();
            model.call_ns + arg_cost + stmts_cost(spec, &body, model, config)
        }
        Stmt::Delay(n) => *n as f64,
        Stmt::Skip => 0.0,
    }
}

fn extra_op_cost(e: &modref_spec::Expr, model: &TimingModel) -> f64 {
    use modref_spec::{BinOp, Expr};
    match e {
        Expr::Binary(op, l, r) => {
            let extra = match op {
                BinOp::Mul => model.mul_extra_ns,
                BinOp::Div | BinOp::Rem => model.div_extra_ns,
                _ => 0.0,
            };
            extra + extra_op_cost(l, model) + extra_op_cost(r, model)
        }
        Expr::Unary(_, inner) => extra_op_cost(inner, model),
        Expr::Index(_, idx) => extra_op_cost(idx, model),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    #[test]
    fn leaf_lifetime_counts_statements() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf(
            "A",
            vec![
                stmt::assign(x, expr::lit(1)),
                stmt::assign(x, expr::add(expr::var(x), expr::lit(1))),
            ],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let spec = b.finish(top).expect("valid");
        let m = TimingModel::unit();
        let cfg = LifetimeConfig::default();
        // stmt1: assign(1); stmt2: assign(1) + op(1) + load(1) = 3
        assert_eq!(behavior_lifetime(&spec, a, &m, &cfg), 4.0);
    }

    #[test]
    fn seq_sums_and_conc_maxes() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let a1 = b.leaf("A1", vec![stmt::assign(x, expr::lit(1))]);
        let a2 = b.leaf(
            "A2",
            vec![stmt::assign(x, expr::lit(1)), stmt::assign(x, expr::lit(2))],
        );
        let s = b.seq_in_order("S", vec![a1, a2]);
        let b1 = b.leaf("B1", vec![stmt::assign(x, expr::lit(1))]);
        let b2 = b.leaf(
            "B2",
            vec![stmt::assign(x, expr::lit(1)), stmt::assign(x, expr::lit(2))],
        );
        let p = b.concurrent("P", vec![b1, b2]);
        let top = b.seq_in_order("Top", vec![s, p]);
        let spec = b.finish(top).expect("valid");
        let m = TimingModel::unit();
        let cfg = LifetimeConfig::default();
        assert_eq!(behavior_lifetime(&spec, s, &m, &cfg), 3.0);
        assert_eq!(behavior_lifetime(&spec, p, &m, &cfg), 2.0);
        assert_eq!(behavior_lifetime(&spec, top, &m, &cfg), 5.0);
    }

    #[test]
    fn while_scales_with_trip_hint() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let small = b.leaf(
            "Small",
            vec![stmt::while_loop_hinted(
                expr::lt(expr::var(x), expr::lit(2)),
                vec![stmt::assign(x, expr::lit(1))],
                2,
            )],
        );
        let big = b.leaf(
            "Big",
            vec![stmt::while_loop_hinted(
                expr::lt(expr::var(x), expr::lit(100)),
                vec![stmt::assign(x, expr::lit(1))],
                100,
            )],
        );
        let top = b.seq_in_order("Top", vec![small, big]);
        let spec = b.finish(top).expect("valid");
        let m = TimingModel::unit();
        let cfg = LifetimeConfig::default();
        let ls = behavior_lifetime(&spec, small, &m, &cfg);
        let lb = behavior_lifetime(&spec, big, &m, &cfg);
        assert!(lb > 20.0 * ls);
    }

    #[test]
    fn multiplies_cost_more_than_adds() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let adds = b.leaf(
            "Adds",
            vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
        );
        let muls = b.leaf(
            "Muls",
            vec![stmt::assign(x, expr::mul(expr::var(x), expr::lit(3)))],
        );
        let top = b.seq_in_order("Top", vec![adds, muls]);
        let spec = b.finish(top).expect("valid");
        let m = TimingModel::processor();
        let cfg = LifetimeConfig::default();
        assert!(
            behavior_lifetime(&spec, muls, &m, &cfg) > behavior_lifetime(&spec, adds, &m, &cfg)
        );
    }

    #[test]
    fn table_matches_direct_computation() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf(
            "A",
            vec![
                stmt::assign(x, expr::mul(expr::var(x), expr::lit(3))),
                stmt::delay(10),
            ],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let spec = b.finish(top).expect("valid");
        let cfg = LifetimeConfig::default();
        let mut table = LifetimeTable::new(cfg);
        for behavior in [a, top] {
            for model in [
                TimingModel::processor(),
                TimingModel::asic(),
                TimingModel::unit(),
            ] {
                let direct = behavior_lifetime(&spec, behavior, &model, &cfg);
                assert_eq!(table.get(&spec, behavior, &model), direct);
                // Second lookup hits the cache and returns the same value.
                assert_eq!(table.get(&spec, behavior, &model), direct);
            }
        }
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn asic_behaviors_run_faster_than_processor() {
        let mut b = SpecBuilder::new("t");
        let x = b.var_int("x", 16, 0);
        let a = b.leaf(
            "A",
            vec![stmt::for_loop(
                x,
                expr::lit(0),
                expr::lit(10),
                vec![stmt::skip()],
            )],
        );
        let top = b.seq_in_order("Top", vec![a]);
        let spec = b.finish(top).expect("valid");
        let cfg = LifetimeConfig::default();
        let on_proc = behavior_lifetime(&spec, a, &TimingModel::processor(), &cfg);
        let on_asic = behavior_lifetime(&spec, a, &TimingModel::asic(), &cfg);
        assert!(on_proc > 10.0 * on_asic);
    }
}
