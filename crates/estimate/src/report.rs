//! Human-readable estimation reports: per-behavior lifetimes and
//! per-channel transfer rates, the raw material behind Figure 9.

use std::fmt::Write as _;

use modref_graph::{AccessGraph, ChannelKind, Direction};
use modref_spec::{BehaviorId, Spec};

use crate::latency::TimingModel;
use crate::lifetime::{behavior_lifetime, LifetimeConfig};
use crate::rates::channel_rate;

/// Renders a full estimation report for a spec under a per-behavior
/// timing-model assignment (pass a closure resolving each behavior to
/// the timing model of its component).
pub fn estimation_report(
    spec: &Spec,
    graph: &AccessGraph,
    model_of: &impl Fn(BehaviorId) -> TimingModel,
    config: &LifetimeConfig,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "estimation report for `{}`", spec.name());
    let _ = writeln!(out);
    let _ = writeln!(out, "behavior lifetimes (per activation):");
    for leaf in spec.leaves() {
        let model = model_of(leaf);
        let t = behavior_lifetime(spec, leaf, &model, config);
        let _ = writeln!(
            out,
            "  {:<20} {:>12.0} ns  ({})",
            spec.behavior(leaf).name(),
            t,
            model.name
        );
    }
    if let Some(top) = spec.top_opt() {
        let t = behavior_lifetime(spec, top, &model_of(top), config);
        let _ = writeln!(out, "  {:<20} {:>12.0} ns  (whole system)", "total", t);
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "channel transfer rates:");
    let mut rows: Vec<(f64, String)> = Vec::new();
    for ch in graph.data_channels() {
        let ChannelKind::Data {
            behavior,
            var,
            direction,
            accesses,
            bits_per_access,
            ..
        } = ch.kind()
        else {
            continue;
        };
        let rate = channel_rate(spec, ch, model_of, config);
        let arrow = match direction {
            Direction::Read => "reads",
            Direction::Write => "writes",
        };
        rows.push((
            rate,
            format!(
                "  {:<16} {arrow:<6} {:<12} {:>7.1} Mbit/s ({:.0} x {} bits)",
                spec.behavior(*behavior).name(),
                spec.variable(*var).name(),
                rate,
                accesses,
                bits_per_access
            ),
        ));
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("rates are finite"));
    for (_, line) in &rows {
        let _ = writeln!(out, "{line}");
    }
    let total: f64 = rows.iter().map(|(r, _)| r).sum();
    let _ = writeln!(out, "  total channel traffic: {total:.1} Mbit/s");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::{expr, stmt};

    #[test]
    fn report_lists_behaviors_and_channels_by_rate() {
        let mut b = SpecBuilder::new("rep");
        let x = b.var_int("x", 16, 0);
        let hot = b.leaf(
            "Hot",
            vec![
                stmt::assign(x, expr::add(expr::var(x), expr::lit(1))),
                stmt::assign(x, expr::add(expr::var(x), expr::lit(2))),
            ],
        );
        let cold = b.leaf(
            "Cold",
            vec![stmt::assign(x, expr::lit(9)), stmt::delay(100_000)],
        );
        let top = b.seq_in_order("Top", vec![hot, cold]);
        let spec = b.finish(top).unwrap();
        let graph = AccessGraph::derive(&spec);
        let report = estimation_report(
            &spec,
            &graph,
            &|_| TimingModel::processor(),
            &LifetimeConfig::default(),
        );
        assert!(report.contains("Hot"));
        assert!(report.contains("Cold"));
        assert!(report.contains("total channel traffic"));
        // Hot's channels outrank Cold's: Hot appears first in the rate list.
        let hot_pos = report.find("  Hot ").expect("hot row");
        let cold_pos = report.find("  Cold ").expect("cold row");
        assert!(hot_pos < cold_pos, "{report}");
    }
}
