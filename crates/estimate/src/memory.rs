//! Memory sizing and pin estimation.
//!
//! Section 5 of the paper weighs design cost by the number of memories,
//! their sizes, and bus interfaces. These helpers size a memory module
//! from the variables mapped into it and estimate the pins a bus consumes
//! on a component boundary.

use modref_spec::{Spec, VarId};

/// Size in bits of a memory holding the given variables.
pub fn memory_bits(spec: &Spec, vars: &[VarId]) -> u64 {
    vars.iter()
        .map(|&v| u64::from(spec.variable(v).ty().bit_width()))
        .sum()
}

/// Number of addressable words in a memory holding the given variables
/// (each scalar is one word; each array element is one word).
pub fn memory_words(spec: &Spec, vars: &[VarId]) -> u64 {
    vars.iter()
        .map(|&v| u64::from(spec.variable(v).ty().element_count()))
        .sum()
}

/// Width in bits of the address needed to select among `words` words.
pub fn address_width(words: u64) -> u32 {
    if words <= 1 {
        1
    } else {
        64 - (words - 1).leading_zeros()
    }
}

/// Width in bits of the widest single access among the given variables —
/// the data-bus width a memory port must provide.
pub fn data_width(spec: &Spec, vars: &[VarId]) -> u32 {
    vars.iter()
        .map(|&v| spec.variable(v).ty().access_width())
        .max()
        .unwrap_or(0)
}

/// Pins one bus occupies on a component boundary: data + address + the
/// four control lines of the paper's Figure 5(d) handshake
/// (`bus_start`, `bus_done`, `bus_rd`, `bus_wr`).
pub fn bus_pins(data_bits: u32, addr_bits: u32) -> u32 {
    data_bits + addr_bits + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_spec::builder::SpecBuilder;
    use modref_spec::types::{DataType, ScalarType};

    #[test]
    fn sizes_accumulate_over_variables() {
        let mut b = SpecBuilder::new("m");
        let x = b.var_int("x", 16, 0);
        let arr = b.var("a", DataType::array(ScalarType::Int(8), 32), 0);
        let leaf = b.leaf("L", vec![]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).expect("valid");
        assert_eq!(memory_bits(&spec, &[x, arr]), 16 + 256);
        assert_eq!(memory_words(&spec, &[x, arr]), 1 + 32);
        assert_eq!(data_width(&spec, &[x, arr]), 16);
    }

    #[test]
    fn address_width_is_ceil_log2() {
        assert_eq!(address_width(0), 1);
        assert_eq!(address_width(1), 1);
        assert_eq!(address_width(2), 1);
        assert_eq!(address_width(3), 2);
        assert_eq!(address_width(16), 4);
        assert_eq!(address_width(17), 5);
    }

    #[test]
    fn bus_pins_count_handshake_lines() {
        assert_eq!(bus_pins(16, 4), 24);
        assert_eq!(bus_pins(0, 0), 4);
    }
}
