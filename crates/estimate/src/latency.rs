//! Per-statement timing models.
//!
//! A [`TimingModel`] assigns a cost in nanoseconds to every primitive
//! construct of the statement language. The presets are calibrated to the
//! paper's era: [`TimingModel::processor`] approximates a mid-90s embedded
//! processor running compiled code (the paper's Intel 8086-class PROC
//! component), and [`TimingModel::asic`] approximates synthesized datapath
//! logic clocked around 50 MHz. Absolute values matter less than the
//! ratio between computation time and data volume — that ratio sets the
//! Figure 9 transfer rates.

/// Cost (ns) of each primitive construct, plus structural factors shared
/// with access counting.
///
/// # Example
///
/// ```
/// use modref_estimate::TimingModel;
///
/// let proc = TimingModel::processor();
/// let asic = TimingModel::asic();
/// // An 8086-class instruction costs over an order of magnitude more
/// // than one synthesized datapath operation.
/// assert!(proc.op_ns > 10.0 * asic.op_ns);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// Human-readable name ("8086", "asic", ...).
    pub name: &'static str,
    /// Cost of one ALU-class operation (add, compare, shift...).
    pub op_ns: f64,
    /// Extra cost of a multiply.
    pub mul_extra_ns: f64,
    /// Extra cost of a divide/remainder.
    pub div_extra_ns: f64,
    /// Cost of a variable assignment (register/memory store).
    pub assign_ns: f64,
    /// Cost of reading a variable (register/memory load).
    pub load_ns: f64,
    /// Cost of evaluating a branch and redirecting control.
    pub branch_ns: f64,
    /// Per-iteration loop overhead (increment + test + jump).
    pub loop_overhead_ns: f64,
    /// Cost of a signal assignment (I/O port or wire drive).
    pub signal_ns: f64,
    /// Cost of a subroutine call/return pair.
    pub call_ns: f64,
    /// Cost of one bus handshake phase (used when estimating protocol
    /// subroutine bodies that consist mostly of waits and signal sets).
    pub handshake_ns: f64,
}

impl TimingModel {
    /// A mid-90s embedded processor (8086-class, ~8 MHz effective).
    /// Costs are in the hundreds of nanoseconds per instruction.
    pub fn processor() -> Self {
        Self {
            name: "proc8086",
            op_ns: 375.0, // ~3 cycles @ 8 MHz
            mul_extra_ns: 1500.0,
            div_extra_ns: 2500.0,
            assign_ns: 500.0,
            load_ns: 375.0,
            branch_ns: 625.0,
            loop_overhead_ns: 750.0,
            signal_ns: 500.0,
            call_ns: 1250.0,
            handshake_ns: 1000.0,
        }
    }

    /// Synthesized ASIC datapath logic clocked around 50 MHz: one
    /// operation per 20 ns cycle, chained ops sharing cycles.
    pub fn asic() -> Self {
        Self {
            name: "asic",
            op_ns: 20.0,
            mul_extra_ns: 40.0,
            div_extra_ns: 100.0,
            assign_ns: 20.0,
            load_ns: 20.0,
            branch_ns: 20.0,
            loop_overhead_ns: 20.0,
            signal_ns: 20.0,
            call_ns: 40.0,
            handshake_ns: 40.0,
        }
    }

    /// A uniform unit-cost model, handy in tests where proportionality is
    /// what matters.
    pub fn unit() -> Self {
        Self {
            name: "unit",
            op_ns: 1.0,
            mul_extra_ns: 0.0,
            div_extra_ns: 0.0,
            assign_ns: 1.0,
            load_ns: 1.0,
            branch_ns: 1.0,
            loop_overhead_ns: 1.0,
            signal_ns: 1.0,
            call_ns: 1.0,
            handshake_ns: 1.0,
        }
    }

    /// Cost of evaluating an expression with `ops` operator nodes and
    /// `loads` variable/signal reads.
    pub fn expr_cost(&self, ops: u32, loads: u32) -> f64 {
        f64::from(ops) * self.op_ns + f64::from(loads) * self.load_ns
    }

    /// A stable 64-bit fingerprint of the model's parameters, usable as a
    /// memoization key (two models with identical parameters share it).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for field in [
            self.op_ns,
            self.mul_extra_ns,
            self.div_extra_ns,
            self.assign_ns,
            self.load_ns,
            self.branch_ns,
            self.loop_overhead_ns,
            self.signal_ns,
            self.call_ns,
            self.handshake_ns,
        ] {
            mix(field.to_bits());
        }
        h
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::processor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_is_much_slower_than_asic() {
        let p = TimingModel::processor();
        let a = TimingModel::asic();
        assert!(p.op_ns > 10.0 * a.op_ns);
        assert!(p.assign_ns > 10.0 * a.assign_ns);
    }

    #[test]
    fn expr_cost_scales_linearly() {
        let m = TimingModel::unit();
        assert_eq!(m.expr_cost(2, 3), 5.0);
        assert_eq!(m.expr_cost(0, 0), 0.0);
    }

    #[test]
    fn default_is_processor() {
        assert_eq!(TimingModel::default().name, "proc8086");
    }

    #[test]
    fn fingerprints_distinguish_models() {
        assert_eq!(
            TimingModel::processor().fingerprint(),
            TimingModel::processor().fingerprint()
        );
        assert_ne!(
            TimingModel::processor().fingerprint(),
            TimingModel::asic().fingerprint()
        );
        let mut tweaked = TimingModel::asic();
        tweaked.op_ns += 1.0;
        assert_ne!(tweaked.fingerprint(), TimingModel::asic().fingerprint());
    }
}
