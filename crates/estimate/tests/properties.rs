//! Property-based tests for the estimators: structural monotonicity and
//! scaling laws that must hold regardless of the statement mix.

use proptest::prelude::*;

use modref_estimate::{behavior_lifetime, LifetimeConfig, TimingModel};
use modref_spec::builder::SpecBuilder;
use modref_spec::{expr, stmt, Spec, Stmt, VarId};

/// A tiny statement generator over two variables (no waits/loops with
/// unbounded trips, so costs are finite and deterministic).
fn arb_stmt(x: VarId, y: VarId) -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0i64..100).prop_map(move |k| stmt::assign(x, expr::lit(k))),
        (0i64..100).prop_map(move |k| stmt::assign(y, expr::add(expr::var(x), expr::lit(k)))),
        (0i64..100).prop_map(move |k| stmt::assign(x, expr::mul(expr::var(y), expr::lit(k)))),
        (1u64..50).prop_map(stmt::delay),
        Just(stmt::skip()),
        (0i64..10).prop_map(move |k| {
            stmt::if_else(
                expr::gt(expr::var(x), expr::lit(k)),
                vec![stmt::assign(y, expr::lit(k))],
                vec![stmt::assign(y, expr::lit(-k))],
            )
        }),
        (1u32..6).prop_map(move |trips| {
            stmt::while_loop_hinted(
                expr::gt(expr::var(x), expr::lit(0)),
                vec![stmt::assign(x, expr::sub(expr::var(x), expr::lit(1)))],
                trips,
            )
        }),
    ]
}

fn build(body: Vec<Stmt>) -> (Spec, modref_spec::BehaviorId) {
    let mut b = SpecBuilder::new("est");
    let _x = b.var_int("x", 16, 0);
    let _y = b.var_int("y", 16, 0);
    let leaf = b.leaf("L", body);
    let top = b.seq_in_order("Top", vec![leaf]);
    (b.finish(top).expect("valid"), leaf)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Appending a statement never decreases the lifetime.
    #[test]
    fn lifetime_is_monotone_in_statements(
        body in proptest::collection::vec(arb_stmt(VarId::from_raw(0), VarId::from_raw(1)), 0..8),
        extra in arb_stmt(VarId::from_raw(0), VarId::from_raw(1)),
    ) {
        let cfg = LifetimeConfig::default();
        let model = TimingModel::processor();
        let (spec_a, leaf_a) = build(body.clone());
        let before = behavior_lifetime(&spec_a, leaf_a, &model, &cfg);
        let mut longer = body;
        longer.push(extra);
        let (spec_b, leaf_b) = build(longer);
        let after = behavior_lifetime(&spec_b, leaf_b, &model, &cfg);
        prop_assert!(after >= before, "{after} < {before}");
    }

    /// The processor model is never faster than the ASIC model on the
    /// same body (every primitive costs at least as much).
    #[test]
    fn processor_is_never_faster_than_asic(
        body in proptest::collection::vec(arb_stmt(VarId::from_raw(0), VarId::from_raw(1)), 1..8),
    ) {
        let cfg = LifetimeConfig::default();
        let (spec, leaf) = build(body);
        let on_proc = behavior_lifetime(&spec, leaf, &TimingModel::processor(), &cfg);
        let on_asic = behavior_lifetime(&spec, leaf, &TimingModel::asic(), &cfg);
        prop_assert!(on_proc >= on_asic, "{on_proc} < {on_asic}");
    }

    /// Lifetime is finite and non-negative for any generated body.
    #[test]
    fn lifetime_is_finite(
        body in proptest::collection::vec(arb_stmt(VarId::from_raw(0), VarId::from_raw(1)), 0..10),
    ) {
        let cfg = LifetimeConfig::default();
        let (spec, leaf) = build(body);
        for model in [TimingModel::processor(), TimingModel::asic(), TimingModel::unit()] {
            let t = behavior_lifetime(&spec, leaf, &model, &cfg);
            prop_assert!(t.is_finite());
            prop_assert!(t >= 0.0);
        }
    }
}

#[test]
fn bus_rate_scales_linearly_with_variable_width() {
    use modref_estimate::rates::channel_rate;
    use modref_graph::AccessGraph;

    let rate_for_width = |width: u16| -> f64 {
        let mut b = SpecBuilder::new("w");
        let x = b.var(format!("x{width}"), modref_spec::DataType::int(width), 0);
        let leaf = b.leaf("L", vec![stmt::assign(x, expr::lit(1)), stmt::delay(1000)]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        let ch = graph.data_channels().next().expect("one channel");
        channel_rate(
            &spec,
            ch,
            &|_| TimingModel::unit(),
            &LifetimeConfig::default(),
        )
    };
    let r8 = rate_for_width(8);
    let r32 = rate_for_width(32);
    assert!((r32 / r8 - 4.0).abs() < 1e-9, "r8={r8} r32={r32}");
}
