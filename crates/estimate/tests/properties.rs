//! Property-based tests for the estimators: structural monotonicity and
//! scaling laws that must hold regardless of the statement mix. Driven
//! by a seeded PRNG (`modref_rng`) instead of proptest so the suite
//! builds offline.

use modref_rng::Rng;

use modref_estimate::{behavior_lifetime, LifetimeConfig, TimingModel};
use modref_spec::builder::SpecBuilder;
use modref_spec::{expr, stmt, Spec, Stmt, VarId};

/// A tiny statement generator over two variables (no waits/loops with
/// unbounded trips, so costs are finite and deterministic).
fn arb_stmt(rng: &mut Rng, x: VarId, y: VarId) -> Stmt {
    match rng.gen_range(0..7u32) {
        0 => stmt::assign(x, expr::lit(rng.gen_range(0..100i64))),
        1 => stmt::assign(
            y,
            expr::add(expr::var(x), expr::lit(rng.gen_range(0..100i64))),
        ),
        2 => stmt::assign(
            x,
            expr::mul(expr::var(y), expr::lit(rng.gen_range(0..100i64))),
        ),
        3 => stmt::delay(rng.gen_range(1..50u64)),
        4 => stmt::skip(),
        5 => {
            let k = rng.gen_range(0..10i64);
            stmt::if_else(
                expr::gt(expr::var(x), expr::lit(k)),
                vec![stmt::assign(y, expr::lit(k))],
                vec![stmt::assign(y, expr::lit(-k))],
            )
        }
        _ => {
            let trips = rng.gen_range(1..6u32);
            stmt::while_loop_hinted(
                expr::gt(expr::var(x), expr::lit(0)),
                vec![stmt::assign(x, expr::sub(expr::var(x), expr::lit(1)))],
                trips,
            )
        }
    }
}

fn arb_body(rng: &mut Rng, min: usize, max: usize) -> Vec<Stmt> {
    let n = rng.gen_range(min..max);
    (0..n)
        .map(|_| arb_stmt(rng, VarId::from_raw(0), VarId::from_raw(1)))
        .collect()
}

fn build(body: Vec<Stmt>) -> (Spec, modref_spec::BehaviorId) {
    let mut b = SpecBuilder::new("est");
    let _x = b.var_int("x", 16, 0);
    let _y = b.var_int("y", 16, 0);
    let leaf = b.leaf("L", body);
    let top = b.seq_in_order("Top", vec![leaf]);
    (b.finish(top).expect("valid"), leaf)
}

/// Appending a statement never decreases the lifetime.
#[test]
fn lifetime_is_monotone_in_statements() {
    let mut rng = Rng::seed_from_u64(0xE571_0001);
    for case in 0..64 {
        let body = arb_body(&mut rng, 0, 8);
        let extra = arb_stmt(&mut rng, VarId::from_raw(0), VarId::from_raw(1));
        let cfg = LifetimeConfig::default();
        let model = TimingModel::processor();
        let (spec_a, leaf_a) = build(body.clone());
        let before = behavior_lifetime(&spec_a, leaf_a, &model, &cfg);
        let mut longer = body;
        longer.push(extra);
        let (spec_b, leaf_b) = build(longer);
        let after = behavior_lifetime(&spec_b, leaf_b, &model, &cfg);
        assert!(after >= before, "case {case}: {after} < {before}");
    }
}

/// The processor model is never faster than the ASIC model on the
/// same body (every primitive costs at least as much).
#[test]
fn processor_is_never_faster_than_asic() {
    let mut rng = Rng::seed_from_u64(0xE571_0002);
    for case in 0..64 {
        let body = arb_body(&mut rng, 1, 8);
        let cfg = LifetimeConfig::default();
        let (spec, leaf) = build(body);
        let on_proc = behavior_lifetime(&spec, leaf, &TimingModel::processor(), &cfg);
        let on_asic = behavior_lifetime(&spec, leaf, &TimingModel::asic(), &cfg);
        assert!(on_proc >= on_asic, "case {case}: {on_proc} < {on_asic}");
    }
}

/// Lifetime is finite and non-negative for any generated body.
#[test]
fn lifetime_is_finite() {
    let mut rng = Rng::seed_from_u64(0xE571_0003);
    for case in 0..64 {
        let body = arb_body(&mut rng, 0, 10);
        let cfg = LifetimeConfig::default();
        let (spec, leaf) = build(body);
        for model in [
            TimingModel::processor(),
            TimingModel::asic(),
            TimingModel::unit(),
        ] {
            let t = behavior_lifetime(&spec, leaf, &model, &cfg);
            assert!(t.is_finite(), "case {case}");
            assert!(t >= 0.0, "case {case}");
        }
    }
}

#[test]
fn bus_rate_scales_linearly_with_variable_width() {
    use modref_estimate::rates::channel_rate;
    use modref_graph::AccessGraph;

    let rate_for_width = |width: u16| -> f64 {
        let mut b = SpecBuilder::new("w");
        let x = b.var(format!("x{width}"), modref_spec::DataType::int(width), 0);
        let leaf = b.leaf("L", vec![stmt::assign(x, expr::lit(1)), stmt::delay(1000)]);
        let top = b.seq_in_order("Top", vec![leaf]);
        let spec = b.finish(top).expect("valid");
        let graph = AccessGraph::derive(&spec);
        let ch = graph.data_channels().next().expect("one channel");
        channel_rate(
            &spec,
            ch,
            &|_| TimingModel::unit(),
            &LifetimeConfig::default(),
        )
    };
    let r8 = rate_for_width(8);
    let r32 = rate_for_width(32);
    assert!((r32 / r8 - 4.0).abs() < 1e-9, "r8={r8} r32={r32}");
}
