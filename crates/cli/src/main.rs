//! `modref` — the command-line driver for the codesign flow.
//!
//! ```text
//! modref check    <spec>                 parse + validate, print stats
//! modref lint     <spec>                 static analysis: all lint families
//! modref print    <spec>                 re-print the canonical form
//! modref graph    <spec>                 list derived channels
//! modref simulate <spec>                 run and print final state
//! modref refine   <spec> -p <part> -m N  refine to ModelN, print result
//! modref rates    <spec> -p <part>       Figure 9 rate table, all models
//! modref explore  <spec> [--seeds K]     parallel multi-start exploration
//! modref serve    --stdio|--listen ADDR  concurrent JSONL codesign service
//! modref report   <trace.jsonl>          render a recorded trace
//! modref demo     <dir>                  write the example files
//! ```
//!
//! Every spec-taking command goes through one [`Codesign`] session: the
//! spec is loaded and validated once, the access graph derived once,
//! and failures are structured [`ModrefError`]s.
//!
//! Global flags (any command): `--trace <file.jsonl>` records spans and
//! metrics for the run, `-v`/`--verbose` adds diagnostics, `-q`/`--quiet`
//! drops informational output. Unknown flags are rejected with a
//! closest-match suggestion.

use std::env;
use std::fs;
use std::process::ExitCode;

use modref_core::api::{Codesign, LintOpts, ModrefError, SimOpts};

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("modref: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options shared by every subcommand, stripped before dispatch.
struct Global {
    /// Record a trace of the run and write it here as JSONL.
    trace: Option<String>,
    /// 0 = quiet, 1 = normal, 2 = verbose.
    verbosity: u8,
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (args, global) = split_global(args)?;
    commands::set_verbosity(global.verbosity);
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    validate_flags(cmd, &args)?;

    let Some(path) = &global.trace else {
        return dispatch(cmd, &args);
    };
    modref_obs::init(modref_obs::ClockMode::Wall);
    let result = dispatch(cmd, &args);
    let trace = modref_obs::shutdown();
    fs::write(path, modref_obs::jsonl::write(&trace))
        .map_err(|e| format!("writing {path}: {e}"))?;
    if global.verbosity > 0 {
        eprintln!(
            "wrote trace to {path} ({} events); render with `modref report {path}`",
            trace.events.len()
        );
    }
    result
}

fn dispatch(cmd: &str, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        "check" => commands::check_source(&load_session_lenient(args, 1)?),
        "lint" => {
            // `--explain` documents a lint from the registry; it needs
            // no spec file and ignores every other flag.
            if let Some(code) = flag_value(args, "--explain") {
                return commands::explain_lint(&code);
            }
            let cd = load_session_lenient(args, 1)?;
            let mut opts = LintOpts::new();
            if flag_value(args, "-p").is_some() {
                opts = opts.with_part(read_flag_file(args, "-p")?);
            }
            if args.iter().any(|a| a == "-m") {
                if opts.part.is_none() {
                    return Err(
                        "`-m` requires `-p <part>` (conformance lints need a partition)".into(),
                    );
                }
                opts = opts.with_model(parse_model(args)?);
            }
            let json = match flag_value(args, "--format").as_deref() {
                None | Some("human") => false,
                Some("json") => true,
                Some(other) => {
                    return Err(format!("invalid --format `{other}` (expected human|json)").into())
                }
            };
            for v in flag_values(args, "--deny")
                .into_iter()
                .chain(flag_values(args, "-D"))
            {
                opts = opts.with_deny(v);
            }
            for v in flag_values(args, "--allow") {
                opts = opts.with_allow(v);
            }
            commands::lint(&cd, &opts, json)
        }
        "print" => commands::print_spec(&load_session(args, 1)?),
        "graph" => {
            let dot = args.iter().any(|a| a == "--dot");
            commands::graph(&load_session(args, 1)?, dot)
        }
        "simulate" => {
            let cd = load_session(args, 1)?;
            let profile = args.iter().any(|a| a == "--profile");
            let stats = args.iter().any(|a| a == "--stats");
            let vcd = flag_value(args, "--vcd");
            let mut opts = SimOpts::new();
            if let Some(v) = flag_value(args, "--max-steps") {
                opts = opts
                    .with_max_steps(v.parse().map_err(|e| format!("invalid --max-steps: {e}"))?);
            }
            opts = opts.with_kernel(parse_kernel(args)?);
            commands::simulate(&cd, profile, stats, vcd.as_deref(), &opts)
        }
        "refine" => {
            let cd = load_session(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            let model = parse_model(args)?;
            let out = flag_value(args, "-o");
            let dot = flag_value(args, "--dot");
            commands::refine(&cd, &part_text, model, out.as_deref(), dot.as_deref())
        }
        "vhdl" => commands::vhdl(&load_session(args, 1)?),
        "cgen" => {
            let cd = load_session(args, 1)?;
            let process =
                flag_value(args, "--process").ok_or("missing `--process <behavior>` argument")?;
            commands::cgen(&cd, &process)
        }
        "estimate" => {
            let cd = load_session(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            commands::estimate(&cd, &part_text)
        }
        "rates" => {
            let cd = load_session(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            commands::rates(&cd, &part_text)
        }
        "explore" => {
            let cd = load_session(args, 1)?;
            let part_text = match flag_value(args, "-p") {
                Some(_) => Some(read_flag_file(args, "-p")?),
                None => None,
            };
            let seeds = flag_value(args, "--seeds")
                .map(|v| v.parse::<u64>())
                .transpose()
                .map_err(|e| format!("invalid --seeds: {e}"))?
                .unwrap_or(4);
            let threads = flag_value(args, "--threads")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|e| format!("invalid --threads: {e}"))?;
            let top = flag_value(args, "--top")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|e| format!("invalid --top: {e}"))?
                .unwrap_or(10);
            let verify_traces = args.iter().any(|a| a == "--verify-traces");
            // --verify-traces subsumes --verify: the trace check runs
            // inside the verification pass.
            let verify = verify_traces || args.iter().any(|a| a == "--verify");
            let kernel = parse_kernel(args)?;
            let out = flag_value(args, "-o");
            commands::explore(
                &cd,
                part_text.as_deref(),
                seeds,
                threads,
                top,
                verify,
                verify_traces,
                kernel,
                out.as_deref(),
            )
        }
        "serve" => {
            let stdio = args.iter().any(|a| a == "--stdio");
            let listen = flag_value(args, "--listen");
            let mut cfg = modref_core::serve::ServeConfig::default();
            if let Some(v) = flag_value(args, "--workers") {
                cfg = cfg.workers(v.parse().map_err(|e| format!("invalid --workers: {e}"))?);
            }
            if let Some(v) = flag_value(args, "--queue") {
                cfg = cfg.queue(v.parse().map_err(|e| format!("invalid --queue: {e}"))?);
            }
            if let Some(v) = flag_value(args, "--deadline-ms") {
                cfg = cfg.default_deadline_ms(
                    v.parse()
                        .map_err(|e| format!("invalid --deadline-ms: {e}"))?,
                );
            }
            if let Some(v) = flag_value(args, "--max-conns") {
                cfg = cfg
                    .max_connections(v.parse().map_err(|e| format!("invalid --max-conns: {e}"))?);
            }
            if let Some(v) = flag_value(args, "--cache") {
                cfg = cfg.cache(v.parse().map_err(|e| format!("invalid --cache: {e}"))?);
            }
            commands::serve(stdio, listen.as_deref(), cfg)
        }
        "report" => {
            let path = args.get(1).ok_or("usage: modref report <trace.jsonl>")?;
            commands::report(path)
        }
        "demo" => {
            let dir = args.get(1).ok_or("usage: modref demo <directory>")?.clone();
            commands::demo(&dir)
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            let mut msg = format!("unknown command `{other}`");
            if let Some(s) = closest(other, COMMANDS.iter().copied()) {
                msg.push_str(&format!(" (did you mean `{s}`?)"));
            }
            msg.push_str(" — try `modref help`");
            Err(msg.into())
        }
    }
}

/// Every subcommand name, for `unknown command` suggestions.
const COMMANDS: &[&str] = &[
    "check", "lint", "print", "graph", "simulate", "refine", "vhdl", "cgen", "estimate", "rates",
    "explore", "serve", "report", "demo", "help",
];

/// Flags accepted by every command. `true` = the flag consumes a value.
const GLOBAL_FLAGS: &[(&str, bool)] = &[
    ("--trace", true),
    ("-v", false),
    ("--verbose", false),
    ("-q", false),
    ("--quiet", false),
    ("--help", false),
    ("-h", false),
];

/// The per-command flag tables `validate_flags` checks against.
fn command_flags(cmd: &str) -> Option<&'static [(&'static str, bool)]> {
    Some(match cmd {
        "check" | "print" | "vhdl" | "report" | "demo" | "help" => &[],
        "lint" => &[
            ("-p", true),
            ("-m", true),
            ("--format", true),
            ("--deny", true),
            ("--allow", true),
            ("-D", true),
            ("--explain", true),
        ],
        "graph" => &[("--dot", false)],
        "simulate" => &[
            ("--profile", false),
            ("--stats", false),
            ("--max-steps", true),
            ("--kernel", true),
            ("--vcd", true),
        ],
        "refine" => &[("-p", true), ("-m", true), ("-o", true), ("--dot", true)],
        "cgen" => &[("--process", true)],
        "estimate" | "rates" => &[("-p", true)],
        "explore" => &[
            ("-p", true),
            ("--seeds", true),
            ("--threads", true),
            ("--top", true),
            ("--verify", false),
            ("--verify-traces", false),
            ("--kernel", true),
            ("-o", true),
        ],
        "serve" => &[
            ("--stdio", false),
            ("--listen", true),
            ("--workers", true),
            ("--queue", true),
            ("--deadline-ms", true),
            ("--max-conns", true),
            ("--cache", true),
        ],
        _ => return None,
    })
}

/// Strips the global flags out of the argument list.
fn split_global(args: &[String]) -> Result<(Vec<String>, Global), String> {
    let mut rest = Vec::new();
    let mut global = Global {
        trace: None,
        verbosity: 1,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                i += 1;
                let path = args.get(i).ok_or("missing `--trace <file.jsonl>` value")?;
                global.trace = Some(path.clone());
            }
            "-v" | "--verbose" => global.verbosity = 2,
            "-q" | "--quiet" => global.verbosity = 0,
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((rest, global))
}

/// Rejects flags the command does not know, suggesting the closest match.
/// Unknown *commands* are reported by `dispatch` instead.
fn validate_flags(cmd: &str, args: &[String]) -> Result<(), String> {
    let Some(cmd_flags) = command_flags(cmd) else {
        return Ok(());
    };
    let known: Vec<(&str, bool)> = cmd_flags.iter().chain(GLOBAL_FLAGS).copied().collect();
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with('-') && arg.len() > 1 {
            match known.iter().find(|(f, _)| f == arg) {
                Some((_, true)) => i += 1,
                Some((_, false)) => {}
                None => {
                    let mut msg = format!("unknown flag `{arg}` for `modref {cmd}`");
                    if let Some(s) = closest(arg, known.iter().map(|(f, _)| *f)) {
                        msg.push_str(&format!(" (did you mean `{s}`?)"));
                    }
                    msg.push_str(" — try `modref help`");
                    return Err(msg);
                }
            }
        }
        i += 1;
    }
    Ok(())
}

/// The candidate closest to `input` by edit distance, when close enough
/// to plausibly be a typo (distance ≤ 2, or ≤ 3 for long names).
fn closest<'a>(input: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let limit = if input.len() > 6 { 3 } else { 2 };
    candidates
        .map(|c| (levenshtein(input, c), c))
        .filter(|(d, _)| *d <= limit)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// Classic two-row edit distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b_chars.len()).collect();
    let mut curr = vec![0; b_chars.len() + 1];
    for (i, ca) in a.chars().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b_chars.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != *cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b_chars.len()]
}

fn print_usage() {
    println!(
        "modref — model refinement for hardware-software codesign

USAGE:
  modref check    <spec>                      parse + validate, print stats
  modref lint     <spec> [-p <part> [-m N]]   static analysis: structural,
                  [--format human|json]       dataflow, race, deadlock +
                  [--deny L] [-D L]           (with -p) the conformance lints;
                  [--allow L]                 `--deny warnings` fails on any
                                              warning, -D is short for --deny
  modref lint     --explain CODE              print one lint's documentation
                                              (e.g. DL04 or circular-wait)
  modref print    <spec>                      re-print the canonical form
  modref graph    <spec> [--dot]              list channels (or emit DOT)
  modref simulate <spec> [--profile]          run and print final state
                  [--max-steps N] [--stats]   (+ activations / scheduler stats)
                  [--kernel event|roundrobin|compiled]
                                              pick the simulation kernel
                  [--vcd FILE]                record an event trace and write
                                              an IEEE 1364 waveform (GTKWave)
  modref refine   <spec> -p <part> -m <1..4>  refine, print spec
                  [-o FILE] [--dot FILE]      write spec / architecture DOT
  modref rates    <spec> -p <part>            Figure 9 rate tables, all models
  modref explore  <spec> [-p <part>]          parallel multi-start exploration
                  [--seeds K] [--threads N]   K seeds x algorithms x 4 models,
                  [--top M] [-o FILE]         ranked with Pareto front flagged
                  [--verify]                  simulate original vs refined for
                                              every Pareto-front candidate
                  [--verify-traces]           --verify + require each refined
                                              trace to be a stuttering
                                              refinement of the original's
                  [--kernel event|roundrobin|compiled]
                                              kernel for --verify simulations
  modref estimate <spec> -p <part>            lifetimes + channel rates report
  modref serve    --stdio | --listen ADDR     concurrent JSONL codesign service:
                  [--workers N] [--queue N]   one request per line on stdin (or
                  [--deadline-ms MS]          per TCP connection, multiplexed
                  [--max-conns N] [--cache N] onto one shared pool), one JSON
                                              response per line, tagged by id;
                                              protocol v1 + v2 ops: parse
                                              load_spec refine estimate explore
                                              verify lint batch cancel; --cache
                                              bounds the shared parsed-spec LRU
  modref vhdl     <spec>                      export to VHDL (refined specs)
  modref cgen     <spec> --process <name>     export a process to C + bus HAL
  modref report   <trace.jsonl>               render a trace recorded with
                                              --trace: profile tree + metrics
  modref demo     <dir>                       write the medical + fig2 examples

GLOBAL FLAGS (any command):
  --trace <file.jsonl>   record spans and metrics for the run as JSONL
  -v, --verbose          extra diagnostic output
  -q, --quiet            suppress informational output

Unknown flags are errors (with a closest-match suggestion), so typos
never silently change a run.

The <part> file format is documented in modref-partition's textfmt module:
  component PROC processor 65536
  component ASIC asic 10000 75
  default PROC
  behavior Sample -> ASIC
  var samples     -> ASIC"
    );
}

/// Opens a validated [`Codesign`] session on the spec file at `pos`,
/// rendering parse errors as `path:line:col: message`.
fn load_session(args: &[String], pos: usize) -> Result<Codesign, Box<dyn std::error::Error>> {
    let path = args.get(pos).ok_or("missing specification file argument")?;
    Codesign::load(path).map_err(|e| render_load_error(path, e))
}

/// Like [`load_session`], but skips validation — `check` and `lint`
/// report validation problems themselves, with positions, instead of
/// stopping at the first one.
fn load_session_lenient(
    args: &[String],
    pos: usize,
) -> Result<Codesign, Box<dyn std::error::Error>> {
    let path = args.get(pos).ok_or("missing specification file argument")?;
    Codesign::load_lenient(path).map_err(|e| render_load_error(path, e))
}

fn render_load_error(path: &str, e: ModrefError) -> Box<dyn std::error::Error> {
    match e {
        ModrefError::Parse(p) => format!("{path}:{}:{}: {}", p.line, p.col, p.message).into(),
        other => Box::new(other),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every value of a flag that may repeat (`--deny A --deny B`).
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn read_flag_file(args: &[String], flag: &str) -> Result<String, Box<dyn std::error::Error>> {
    let path = flag_value(args, flag)
        .ok_or_else(|| format!("missing `{flag} <partition-file>` argument"))?;
    Ok(fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?)
}

/// Resolves the optional `--kernel` flag; absent means the default
/// event-driven kernel.
fn parse_kernel(args: &[String]) -> Result<modref_sim::SimKernel, Box<dyn std::error::Error>> {
    match flag_value(args, "--kernel") {
        None => Ok(modref_sim::SimKernel::default()),
        Some(name) => modref_sim::SimKernel::from_name(&name).ok_or_else(|| {
            format!("invalid --kernel `{name}` (expected event|roundrobin|compiled)").into()
        }),
    }
}

fn parse_model(args: &[String]) -> Result<modref_core::ImplModel, Box<dyn std::error::Error>> {
    let value = flag_value(args, "-m").ok_or("missing `-m <1..4>` argument")?;
    Ok(match value.as_str() {
        "1" => modref_core::ImplModel::Model1,
        "2" => modref_core::ImplModel::Model2,
        "3" => modref_core::ImplModel::Model3,
        "4" => modref_core::ImplModel::Model4,
        other => return Err(format!("invalid model `{other}` (expected 1..4)").into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("--seed", "--seeds"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn unknown_flag_suggests_closest() {
        let err = validate_flags("explore", &s(&["explore", "x.spec", "--seed", "4"]))
            .expect_err("typo must be rejected");
        assert!(err.contains("--seed"), "{err}");
        assert!(err.contains("did you mean `--seeds`"), "{err}");
    }

    #[test]
    fn known_flags_pass_and_values_are_skipped() {
        // `--top 10` — the value `10` must not be flag-checked; and a
        // value that looks like a flag is skipped for value-taking flags.
        validate_flags("explore", &s(&["explore", "x.spec", "--top", "10"])).unwrap();
        validate_flags("simulate", &s(&["simulate", "x.spec", "--kernel", "event"])).unwrap();
    }

    #[test]
    fn global_flags_are_stripped() {
        let (rest, g) =
            split_global(&s(&["-q", "explore", "x.spec", "--trace", "t.jsonl"])).unwrap();
        assert_eq!(rest, s(&["explore", "x.spec"]));
        assert_eq!(g.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(g.verbosity, 0);
        assert!(split_global(&s(&["explore", "--trace"])).is_err());
    }

    #[test]
    fn unknown_command_suggests_closest() {
        let err = dispatch("exlpore", &s(&["exlpore"])).expect_err("unknown command");
        assert!(err.to_string().contains("did you mean `explore`"), "{err}");
    }
}
