//! `modref` — the command-line driver for the codesign flow.
//!
//! ```text
//! modref check    <spec>                 parse + validate, print stats
//! modref print    <spec>                 re-print the canonical form
//! modref graph    <spec>                 list derived channels
//! modref simulate <spec>                 run and print final state
//! modref refine   <spec> -p <part> -m N  refine to ModelN, print result
//! modref rates    <spec> -p <part>       Figure 9 rate table, all models
//! modref explore  <spec> [--seeds K]     parallel multi-start exploration
//! modref demo     <dir>                  write the medical example files
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("modref: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    match cmd.as_str() {
        "check" => commands::check(&read_spec(args, 1)?),
        "print" => commands::print_spec(&read_spec(args, 1)?),
        "graph" => {
            let dot = args.iter().any(|a| a == "--dot");
            commands::graph(&read_spec(args, 1)?, dot)
        }
        "simulate" => {
            let spec = read_spec(args, 1)?;
            let profile = args.iter().any(|a| a == "--profile");
            let stats = args.iter().any(|a| a == "--stats");
            let max_steps = flag_value(args, "--max-steps")
                .map(|v| v.parse::<u64>())
                .transpose()
                .map_err(|e| format!("invalid --max-steps: {e}"))?;
            let kernel = match flag_value(args, "--kernel").as_deref() {
                None | Some("event") => modref_sim::SimKernel::EventDriven,
                Some("roundrobin") => modref_sim::SimKernel::RoundRobin,
                Some(other) => {
                    return Err(
                        format!("invalid --kernel `{other}` (expected event|roundrobin)").into(),
                    )
                }
            };
            commands::simulate(&spec, profile, stats, max_steps, kernel)
        }
        "refine" => {
            let spec = read_spec(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            let model = parse_model(args)?;
            let out = flag_value(args, "-o");
            let dot = flag_value(args, "--dot");
            commands::refine(&spec, &part_text, model, out.as_deref(), dot.as_deref())
        }
        "vhdl" => {
            let spec = read_spec(args, 1)?;
            commands::vhdl(&spec)
        }
        "cgen" => {
            let spec = read_spec(args, 1)?;
            let process =
                flag_value(args, "--process").ok_or("missing `--process <behavior>` argument")?;
            commands::cgen(&spec, &process)
        }
        "estimate" => {
            let spec = read_spec(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            commands::estimate(&spec, &part_text)
        }
        "rates" => {
            let spec = read_spec(args, 1)?;
            let part_text = read_flag_file(args, "-p")?;
            commands::rates(&spec, &part_text)
        }
        "explore" => {
            let spec = read_spec(args, 1)?;
            let part_text = match flag_value(args, "-p") {
                Some(_) => Some(read_flag_file(args, "-p")?),
                None => None,
            };
            let seeds = flag_value(args, "--seeds")
                .map(|v| v.parse::<u64>())
                .transpose()
                .map_err(|e| format!("invalid --seeds: {e}"))?
                .unwrap_or(4);
            let threads = flag_value(args, "--threads")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|e| format!("invalid --threads: {e}"))?;
            let top = flag_value(args, "--top")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|e| format!("invalid --top: {e}"))?
                .unwrap_or(10);
            let verify = args.iter().any(|a| a == "--verify");
            let out = flag_value(args, "-o");
            commands::explore(
                &spec,
                part_text.as_deref(),
                seeds,
                threads,
                top,
                verify,
                out.as_deref(),
            )
        }
        "demo" => {
            let dir = args.get(1).ok_or("usage: modref demo <directory>")?.clone();
            commands::demo(&dir)
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `modref help`)").into()),
    }
}

fn print_usage() {
    println!(
        "modref — model refinement for hardware-software codesign

USAGE:
  modref check    <spec>                      parse + validate, print stats
  modref print    <spec>                      re-print the canonical form
  modref graph    <spec> [--dot]              list channels (or emit DOT)
  modref simulate <spec> [--profile]          run and print final state
                  [--max-steps N] [--stats]   (+ activations / scheduler stats)
                  [--kernel event|roundrobin] pick the scheduler kernel
  modref refine   <spec> -p <part> -m <1..4>  refine, print spec
                  [-o FILE] [--dot FILE]      write spec / architecture DOT
  modref rates    <spec> -p <part>            Figure 9 rate tables, all models
  modref explore  <spec> [-p <part>]          parallel multi-start exploration
                  [--seeds K] [--threads N]   K seeds x algorithms x 4 models,
                  [--top M] [-o FILE]         ranked with Pareto front flagged
                  [--verify]                  simulate original vs refined for
                                              every Pareto-front candidate
  modref estimate <spec> -p <part>            lifetimes + channel rates report
  modref vhdl     <spec>                      export to VHDL (refined specs)
  modref cgen     <spec> --process <name>     export a process to C + bus HAL
  modref demo     <dir>                       write the medical example files

The <part> file format is documented in modref-partition's textfmt module:
  component PROC processor 65536
  component ASIC asic 10000 75
  default PROC
  behavior Sample -> ASIC
  var samples     -> ASIC"
    );
}

fn read_spec(args: &[String], pos: usize) -> Result<modref_spec::Spec, Box<dyn std::error::Error>> {
    let path = args.get(pos).ok_or("missing specification file argument")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(modref_spec::parser::parse(&text)?)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn read_flag_file(args: &[String], flag: &str) -> Result<String, Box<dyn std::error::Error>> {
    let path = flag_value(args, flag)
        .ok_or_else(|| format!("missing `{flag} <partition-file>` argument"))?;
    Ok(fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?)
}

fn parse_model(args: &[String]) -> Result<modref_core::ImplModel, Box<dyn std::error::Error>> {
    let value = flag_value(args, "-m").ok_or("missing `-m <1..4>` argument")?;
    Ok(match value.as_str() {
        "1" => modref_core::ImplModel::Model1,
        "2" => modref_core::ImplModel::Model2,
        "3" => modref_core::ImplModel::Model3,
        "4" => modref_core::ImplModel::Model4,
        other => return Err(format!("invalid model `{other}` (expected 1..4)").into()),
    })
}
