//! The CLI subcommand implementations, all running through the
//! [`Codesign`] facade — one spec load, one lazily derived access
//! graph, structured [`ModrefError`] failures.

use std::fs;
use std::sync::atomic::{AtomicU8, Ordering};

use modref_analyze::{render_json_lines, Totals};
use modref_core::api::{Codesign, ExploreOpts, LintOpts, SimOpts, VerifyOpts};
use modref_core::{ImplModel, ModrefError};
use modref_graph::ChannelKind;
use modref_partition::textfmt::render_partition;
use modref_partition::Allocation;
use modref_spec::printer;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Output verbosity: 0 = quiet, 1 = normal, 2 = verbose. Set once from
/// the global `-q`/`-v` flags before dispatch.
static VERBOSITY: AtomicU8 = AtomicU8::new(1);

/// Installs the verbosity level parsed from the global flags.
pub fn set_verbosity(level: u8) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

fn verbose() -> bool {
    VERBOSITY.load(Ordering::Relaxed) >= 2
}

fn quiet() -> bool {
    VERBOSITY.load(Ordering::Relaxed) == 0
}

/// `modref check`: the session already validated; print stats.
pub fn check(cd: &Codesign) -> CmdResult {
    let s = cd.stats();
    println!("spec `{}` is valid", s.name);
    println!("  behaviors:     {} ({} leaves)", s.behaviors, s.leaves);
    println!("  variables:     {}", s.variables);
    println!("  signals:       {}", s.signals);
    println!("  subroutines:   {}", s.subroutines);
    println!("  statements:    {}", s.statements);
    println!("  printed lines: {}", s.printed_lines);
    println!(
        "  channels:      {} data, {} control",
        s.data_channels, s.control_channels
    );
    Ok(())
}

/// `modref check` front end: report *every* validation violation with a
/// `file:line:col` position, or fall through to the stats printout when
/// the spec is well-formed.
pub fn check_source(cd: &Codesign) -> CmdResult {
    let diags = cd.check();
    if !diags.is_empty() {
        for d in &diags {
            eprintln!("{}", d.render_human(cd.name()));
        }
        return Err(format!("{} validation error(s)", diags.len()).into());
    }
    check(cd)
}

/// `modref lint`: the full static-analysis suite over a spec, plus the
/// refinement-conformance lints when the options carry a partition.
pub fn lint(cd: &Codesign, opts: &LintOpts, json: bool) -> CmdResult {
    let diags = cd.lint(opts)?;
    let totals = Totals::of(&diags);
    if json {
        print!("{}", render_json_lines(&diags, cd.name()));
    } else {
        for d in &diags {
            println!("{}", d.render_human(cd.name()));
        }
        if !quiet() {
            println!(
                "{} error(s), {} warning(s), {} note(s)",
                totals.errors, totals.warnings, totals.notes
            );
        }
    }
    if totals.errors > 0 {
        return Err(ModrefError::Lint {
            errors: totals.errors,
        }
        .into());
    }
    Ok(())
}

/// `modref lint --explain CODE`: print one lint's full documentation.
/// Needs no spec file — the registry is the source of truth.
pub fn explain_lint(code_or_name: &str) -> CmdResult {
    let Some(l) = modref_analyze::lint(code_or_name) else {
        let mut msg = format!("unknown lint `{code_or_name}`");
        let known = modref_analyze::LINTS
            .iter()
            .flat_map(|l| [l.code, l.name])
            .collect::<Vec<_>>()
            .join(", ");
        msg.push_str(&format!(" — known lints: {known}"));
        return Err(msg.into());
    };
    println!(
        "{} ({}), default severity: {}",
        l.code, l.name, l.default_severity
    );
    println!("  {}", l.description);
    println!();
    // Re-wrap the registry text to the terminal-friendly width used
    // throughout the CLI output.
    let mut line = String::from(" ");
    for word in l.explain.split_whitespace() {
        if line.len() + word.len() + 1 > 76 {
            println!("{line}");
            line = String::from(" ");
        }
        line.push(' ');
        line.push_str(word);
    }
    if line.trim().is_empty() {
        return Ok(());
    }
    println!("{line}");
    Ok(())
}

/// `modref print`: canonical re-print.
pub fn print_spec(cd: &Codesign) -> CmdResult {
    print!("{}", cd.pretty());
    Ok(())
}

/// `modref graph`: list every derived channel (or emit DOT).
pub fn graph(cd: &Codesign, dot: bool) -> CmdResult {
    let spec = cd.spec();
    let graph = cd.graph();
    if dot {
        print!("{}", modref_graph::dot::to_dot(spec, graph));
        return Ok(());
    }
    for ch in graph.channels() {
        match ch.kind() {
            ChannelKind::Data {
                behavior,
                var,
                direction,
                accesses,
                bits_per_access,
                in_guard,
            } => {
                let arrow = match direction {
                    modref_graph::Direction::Read => "<-",
                    modref_graph::Direction::Write => "->",
                };
                println!(
                    "{}: {} {} {} ({:.1} accesses x {} bits{})",
                    ch.id(),
                    spec.behavior(*behavior).name(),
                    arrow,
                    spec.variable(*var).name(),
                    accesses,
                    bits_per_access,
                    if *in_guard { ", in guard" } else { "" }
                );
            }
            ChannelKind::Control { from, to } => {
                println!(
                    "{}: {} => {} (control)",
                    ch.id(),
                    spec.behavior(*from).name(),
                    spec.behavior(*to).name()
                );
            }
        }
    }
    Ok(())
}

/// `modref simulate`: run to completion, print final state.
pub fn simulate(
    cd: &Codesign,
    profile: bool,
    stats: bool,
    vcd: Option<&str>,
    opts: &SimOpts,
) -> CmdResult {
    let kernel_name = opts.kernel.name();
    if verbose() {
        eprintln!("simulating with the {kernel_name} kernel");
    }
    let mut opts = opts.clone();
    if vcd.is_some() {
        opts = opts.with_trace(true);
    }
    let result = cd.simulate(&opts)?;
    if let Some(path) = vcd {
        let trace = result
            .trace
            .as_ref()
            .ok_or("simulation recorded no trace")?;
        // Render fully before touching the filesystem: a write failure
        // exits nonzero without leaving a partial waveform behind.
        let text = modref_sim::vcd::export(cd.spec(), cd.source_map(), trace);
        fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        if !quiet() {
            eprintln!("wrote {path} ({} trace events)", trace.len());
        }
    }
    println!(
        "completed at t={} after {} micro-steps ({} var writes, {} signal writes)",
        result.time, result.steps, result.var_writes, result.signal_writes
    );
    for (name, value) in result.scalar_vars() {
        println!("  {name} = {value}");
    }
    if stats {
        let s = result.sched;
        println!("scheduler stats ({kernel_name} kernel):");
        println!("  rounds:      {}", s.rounds);
        println!("  cond evals:  {}", s.cond_evals);
        println!("  wakeups:     {}", s.wakeups);
        println!("  timer pops:  {}", s.timer_pops);
    }
    if profile {
        println!("activation profile:");
        for (name, count) in result.activations() {
            if count > 0 {
                println!("  {name} x{count}");
            }
        }
    }
    Ok(())
}

/// `modref refine`: refine under a partition file, report and print.
pub fn refine(
    cd: &Codesign,
    part_text: &str,
    model: ImplModel,
    out: Option<&str>,
    dot: Option<&str>,
) -> CmdResult {
    let refined = cd.refine(part_text, model)?;

    if !quiet() {
        eprintln!(
            "refined `{}` under {model}: {} behaviors, {} lines",
            cd.spec().name(),
            refined.spec.behavior_count(),
            printer::line_count(&refined.spec)
        );
        eprintln!("architecture:");
        for line in modref_core::report::describe(&refined.architecture).lines() {
            eprintln!("  {line}");
        }
    }

    if let Some(path) = dot {
        fs::write(path, modref_core::dot::to_dot(&refined.architecture))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let text = printer::print(&refined.spec);
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `modref vhdl`: export a (refined) specification to VHDL.
pub fn vhdl(cd: &Codesign) -> CmdResult {
    print!("{}", modref_spec::vhdl::export(cd.spec())?);
    Ok(())
}

/// `modref cgen`: export one process to C with a bus HAL.
pub fn cgen(cd: &Codesign, process: &str) -> CmdResult {
    print!(
        "{}",
        modref_spec::cgen::export_software(cd.spec(), process)?
    );
    Ok(())
}

/// `modref estimate`: lifetimes and channel-rate report.
pub fn estimate(cd: &Codesign, part_text: &str) -> CmdResult {
    print!("{}", cd.estimate(part_text)?);
    Ok(())
}

/// `modref rates`: Figure 9 tables for all four models.
pub fn rates(cd: &Codesign, part_text: &str) -> CmdResult {
    let (_, partition) = cd.partition(part_text)?;
    let (locals, globals) = partition.classify_all(cd.spec(), cd.graph());
    println!(
        "{} local / {} global variables",
        locals.len(),
        globals.len()
    );
    for model in ImplModel::ALL {
        let table = cd.rates(part_text, model)?;
        let cells: Vec<String> = table
            .iter()
            .map(|(bus, rate)| format!("{bus}={rate:.0}"))
            .collect();
        println!(
            "{model}: [{}] Mbit/s, hot spot {}",
            cells.join(", "),
            table
                .hot_spot()
                .map(|(b, r)| format!("{b} @ {r:.0}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    Ok(())
}

/// `modref explore`: parallel multi-start design-space exploration.
///
/// Runs K seeds × {annealing, migration} plus the constructive methods,
/// crosses every candidate with the four implementation models, and
/// prints the ranked design points with the Pareto front flagged. With
/// `-o`, writes the best candidate's partition file.
#[allow(clippy::too_many_arguments)] // mirrors the CLI flag surface
pub fn explore(
    cd: &Codesign,
    part_text: Option<&str>,
    seeds: u64,
    threads: Option<usize>,
    top: usize,
    verify: bool,
    verify_traces: bool,
    kernel: modref_sim::SimKernel,
    out: Option<&str>,
) -> CmdResult {
    let mut eopts = ExploreOpts::new().with_seeds(seeds);
    if let Some(text) = part_text {
        eopts = eopts.with_part(text);
    }
    if let Some(t) = threads {
        eopts = eopts.with_threads(t);
    }
    let workers = modref_partition::thread_count(threads);

    if verbose() {
        eprintln!(
            "explore config: seeds={seeds} threads={workers} top={top} verify={verify} \
             tracing={}",
            if modref_obs::enabled() { "on" } else { "off" }
        );
    }
    let started = std::time::Instant::now();
    let result = cd.explore(&eopts)?;
    let elapsed = started.elapsed();

    let n = result.points.len();
    let per_sec = n as f64 / elapsed.as_secs_f64().max(1e-9);
    if !quiet() {
        println!(
            "explored {n} design points ({seeds} seeds x algorithms x 4 models) \
             on {workers} thread(s) in {:.2?} — {per_sec:.0} candidates/sec",
            elapsed
        );
        println!();
    }
    println!(
        "{:<4} {:<2} {:<17} {:>4}  {:<6} {:>12} {:>10} {:>10} {:>12} {:>5}",
        "rank",
        "",
        "algorithm",
        "seed",
        "model",
        "cost",
        "cut bits",
        "imbal ns",
        "rate Mbit/s",
        "buses"
    );
    for (i, p) in result.points.iter().take(top.max(1)).enumerate() {
        println!(
            "{:<4} {:<2} {:<17} {:>4}  {:<6} {:>12.1} {:>10.1} {:>10.0} {:>12.1} {:>5}",
            i + 1,
            if p.pareto { "*" } else { "" },
            p.algorithm,
            p.seed,
            p.model,
            p.cost.total,
            p.cost.cut_bits,
            p.cost.imbalance_ns,
            p.max_bus_rate,
            p.bus_count
        );
    }
    if !quiet() {
        if n > top {
            println!("... {} more (use --top to show)", n - top);
        }
        println!("* = Pareto-optimal over (cost, max bus rate)");
    }

    if verify {
        let mut vopts = VerifyOpts::new()
            .with_kernel(kernel)
            .with_check_traces(verify_traces);
        if let Some(text) = part_text {
            vopts = vopts.with_part(text);
        }
        if let Some(t) = threads {
            vopts = vopts.with_threads(t);
        }
        let started = std::time::Instant::now();
        let v = cd.verify(&result, &vopts)?;
        let elapsed = started.elapsed();
        println!();
        println!(
            "verified {} front candidate x model pairs by simulation{} in {:.2?} \
             ({} kernel; original: t={}, {} steps)",
            v.records.len(),
            if verify_traces {
                " + stuttering-refinement trace check"
            } else {
                ""
            },
            elapsed,
            kernel.name(),
            v.original_time,
            v.original_steps
        );
        println!(
            "{:<17} {:>4}  {:<6} {:<6} {:>12} {:>12} {:>12}  detail",
            "algorithm", "seed", "model", "equiv", "sim time", "sim steps", "bus writes"
        );
        for r in &v.records {
            println!(
                "{:<17} {:>4}  {:<6} {:<6} {:>12} {:>12} {:>12}  {}",
                r.algorithm,
                r.seed,
                r.model.to_string(),
                if r.equivalent { "pass" } else { "FAIL" },
                r.refined_time,
                r.refined_steps,
                r.bus_traffic,
                r.detail
            );
        }
        match v.failures() {
            0 => println!("all Pareto-front refinements simulate equivalent to the original"),
            n => println!("{n} candidate x model pairs FAILED equivalence"),
        }
    }

    if let Some(path) = out {
        let best = result
            .points
            .first()
            .ok_or("exploration produced no design points")?;
        let alloc = match part_text {
            Some(text) => cd.partition(text)?.0,
            None => Allocation::proc_plus_asic(),
        };
        let text = render_partition(cd.spec(), &alloc, &best.partition);
        fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote best partition ({} seed {} under {}) to {path}",
            best.algorithm, best.seed, best.model
        );
    }
    Ok(())
}

/// `modref serve`: run the concurrent JSONL codesign service over
/// stdin/stdout or TCP. Responses go to stdout; the summary goes to
/// stderr so it never corrupts the protocol stream.
pub fn serve(stdio: bool, listen: Option<&str>, cfg: modref_core::serve::ServeConfig) -> CmdResult {
    let cfg = cfg.workload_resolver(modref_workloads::named_spec);
    let stats = if let Some(addr) = listen {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        if !quiet() {
            eprintln!("modref serve listening on {}", listener.local_addr()?);
        }
        modref_core::serve::serve_listener(listener, &cfg)?
    } else if stdio {
        if verbose() {
            eprintln!(
                "modref serve reading JSONL requests from stdin ({} workers, queue {})",
                cfg.workers, cfg.queue
            );
        }
        modref_core::serve::serve_stdio(&cfg)
    } else {
        return Err("serve needs a transport: `--stdio` or `--listen <addr>`".into());
    };
    if !quiet() {
        eprintln!(
            "served {} request(s): {} ok, {} failed ({} cancelled, {} timed out), \
             {} overloaded, {} malformed",
            stats.accepted,
            stats.completed,
            stats.errors,
            stats.cancelled,
            stats.timeouts,
            stats.overloaded,
            stats.malformed
        );
    }
    Ok(())
}

/// `modref report`: render a JSONL trace recorded with `--trace` as a
/// profile tree plus metric summary.
pub fn report(path: &str) -> CmdResult {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = modref_obs::jsonl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if verbose() {
        eprintln!("parsed {} events from {path}", trace.events.len());
    }
    print!("{}", modref_obs::report::render(&trace));
    Ok(())
}

/// `modref demo`: write the medical spec + Design1/2/3 partition files,
/// plus the Figure 2 spec and its published partition.
pub fn demo(dir: &str) -> CmdResult {
    use modref_workloads::{
        fig2_partition, fig2_spec, medical_allocation, medical_partition, medical_spec, Design,
    };
    fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let cd = Codesign::from_spec(medical_spec());
    let alloc = medical_allocation();
    let spec_path = format!("{dir}/medical.spec");
    fs::write(&spec_path, cd.pretty())?;
    println!("wrote {spec_path}");
    for design in Design::ALL {
        let part = medical_partition(cd.spec(), &alloc, design);
        let path = format!("{dir}/medical_{}.part", design.to_string().to_lowercase());
        // Insert the `default` line between the component declarations
        // and the assignments.
        let rendered = render_partition(cd.spec(), &alloc, &part);
        let split = rendered.find("behavior ").unwrap_or(rendered.len());
        let (components, assignments) = rendered.split_at(split);
        let text = format!(
            "# {}\n{components}default PROC\n{assignments}",
            design.label()
        );
        fs::write(&path, text)?;
        println!("wrote {path}");
    }

    let fig2 = Codesign::from_spec(fig2_spec());
    let fig2_spec_path = format!("{dir}/fig2.spec");
    fs::write(&fig2_spec_path, fig2.pretty())?;
    println!("wrote {fig2_spec_path}");
    let fig2_part = fig2_partition(fig2.spec(), &alloc);
    let rendered = render_partition(fig2.spec(), &alloc, &fig2_part);
    let split = rendered.find("behavior ").unwrap_or(rendered.len());
    let (components, assignments) = rendered.split_at(split);
    let fig2_part_path = format!("{dir}/fig2.part");
    fs::write(
        &fig2_part_path,
        format!("# Figure 2 partition\n{components}default PROC\n{assignments}"),
    )?;
    println!("wrote {fig2_part_path}");

    if !quiet() {
        println!("\ntry:");
        println!("  modref check {dir}/medical.spec");
        println!("  modref rates {dir}/medical.spec -p {dir}/medical_design1.part");
        println!(
            "  modref refine {dir}/medical.spec -p {dir}/medical_design1.part -m 2 -o refined.spec"
        );
        println!("  modref simulate refined.spec");
        println!("  modref explore {dir}/fig2.spec --trace fig2.jsonl");
        println!("  modref report fig2.jsonl");
        println!("  modref serve --stdio");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_workloads::fig2_spec;

    #[test]
    fn unwritable_vcd_path_fails_without_partial_file() {
        let cd = Codesign::from_spec(fig2_spec());
        let path = "/nonexistent-dir/out.vcd";
        let err = simulate(&cd, false, false, Some(path), &SimOpts::new())
            .expect_err("unwritable path must fail");
        let msg = err.to_string();
        assert!(msg.contains("writing /nonexistent-dir/out.vcd"), "{msg}");
        assert!(
            !std::path::Path::new(path).exists(),
            "no partial file may be left behind"
        );
    }

    #[test]
    fn vcd_is_written_for_a_writable_path() {
        let cd = Codesign::from_spec(fig2_spec());
        let dir = std::env::temp_dir().join("modref-vcd-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("fig2.vcd");
        let path_str = path.to_str().expect("utf8 path");
        simulate(&cd, false, false, Some(path_str), &SimOpts::new()).expect("simulate");
        let text = fs::read_to_string(&path).expect("vcd written");
        assert!(text.starts_with("$version modref $end"));
        assert!(text.contains("$enddefinitions $end"));
        fs::remove_file(&path).ok();
    }
}
