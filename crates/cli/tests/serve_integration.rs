//! End-to-end tests of `modref serve --stdio`: a golden scripted
//! session, a 100-request mixed load from four concurrent writers, and
//! the structured-error paths (timeout, cancel mid-explore, malformed
//! input) — all against the real binary, all required to drain cleanly
//! with exit code 0.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;

use modref_core::api::{Response, ResponseBody};

const BIN: &str = env!("CARGO_BIN_EXE_modref");

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(BIN)
        .arg("serve")
        .arg("--stdio")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("modref serve spawns")
}

/// Closes stdin, reads every response line, and asserts a clean exit.
fn drain(mut child: Child) -> Vec<Response> {
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses are UTF-8");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve must drain and exit 0: {status}");
    out.lines()
        .map(|l| Response::from_json(l).unwrap_or_else(|e| panic!("bad response `{l}`: {e}")))
        .collect()
}

fn error_code(resp: &Response) -> Option<&str> {
    match &resp.body {
        ResponseBody::Error { code, .. } => Some(code),
        _ => None,
    }
}

#[test]
fn golden_session_round_trips() {
    let session = include_str!("data/serve_session.jsonl");
    let golden = include_str!("data/serve_session.golden.jsonl");
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("session written");
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses read");
    assert!(child.wait().expect("exits").success());
    assert_eq!(
        out, golden,
        "serve responses diverged from the golden session"
    );
}

#[test]
fn hundred_requests_from_four_concurrent_writers_drop_no_ids() {
    let mut child = spawn_serve(&["--workers", "4", "--queue", "256", "-q"]);
    let stdin: Arc<Mutex<ChildStdin>> =
        Arc::new(Mutex::new(child.stdin.take().expect("stdin piped")));

    // Four writers, 25 requests each, ids partitioned by writer. A mixed
    // bag of ops — parse, lint, estimate, refine, a couple of explores —
    // plus guaranteed-failing requests, which still must be answered.
    let part = modref_workloads::named_partition("fig2").expect("fig2 partition");
    let mut handles = Vec::new();
    for writer in 0u64..4 {
        let stdin = Arc::clone(&stdin);
        let part = part.clone();
        handles.push(thread::spawn(move || {
            for i in 0..25u64 {
                let id = writer * 25 + i + 1;
                let part_json = json_str(&part);
                let line = match i % 5 {
                    0 => format!(r#"{{"id":{id},"op":"parse","workload":"medical"}}"#),
                    1 => format!(r#"{{"id":{id},"op":"lint","workload":"fig2"}}"#),
                    2 => format!(
                        r#"{{"id":{id},"op":"estimate","workload":"fig2","part":{part_json}}}"#
                    ),
                    3 => format!(
                        r#"{{"id":{id},"op":"refine","workload":"fig2","part":{part_json},"model":{}}}"#,
                        1 + (id % 4)
                    ),
                    _ => format!(r#"{{"id":{id},"op":"parse","workload":"no_such_workload"}}"#),
                };
                let mut guard = stdin.lock().expect("writer lock");
                guard
                    .write_all(format!("{line}\n").as_bytes())
                    .expect("request written");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer finishes");
    }
    drop(stdin); // last Arc clone gone -> stdin closes -> server drains

    let responses = drain(child);
    assert_eq!(responses.len(), 100, "every request must be answered");
    let ids: BTreeSet<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        (1..=100).collect::<BTreeSet<u64>>(),
        "no id may be dropped or duplicated"
    );
    for r in &responses {
        // The only expected failures are the deliberate bad ones.
        if let Some(code) = error_code(r) {
            assert_eq!(code, "unknown_workload", "id {}: {code}", r.id);
        }
    }
}

#[test]
fn expired_deadline_is_a_timeout_response() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(
            br#"{"id":1,"op":"explore","workload":"medical","seeds":32,"deadline_ms":1}
"#,
        )
        .expect("request written");
    let responses = drain(child);
    assert_eq!(responses.len(), 1);
    assert_eq!(error_code(&responses[0]), Some("timeout"));
}

#[test]
fn cancel_kills_an_inflight_explore() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        stdin
            .write_all(br#"{"id":1,"op":"explore","workload":"medical","seeds":64}"#)
            .and_then(|()| stdin.write_all(b"\n"))
            .expect("explore written");
        stdin.flush().expect("flushed");
        // Give the worker a moment to pick the explore up, then cancel.
        thread::sleep(std::time::Duration::from_millis(50));
        stdin
            .write_all(b"{\"id\":2,\"op\":\"cancel\",\"target\":1}\n")
            .expect("cancel written");
    }
    let responses = drain(child);
    assert_eq!(responses.len(), 2, "explore error + cancel ack");
    let explore = responses.iter().find(|r| r.id == 1).expect("id 1 answered");
    assert_eq!(error_code(explore), Some("cancelled"));
    let ack = responses.iter().find(|r| r.id == 2).expect("id 2 answered");
    assert!(
        matches!(ack.body, ResponseBody::Cancelled { target: 1, .. }),
        "{ack:?}"
    );
}

#[test]
fn malformed_line_is_answered_and_the_session_recovers() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"this is not json\n{\"id\":7,\"op\":\"parse\",\"workload\":\"fig2\"}\n")
        .expect("requests written");
    let responses = drain(child);
    assert_eq!(responses.len(), 2);
    let bad = responses
        .iter()
        .find(|r| error_code(r).is_some())
        .expect("malformed line answered");
    assert_eq!(error_code(bad), Some("invalid_request"));
    let good = responses.iter().find(|r| r.id == 7).expect("id 7 answered");
    assert!(matches!(good.body, ResponseBody::Parsed(_)), "{good:?}");
}

/// Minimal JSON string encoding for partition text (quotes + newlines).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
