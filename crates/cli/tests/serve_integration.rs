//! End-to-end tests of `modref serve`: golden scripted sessions (wire
//! protocol v1 and v2), v1-vs-v2 response equivalence, a 100-request
//! mixed load from four concurrent writers, multi-connection TCP with a
//! shared spec cache, streaming progress frames, and the
//! structured-error paths (timeout, cancel mid-explore, malformed
//! input) — all against the real binary, all required to drain cleanly
//! with exit code 0.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread;

use modref_core::api::{ProgressFrame, Request, Response, ResponseBody};
use modref_core::serve::spec_hash;

const BIN: &str = env!("CARGO_BIN_EXE_modref");

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(BIN)
        .arg("serve")
        .arg("--stdio")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("modref serve spawns")
}

/// Closes stdin, reads every response line, and asserts a clean exit.
fn drain(mut child: Child) -> Vec<Response> {
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses are UTF-8");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve must drain and exit 0: {status}");
    out.lines()
        .map(|l| Response::from_json(l).unwrap_or_else(|e| panic!("bad response `{l}`: {e}")))
        .collect()
}

fn error_code(resp: &Response) -> Option<&str> {
    match &resp.body {
        ResponseBody::Error { code, .. } => Some(code),
        _ => None,
    }
}

#[test]
fn golden_session_round_trips() {
    let session = include_str!("data/serve_session.jsonl");
    let golden = include_str!("data/serve_session.golden.jsonl");
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("session written");
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses read");
    assert!(child.wait().expect("exits").success());
    assert_eq!(
        out, golden,
        "serve responses diverged from the golden session"
    );
}

#[test]
fn v2_golden_session_round_trips() {
    let session = include_str!("data/serve_session_v2.jsonl");
    let golden = include_str!("data/serve_session_v2.golden.jsonl");
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("session written");
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses read");
    assert!(child.wait().expect("exits").success());
    assert_eq!(
        out, golden,
        "v2 serve responses (incl. progress frames) diverged from the golden session"
    );
}

/// Every v1 request of the golden session, re-enveloped as v2, must be
/// answered byte-identically — responses carry no version tag, so
/// upgrading a client's envelope changes nothing about what it reads
/// back.
#[test]
fn v2_envelope_answers_byte_identically_to_v1() {
    let session = include_str!("data/serve_session.jsonl");
    let golden = include_str!("data/serve_session.golden.jsonl");
    let v2_session: String = session
        .lines()
        .map(|line| {
            let mut req = Request::from_json(line).expect("golden session decodes");
            assert_eq!(req.v, 1, "the recorded session is pre-versioned");
            req.v = 2;
            format!("{}\n", req.to_json_line())
        })
        .collect();
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(v2_session.as_bytes())
        .expect("session written");
    drop(child.stdin.take());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut out)
        .expect("responses read");
    assert!(child.wait().expect("exits").success());
    assert_eq!(out, golden, "v2 envelope must not change a single byte");
}

/// Two TCP clients load the same spec; the second must hit the shared
/// content-addressed cache (asserted via the recorded trace counters)
/// and both get the same hash back.
#[test]
fn tcp_connections_share_the_spec_cache() {
    use std::net::TcpStream;
    let trace_path = std::env::temp_dir().join(format!(
        "modref_serve_cache_trace_{}.jsonl",
        std::process::id()
    ));
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "2",
            "--workers",
            "2",
            "--trace",
        ])
        .arg(&trace_path)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("modref serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("listen banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(
        banner.contains("listening on"),
        "unexpected banner: {banner}"
    );

    let spec = "spec shared;\nvar x : int<16> = 0;\n\
                behavior L leaf { x := x + 1; }\n\
                behavior T seq { children { L; } }\ntop T;\n";
    let request = format!(
        "{{\"v\":2,\"id\":1,\"op\":\"load_spec\",\"spec\":{}}}\n",
        json_str(spec)
    );
    let mut hashes = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read reply");
        match Response::from_json(reply.trim()).expect("decodes").body {
            ResponseBody::Loaded { hash, .. } => hashes.push(hash),
            other => panic!("expected Loaded, got {other:?}"),
        }
    }
    assert!(child.wait().expect("server exits").success());
    assert_eq!(hashes[0], hashes[1], "content-addressed: one hash");
    assert_eq!(hashes[0], spec_hash(spec));

    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let _ = std::fs::remove_file(&trace_path);
    let trace = modref_obs::jsonl::parse(&trace_text).expect("trace parses");
    assert!(
        trace.counter("serve.cache.hit").unwrap_or(0) >= 1,
        "second connection must hit the shared spec cache"
    );
    assert!(trace.counter("serve.connections").unwrap_or(0) >= 2);
}

/// A streamed explore emits progress frames strictly before its final
/// response, and the final response is byte-identical to the
/// non-streamed run of the same request.
#[test]
fn streaming_explore_interleaves_frames_before_an_identical_final() {
    let run = |stream: bool| -> String {
        let flag = if stream { ",\"stream\":true" } else { "" };
        let input = format!(
            "{{\"v\":2,\"id\":1,\"op\":\"explore\",\"workload\":\"fig2\",\
             \"seeds\":2,\"top\":3,\"threads\":1{flag}}}\n"
        );
        let mut child = spawn_serve(&["--workers", "1", "-q"]);
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("request written");
        drop(child.stdin.take());
        let mut out = String::new();
        child
            .stdout
            .take()
            .expect("stdout piped")
            .read_to_string(&mut out)
            .expect("responses read");
        assert!(child.wait().expect("exits").success());
        out
    };
    let streamed = run(true);
    let lines: Vec<&str> = streamed.lines().collect();
    let (final_line, frames) = lines.split_last().expect("final response present");
    assert!(!frames.is_empty(), "streaming must emit progress frames");
    for frame in frames {
        let f = ProgressFrame::from_json(frame).expect("progress frame");
        assert_eq!(f.id, 1);
    }
    assert!(
        Response::from_json(final_line).is_ok(),
        "last line is the response"
    );
    let plain = run(false);
    assert_eq!(
        plain.trim(),
        *final_line,
        "final response must be byte-identical with streaming off"
    );
}

#[test]
fn hundred_requests_from_four_concurrent_writers_drop_no_ids() {
    let mut child = spawn_serve(&["--workers", "4", "--queue", "256", "-q"]);
    let stdin: Arc<Mutex<ChildStdin>> =
        Arc::new(Mutex::new(child.stdin.take().expect("stdin piped")));

    // Four writers, 25 requests each, ids partitioned by writer. A mixed
    // bag of ops — parse, lint, estimate, refine, a couple of explores —
    // plus guaranteed-failing requests, which still must be answered.
    let part = modref_workloads::named_partition("fig2").expect("fig2 partition");
    let mut handles = Vec::new();
    for writer in 0u64..4 {
        let stdin = Arc::clone(&stdin);
        let part = part.clone();
        handles.push(thread::spawn(move || {
            for i in 0..25u64 {
                let id = writer * 25 + i + 1;
                let part_json = json_str(&part);
                let line = match i % 5 {
                    0 => format!(r#"{{"id":{id},"op":"parse","workload":"medical"}}"#),
                    1 => format!(r#"{{"id":{id},"op":"lint","workload":"fig2"}}"#),
                    2 => format!(
                        r#"{{"id":{id},"op":"estimate","workload":"fig2","part":{part_json}}}"#
                    ),
                    3 => format!(
                        r#"{{"id":{id},"op":"refine","workload":"fig2","part":{part_json},"model":{}}}"#,
                        1 + (id % 4)
                    ),
                    _ => format!(r#"{{"id":{id},"op":"parse","workload":"no_such_workload"}}"#),
                };
                let mut guard = stdin.lock().expect("writer lock");
                guard
                    .write_all(format!("{line}\n").as_bytes())
                    .expect("request written");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer finishes");
    }
    drop(stdin); // last Arc clone gone -> stdin closes -> server drains

    let responses = drain(child);
    assert_eq!(responses.len(), 100, "every request must be answered");
    let ids: BTreeSet<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        (1..=100).collect::<BTreeSet<u64>>(),
        "no id may be dropped or duplicated"
    );
    for r in &responses {
        // The only expected failures are the deliberate bad ones.
        if let Some(code) = error_code(r) {
            assert_eq!(code, "unknown_workload", "id {}: {code}", r.id);
        }
    }
}

#[test]
fn expired_deadline_is_a_timeout_response() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(
            br#"{"id":1,"op":"explore","workload":"medical","seeds":32,"deadline_ms":1}
"#,
        )
        .expect("request written");
    let responses = drain(child);
    assert_eq!(responses.len(), 1);
    assert_eq!(error_code(&responses[0]), Some("timeout"));
}

#[test]
fn cancel_kills_an_inflight_explore() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        stdin
            .write_all(br#"{"id":1,"op":"explore","workload":"medical","seeds":64}"#)
            .and_then(|()| stdin.write_all(b"\n"))
            .expect("explore written");
        stdin.flush().expect("flushed");
        // Give the worker a moment to pick the explore up, then cancel.
        thread::sleep(std::time::Duration::from_millis(50));
        stdin
            .write_all(b"{\"id\":2,\"op\":\"cancel\",\"target\":1}\n")
            .expect("cancel written");
    }
    let responses = drain(child);
    assert_eq!(responses.len(), 2, "explore error + cancel ack");
    let explore = responses.iter().find(|r| r.id == 1).expect("id 1 answered");
    assert_eq!(error_code(explore), Some("cancelled"));
    let ack = responses.iter().find(|r| r.id == 2).expect("id 2 answered");
    assert!(
        matches!(ack.body, ResponseBody::Cancelled { target: 1, .. }),
        "{ack:?}"
    );
}

#[test]
fn malformed_line_is_answered_and_the_session_recovers() {
    let mut child = spawn_serve(&["--workers", "1", "-q"]);
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"this is not json\n{\"id\":7,\"op\":\"parse\",\"workload\":\"fig2\"}\n")
        .expect("requests written");
    let responses = drain(child);
    assert_eq!(responses.len(), 2);
    let bad = responses
        .iter()
        .find(|r| error_code(r).is_some())
        .expect("malformed line answered");
    assert_eq!(error_code(bad), Some("invalid_request"));
    let good = responses.iter().find(|r| r.id == 7).expect("id 7 answered");
    assert!(matches!(good.body, ResponseBody::Parsed(_)), "{good:?}");
}

/// Minimal JSON string encoding for partition text (quotes + newlines).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
