//! Compile-fail golden harness (ROADMAP 5c).
//!
//! Every directory under `tests/compile-fail/<case>/` holds a `bad.spec`
//! and an `expected.txt`. The harness runs the real `modref` binary on
//! the spec (default `modref lint bad.spec`; an optional `cmd.txt`
//! overrides the argument list) with the case directory as the working
//! directory, and diffs the combined exit code + stdout + stderr
//! byte-for-byte against `expected.txt` — so diagnostic positions,
//! wording, ordering and dedup are all pinned.
//!
//! The special command `tamper-rc` runs in-process instead: the
//! conformance lints (`RC01`–`RC04`) validate refined *architectures*,
//! and the refiner never produces a broken one, so the canonical tamper
//! from the core test suite (drop the arbiters) is applied before
//! rendering the diagnostics through the same human renderer the CLI
//! uses.
//!
//! Regenerate all expectations with:
//!
//! ```text
//! UPDATE_EXPECTED=1 cargo test -p modref-cli --test compile_fail
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn case_dirs() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/compile-fail");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("reading {}: {e}", root.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

fn run_case(dir: &Path) -> String {
    let cmd_path = dir.join("cmd.txt");
    let args: Vec<String> = if cmd_path.exists() {
        fs::read_to_string(&cmd_path)
            .expect("cmd.txt readable")
            .split_whitespace()
            .map(String::from)
            .collect()
    } else {
        vec!["lint".into(), "bad.spec".into()]
    };
    if args.first().map(String::as_str) == Some("tamper-rc") {
        return tampered_rc_output(dir);
    }
    let out = Command::new(env!("CARGO_BIN_EXE_modref"))
        .args(&args)
        .current_dir(dir)
        .output()
        .expect("modref binary runs");
    format!(
        "exit: {}\n--- stdout ---\n{}--- stderr ---\n{}",
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    )
}

/// The `RC` family golden: refine `bad.spec` under `part.part` to
/// Model1, drop the arbiters the refiner inserted, and render the
/// resulting conformance rejection exactly as `modref lint` would.
fn tampered_rc_output(dir: &Path) -> String {
    let src = fs::read_to_string(dir.join("bad.spec")).expect("bad.spec readable");
    let spec = modref_spec::parser::parse(&src).expect("fixture spec parses");
    let part_text = fs::read_to_string(dir.join("part.part")).expect("part.part readable");
    let (alloc, part) =
        modref_partition::textfmt::parse_partition(&spec, &part_text).expect("fixture part parses");
    let graph = modref_graph::AccessGraph::derive(&spec);
    let mut refined =
        modref_core::refine(&spec, &graph, &alloc, &part, modref_core::ImplModel::Model1)
            .expect("fixture refines");
    refined.architecture.arbiters.clear();
    let diags = modref_core::api::Codesign::from_spec(spec).lint_refined(&refined);
    let totals = modref_analyze::Totals::of(&diags);
    let mut out = String::from("tampered Model1 architecture (arbiters removed):\n");
    for d in &diags {
        out.push_str(&d.render_human("bad.spec"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{} error(s), {} warning(s), {} note(s)\n",
        totals.errors, totals.warnings, totals.notes
    ));
    out
}

#[test]
fn compile_fail_goldens() {
    let update = std::env::var_os("UPDATE_EXPECTED").is_some();
    let dirs = case_dirs();
    assert!(!dirs.is_empty(), "no compile-fail cases found");
    let mut failures = Vec::new();
    for dir in &dirs {
        let name = dir.file_name().unwrap().to_string_lossy().to_string();
        let actual = run_case(dir);
        let expected_path = dir.join("expected.txt");
        if update {
            fs::write(&expected_path, &actual).expect("write expected.txt");
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("{name}: reading expected.txt: {e} (run with UPDATE_EXPECTED=1 to create)")
        });
        if actual != expected {
            failures.push(format!(
                "case `{name}` diverged from expected.txt\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The harness must cover a parse error, every spec-level lint family
/// and each `DL` lint — losing a case directory should fail loudly, not
/// silently shrink coverage.
#[test]
fn compile_fail_covers_required_families() {
    let all: String = case_dirs()
        .iter()
        .map(|d| {
            fs::read_to_string(d.join("expected.txt")).unwrap_or_default()
                + &d.file_name().unwrap().to_string_lossy()
        })
        .collect();
    for needle in [
        "parse_error",
        "[ST",
        "[DF",
        "[CC",
        "[RC",
        "[DL01]",
        "[DL02]",
        "[DL03]",
        "[DL04]",
        "[DL05]",
    ] {
        assert!(
            all.contains(needle),
            "no compile-fail coverage for {needle}"
        );
    }
}
