//! End-to-end CLI flow test: `demo` writes files that `check`, `rates`,
//! `refine` and `simulate` can consume, driving the real binary through
//! its file formats.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn modref_bin() -> PathBuf {
    // target/debug/modref next to the test executable's directory.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/
    path.push("modref");
    path
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modref_cli_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

#[test]
fn demo_check_rates_refine_simulate_round_trip() {
    let bin = modref_bin();
    let dir = tmpdir("flow");
    let dir_s = dir.to_str().expect("utf8 tmpdir");

    let run = |args: &[&str]| -> (String, String, bool) {
        let out = Command::new(&bin).args(args).output().expect("binary runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };

    // demo
    let (stdout, stderr, ok) = run(&["demo", dir_s]);
    assert!(ok, "demo failed: {stderr}");
    assert!(stdout.contains("medical.spec"));
    let spec = format!("{dir_s}/medical.spec");
    let part = format!("{dir_s}/medical_design1.part");

    // check
    let (stdout, stderr, ok) = run(&["check", &spec]);
    assert!(ok, "check failed: {stderr}");
    assert!(stdout.contains("16 ("), "expected behavior count: {stdout}");
    assert!(stdout.contains("52 data"));

    // rates
    let (stdout, stderr, ok) = run(&["rates", &spec, "-p", &part]);
    assert!(ok, "rates failed: {stderr}");
    assert!(stdout.contains("Model1:"));
    assert!(stdout.contains("hot spot"));

    // refine to a file
    let refined = format!("{dir_s}/refined.spec");
    let (_, stderr, ok) = run(&["refine", &spec, "-p", &part, "-m", "2", "-o", &refined]);
    assert!(ok, "refine failed: {stderr}");
    assert!(stderr.contains("architecture:"));

    // simulate the refined output
    let (stdout, stderr, ok) = run(&["simulate", &refined]);
    assert!(ok, "simulate failed: {stderr}");
    assert!(stdout.contains("completed at t="));
    assert!(stdout.contains("volume = 115"), "volume line: {stdout}");

    // graph lists channels
    let (stdout, _, ok) = run(&["graph", &spec]);
    assert!(ok);
    assert!(stdout.lines().count() >= 52);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let bin = modref_bin();
    let out = Command::new(&bin)
        .args(["check", "/definitely/not/here.spec"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("modref:"));

    let out = Command::new(&bin)
        .args(["frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    let bin = modref_bin();
    let out = Command::new(&bin).args(["help"]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    // Every flag a command accepts is documented.
    for flag in [
        "--trace",
        "--quiet",
        "--verbose",
        "--seeds",
        "--threads",
        "--top",
        "--verify",
        "--kernel",
        "--max-steps",
        "--stats",
        "--profile",
        "--dot",
        "--process",
    ] {
        assert!(text.contains(flag), "help must document `{flag}`");
    }
}

#[test]
fn unknown_flags_error_with_suggestion() {
    let bin = modref_bin();
    let run = |args: &[&str]| {
        let out = Command::new(&bin).args(args).output().expect("binary runs");
        (
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };

    let (stderr, ok) = run(&["explore", "x.spec", "--seed", "4"]);
    assert!(!ok, "typo'd flag must fail");
    assert!(stderr.contains("unknown flag `--seed`"), "{stderr}");
    assert!(stderr.contains("did you mean `--seeds`"), "{stderr}");

    let (stderr, ok) = run(&["simulate", "x.spec", "--kernal", "event"]);
    assert!(!ok);
    assert!(stderr.contains("did you mean `--kernel`"), "{stderr}");

    // A mistyped global flag is caught too.
    let (stderr, ok) = run(&["check", "x.spec", "--trase", "t.jsonl"]);
    assert!(!ok);
    assert!(stderr.contains("did you mean `--trace`"), "{stderr}");
}

#[test]
fn trace_report_round_trip() {
    let bin = modref_bin();
    let dir = tmpdir("trace");
    let dir_s = dir.to_str().expect("utf8 tmpdir");

    let run = |args: &[&str]| -> (String, String, bool) {
        let out = Command::new(&bin).args(args).output().expect("binary runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };

    let (_, stderr, ok) = run(&["demo", dir_s]);
    assert!(ok, "demo failed: {stderr}");
    let spec = format!("{dir_s}/fig2.spec");
    let trace = format!("{dir_s}/fig2.jsonl");

    // Traced exploration writes a JSONL file and says so.
    let (_, stderr, ok) = run(&["explore", &spec, "--seeds", "2", "--trace", &trace]);
    assert!(ok, "traced explore failed: {stderr}");
    assert!(stderr.contains("wrote trace"), "{stderr}");
    let text = fs::read_to_string(&trace).expect("trace file written");
    assert!(text.lines().count() > 10, "trace should have many events");
    assert!(text.lines().all(|l| l.starts_with('{')), "JSONL lines");

    // The report renders a profile tree plus the metric summary.
    let (stdout, stderr, ok) = run(&["report", &trace]);
    assert!(ok, "report failed: {stderr}");
    assert!(stdout.contains("profile ("), "{stdout}");
    assert!(stdout.contains("explore"), "{stdout}");
    assert!(stdout.contains("counters"), "{stdout}");
    assert!(stdout.contains("lifetime.hit"), "{stdout}");

    // --quiet drops the informational lines but keeps the ranking table.
    let (stdout, stderr, ok) = run(&["explore", &spec, "--seeds", "1", "-q"]);
    assert!(ok, "quiet explore failed: {stderr}");
    assert!(
        !stdout.contains("explored"),
        "quiet must drop the header: {stdout}"
    );
    assert!(stdout.contains("rank"), "table stays: {stdout}");

    // report on garbage fails with a line-numbered parse error.
    let bad = format!("{dir_s}/bad.jsonl");
    fs::write(&bad, "{\"k\":\"span\"\nnot json\n").expect("write bad");
    let (_, stderr, ok) = run(&["report", &bad]);
    assert!(!ok, "malformed trace must fail");
    assert!(stderr.contains("line 1"), "{stderr}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verified_explore_verdicts_are_kernel_independent() {
    let bin = modref_bin();
    let dir = tmpdir("verify_kernel");
    let dir_s = dir.to_str().expect("utf8 tmpdir");

    let run = |args: &[&str]| -> (String, String, bool) {
        let out = Command::new(&bin).args(args).output().expect("binary runs");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };

    let (_, stderr, ok) = run(&["demo", dir_s]);
    assert!(ok, "demo failed: {stderr}");
    let spec = format!("{dir_s}/fig2.spec");

    // Keeps only the deterministic part of a verified-explore transcript:
    // the verdict table and closing summary, with the wall-clock and the
    // kernel name cut out of the banner line.
    fn verdicts(stdout: &str) -> String {
        stdout
            .lines()
            .skip_while(|l| !l.starts_with("verified "))
            .map(|l| match l.split_once(" by simulation") {
                Some((head, _)) => format!("{head}\n"),
                None => format!("{l}\n"),
            })
            .collect()
    }

    let (ev_out, stderr, ok) = run(&["explore", &spec, "--seeds", "2", "--verify"]);
    assert!(ok, "event-kernel verify failed: {stderr}");
    let (co_out, stderr, ok) = run(&[
        "explore", &spec, "--seeds", "2", "--verify", "--kernel", "compiled",
    ]);
    assert!(ok, "compiled-kernel verify failed: {stderr}");

    let (ev, co) = (verdicts(&ev_out), verdicts(&co_out));
    assert!(
        ev.lines().count() > 2 && ev.contains("algorithm"),
        "verdict table missing: {ev_out}"
    );
    assert_eq!(ev, co, "verification verdicts must be kernel-independent");
    assert!(
        co_out.contains("(compiled kernel;"),
        "banner names the kernel: {co_out}"
    );

    // Unknown kernel names are rejected up front, not defaulted.
    let (_, stderr, ok) = run(&["explore", &spec, "--verify", "--kernel", "jit"]);
    assert!(!ok, "invalid kernel must fail");
    assert!(stderr.contains("invalid --kernel `jit`"), "{stderr}");

    let _ = fs::remove_dir_all(&dir);
}
