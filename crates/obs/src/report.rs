//! Human-readable rendering of a trace: a profile tree (time per phase,
//! % of parent, call counts) and metric summaries.
//!
//! Spans are aggregated by *key* — the span name plus its attributes —
//! under their parent's key path, so four `refine` spans with
//! `model=Model1..4` stay distinct while eleven identical `cache.build`
//! calls fold into one line with `x11`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, Trace};
use crate::metrics::HistogramSnapshot;

/// One aggregated node of the profile tree.
#[derive(Debug, Default)]
struct Node {
    total_ns: u64,
    calls: u64,
    children: BTreeMap<String, Node>,
    /// First-seen order, so the tree prints in execution order rather
    /// than alphabetically.
    order: Vec<String>,
}

impl Node {
    fn child(&mut self, key: &str) -> &mut Node {
        if !self.children.contains_key(key) {
            self.order.push(key.to_string());
        }
        self.children.entry(key.to_string()).or_default()
    }
}

/// The display key of a span: `name[attr=value attr=value]`.
fn span_key(name: &str, attrs: &[(String, String)]) -> String {
    if attrs.is_empty() {
        return name.to_string();
    }
    let mut key = String::from(name);
    key.push('[');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            key.push(' ');
        }
        let _ = write!(key, "{k}={v}");
    }
    key.push(']');
    key
}

/// Renders the full report: profile tree, counters, gauges, histogram
/// summaries.
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    render_profile(trace, &mut out);
    render_metrics(trace, &mut out);
    out
}

fn render_profile(trace: &Trace, out: &mut String) {
    // id -> key path of the span, built in id order (parents have
    // smaller ids than their children by construction).
    let mut paths: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut root = Node::default();
    let mut span_count = 0u64;
    for e in &trace.events {
        let Event::Span {
            id,
            parent,
            name,
            dur_ns,
            attrs,
            ..
        } = e
        else {
            continue;
        };
        span_count += 1;
        let mut path = paths.get(parent).cloned().unwrap_or_default();
        path.push(span_key(name, attrs));
        let mut node = &mut root;
        for key in &path {
            node = node.child(key);
        }
        node.total_ns += dur_ns;
        node.calls += 1;
        paths.insert(*id, path);
    }

    if span_count == 0 {
        out.push_str("profile: no spans recorded\n");
        return;
    }
    let root_total: u64 = root.children.values().map(|n| n.total_ns).sum();
    let _ = writeln!(
        out,
        "profile ({} spans, roots total {})",
        span_count,
        fmt_ns(root_total)
    );
    let order = root.order.clone();
    for key in &order {
        render_node(out, key, &root.children[key], root_total, 1);
    }
}

fn render_node(out: &mut String, key: &str, node: &Node, parent_ns: u64, depth: usize) {
    let pct = if parent_ns == 0 {
        100.0
    } else {
        node.total_ns as f64 / parent_ns as f64 * 100.0
    };
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{key}");
    let _ = writeln!(
        out,
        "{label:<52} {:>10}  {:>5.1}%  x{}",
        fmt_ns(node.total_ns),
        pct,
        node.calls
    );
    for child in &node.order {
        render_node(out, child, &node.children[child], node.total_ns, depth + 1);
    }
}

fn render_metrics(trace: &Trace, out: &mut String) {
    let counters: Vec<(&String, u64)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Counter { name, value } => Some((name, *value)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        out.push_str("\ncounters\n");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<40} {value:>14}");
        }
        // Derived rates worth surfacing directly.
        let get = |n: &str| trace.counter(n).unwrap_or(0);
        let (hit, miss) = (get("lifetime.hit"), get("lifetime.miss"));
        if hit + miss > 0 {
            let _ = writeln!(
                out,
                "  {:<40} {:>13.1}%",
                "lifetime cache hit rate",
                hit as f64 / (hit + miss) as f64 * 100.0
            );
        }
    }

    let gauges: Vec<(&String, f64)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Gauge { name, value } => Some((name, *value)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        out.push_str("\ngauges\n");
        for (name, value) in gauges {
            let _ = writeln!(out, "  {name:<40} {value:>14}");
        }
    }

    let hists: Vec<(&String, HistogramSnapshot)> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Hist {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            } => Some((
                name,
                HistogramSnapshot::from_sparse(*count, *sum, *min, *max, buckets),
            )),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        out.push_str("\nhistograms\n");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in hists {
            if h.count == 0 {
                let _ = writeln!(out, "  {name:<28} {:>8} (empty)", 0);
                continue;
            }
            let p = |q: f64| fmt_ns(h.percentile(q).unwrap_or(0));
            let _ = writeln!(
                out,
                "  {name:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                fmt_ns(h.mean().unwrap_or(0.0) as u64),
                p(0.5),
                p(0.9),
                p(0.99),
                fmt_ns(h.max)
            );
        }
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClockMode;

    fn span(id: u64, parent: u64, name: &str, dur: u64, attrs: &[(&str, &str)]) -> Event {
        Event::Span {
            id,
            parent,
            name: name.into(),
            start_ns: 0,
            dur_ns: dur,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn tree_aggregates_and_percentages() {
        let trace = Trace {
            events: vec![
                Event::Meta {
                    version: 1,
                    clock: ClockMode::Wall,
                },
                span(1, 0, "explore", 1000, &[]),
                span(2, 1, "explore.job", 300, &[("algorithm", "greedy")]),
                span(3, 1, "explore.job", 500, &[("algorithm", "annealing")]),
                span(4, 1, "explore.job", 100, &[("algorithm", "annealing")]),
                Event::Counter {
                    name: "lifetime.hit".into(),
                    value: 75,
                },
                Event::Counter {
                    name: "lifetime.miss".into(),
                    value: 25,
                },
            ],
        };
        let text = render(&trace);
        assert!(text.contains("explore"), "{text}");
        // Two annealing jobs fold into one x2 line; greedy stays x1.
        assert!(text.contains("explore.job[algorithm=annealing]"), "{text}");
        assert!(text.contains("x2"), "{text}");
        assert!(text.contains("explore.job[algorithm=greedy]"), "{text}");
        // 600/1000 of the parent.
        assert!(text.contains("60.0%"), "{text}");
        // Hit-rate derived line.
        assert!(text.contains("75.0%"), "{text}");
    }

    #[test]
    fn empty_trace_is_handled() {
        let text = render(&Trace { events: vec![] });
        assert!(text.contains("no spans"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.0ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
