//! A minimal JSON reader/writer — just enough for the JSONL trace
//! format, with strict errors so `modref report` fails loudly on
//! malformed events instead of misreading them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer without fraction or exponent — held
    /// exactly, so ids/counters up to `u64::MAX` round-trip.
    UInt(u64),
    /// Any other JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved; the writer emits its own
    /// canonical order).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escapes `s` into a JSON string literal (with quotes) appended to
/// `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` so it parses back to exactly the same `u64`.
pub fn write_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Writes an f64 with enough precision to round-trip.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints shortest round-trip form for f64.
        let _ = write!(out, "{v:?}");
    } else {
        // JSON has no NaN/inf; encode as null (readers treat as 0).
        out.push_str("null");
    }
}

/// Writes any [`Value`] in canonical form: object keys in `BTreeMap`
/// order, numbers via [`write_u64`]/[`write_f64`], strings escaped with
/// [`write_str`] — so `parse(write(v)) == v` for every value without a
/// NaN/infinity inside.
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => write_u64(out, *n),
        Value::Num(n) => write_f64(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// A parse failure, with byte offset for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value from `text`, requiring that nothing
/// but whitespace follows.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain non-negative integers are kept exact (u64); everything
        // else goes through f64.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"t":true,"n":null}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["a"].as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(obj["a"].as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(obj["b"].as_obj().unwrap()["c"].as_str(), Some("x\ny"));
        assert_eq!(obj["t"], Value::Bool(true));
        assert_eq!(obj["n"], Value::Null);
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→";
        let mut out = String::new();
        write_str(&mut out, nasty);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "01x", "{} junk"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn write_value_round_trips() {
        let v = parse(r#"{"a":[1,2.5,-3,"s"],"b":{"c":"x\ny","d":null},"t":false}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(parse(&out).unwrap(), v);
        // Canonical: keys emerge in BTreeMap (sorted) order.
        assert!(out.find("\"a\"").unwrap() < out.find("\"b\"").unwrap());
    }

    #[test]
    fn u64_boundaries() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX),
            "u64::MAX must survive exactly"
        );
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
