//! Simulation trace events: the `(time, seq, id, value)` schema the
//! simulator's trace sink records, plus its JSONL encoding.
//!
//! Unlike the recorder events in [`crate::event`] (spans, metrics — the
//! *tooling's* activity), these describe the *simulated design's*
//! activity: every variable update, signal update and process wake of one
//! run. The schema lives here so the kernels, the waveform exporter and
//! the trace-level refinement checker all speak the same event type, and
//! so traces can move through the same strict JSONL discipline the
//! recorder uses: [`parse_events`]`(`[`write_events`]`(es))` reproduces
//! the events exactly, and any malformed line is an error naming it.
//!
//! Values are `i64` (the simulator's universal scalar). To keep the
//! encoding exact for the full range — the JSON layer holds only `u64`
//! integers precisely — the `v` field carries the value's
//! two's-complement bit pattern as a `u64`.

use crate::json::{self, Value};
use crate::jsonl::TraceParseError;

/// What a simulation trace event observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimTraceId {
    /// A write to a scalar variable, by declaration slot.
    Var(u32),
    /// A write to one element of an array variable.
    Elem {
        /// Variable declaration slot.
        var: u32,
        /// Element index within the array.
        index: u32,
    },
    /// A write to a signal, by declaration slot.
    Signal(u32),
    /// A blocked process woke (its wait condition came true, its children
    /// completed, or its sleep elapsed), by process id.
    Wake(u32),
}

/// One recorded simulation event.
///
/// `seq` is the event's position in the run's total order (0-based,
/// dense): events at the same simulated `time` are ordered by `seq`,
/// which is exactly the deterministic execution order — all three
/// kernels record identical sequences for the same specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimTraceEvent {
    /// Simulated time of the event.
    pub time: u64,
    /// Position in the run's total event order (dense, 0-based).
    pub seq: u64,
    /// What was observed.
    pub id: SimTraceId,
    /// The written value (wake events carry the behavior index of the
    /// woken process).
    pub value: i64,
}

/// Serializes events to JSONL, one per line with a trailing newline:
/// `{"k":"var","t":0,"seq":3,"slot":1,"v":5}`.
pub fn write_events(events: &[SimTraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let (kind, slot) = match e.id {
            SimTraceId::Var(s) => ("var", s),
            SimTraceId::Elem { var, .. } => ("elem", var),
            SimTraceId::Signal(s) => ("sig", s),
            SimTraceId::Wake(p) => ("wake", p),
        };
        out.push_str("{\"k\":");
        json::write_str(&mut out, kind);
        out.push_str(",\"t\":");
        json::write_u64(&mut out, e.time);
        out.push_str(",\"seq\":");
        json::write_u64(&mut out, e.seq);
        out.push_str(",\"slot\":");
        json::write_u64(&mut out, u64::from(slot));
        if let SimTraceId::Elem { index, .. } = e.id {
            out.push_str(",\"i\":");
            json::write_u64(&mut out, u64::from(index));
        }
        out.push_str(",\"v\":");
        json::write_u64(&mut out, e.value as u64);
        out.push_str("}\n");
    }
    out
}

fn u64_field(obj: &std::collections::BTreeMap<String, Value>, k: &str) -> Result<u64, String> {
    obj.get(k)
        .ok_or_else(|| format!("missing field `{k}`"))?
        .as_u64()
        .ok_or_else(|| format!("field `{k}` must be a non-negative integer"))
}

fn u32_field(obj: &std::collections::BTreeMap<String, Value>, k: &str) -> Result<u32, String> {
    u32::try_from(u64_field(obj, k)?).map_err(|_| format!("field `{k}` out of range"))
}

/// Parses a JSONL event stream, strictly: blank lines are skipped,
/// anything else must be a well-formed event line.
///
/// # Errors
///
/// Any malformed line (bad JSON, unknown kind, missing or mistyped
/// field) fails with its 1-based line number.
pub fn parse_events(text: &str) -> Result<Vec<SimTraceEvent>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| TraceParseError { line: i + 1, msg };
        let v = json::parse(line).map_err(|e| fail(e.to_string()))?;
        let obj = v
            .as_obj()
            .ok_or_else(|| fail("event must be a JSON object".into()))?;
        let kind = obj
            .get("k")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("field `k` must be a string".into()))?;
        let id = match kind {
            "var" => SimTraceId::Var(u32_field(obj, "slot").map_err(fail)?),
            "elem" => SimTraceId::Elem {
                var: u32_field(obj, "slot").map_err(fail)?,
                index: u32_field(obj, "i").map_err(fail)?,
            },
            "sig" => SimTraceId::Signal(u32_field(obj, "slot").map_err(fail)?),
            "wake" => SimTraceId::Wake(u32_field(obj, "slot").map_err(fail)?),
            other => return Err(fail(format!("unknown event kind `{other}`"))),
        };
        events.push(SimTraceEvent {
            time: u64_field(obj, "t").map_err(fail)?,
            seq: u64_field(obj, "seq").map_err(fail)?,
            id,
            value: u64_field(obj, "v").map_err(fail)? as i64,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SimTraceEvent> {
        vec![
            SimTraceEvent {
                time: 0,
                seq: 0,
                id: SimTraceId::Var(3),
                value: -5,
            },
            SimTraceEvent {
                time: 0,
                seq: 1,
                id: SimTraceId::Elem { var: 1, index: 7 },
                value: i64::MIN,
            },
            SimTraceEvent {
                time: 12,
                seq: 2,
                id: SimTraceId::Signal(0),
                value: 1,
            },
            SimTraceEvent {
                time: 12,
                seq: 3,
                id: SimTraceId::Wake(2),
                value: i64::MAX,
            },
        ]
    }

    #[test]
    fn events_round_trip_exactly() {
        let events = sample();
        let text = write_events(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = parse_events(&text).expect("parses");
        assert_eq!(events, back);
        assert_eq!(write_events(&back), text, "encoding is stable");
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let good = write_events(&sample());
        for (bad, what) in [
            ("{\"k\":\"var\"}", "missing fields"),
            (
                "{\"k\":\"nope\",\"t\":0,\"seq\":0,\"slot\":0,\"v\":0}",
                "unknown kind",
            ),
            ("not json", "bad json"),
            (
                "{\"k\":\"elem\",\"t\":0,\"seq\":0,\"slot\":0,\"v\":0}",
                "elem without index",
            ),
            (
                "{\"k\":\"var\",\"t\":-1,\"seq\":0,\"slot\":0,\"v\":0}",
                "negative time",
            ),
        ] {
            let text = format!("{good}{bad}\n");
            let err = parse_events(&text).expect_err(what);
            assert_eq!(err.line, good.lines().count() + 1, "{what}");
        }
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let text = format!("\n{}\n\n", write_events(&sample()));
        assert_eq!(parse_events(&text).unwrap(), sample());
    }
}
