//! Trace events: what the recorder emits and the JSONL sink serializes.

use crate::ClockMode;

/// JSONL format version written to the `meta` event.
pub const FORMAT_VERSION: u32 = 1;

/// One recorded event.
///
/// Spans are emitted when their guard drops; metric events are emitted
/// once per registered metric when the trace is flushed. Every kind
/// round-trips through [`crate::jsonl`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Stream header: format version and clock mode of the run.
    Meta {
        /// [`FORMAT_VERSION`] at write time.
        version: u32,
        /// How the run's timestamps were produced.
        clock: ClockMode,
    },
    /// A finished span.
    Span {
        /// Per-run sequence id (see [`crate::init`]); unique in a trace.
        id: u64,
        /// Id of the enclosing span, 0 for roots.
        parent: u64,
        /// Span name, e.g. `explore.job`.
        name: String,
        /// Start time in ns since init (0 in logical-clock mode).
        start_ns: u64,
        /// Duration in ns (0 in logical-clock mode).
        dur_ns: u64,
        /// `key=value` attributes in insertion order.
        attrs: Vec<(String, String)>,
    },
    /// Final value of a counter.
    Counter {
        /// Metric name, e.g. `lifetime.hit`.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// Final value of a gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Last value set.
        value: f64,
    },
    /// Final state of a fixed-bucket histogram.
    Hist {
        /// Metric name.
        name: String,
        /// Number of recorded samples.
        count: u64,
        /// Sum of all samples (saturating).
        sum: u64,
        /// Smallest sample (0 when empty).
        min: u64,
        /// Largest sample (0 when empty).
        max: u64,
        /// Sparse `(bucket index, count)` pairs, ascending by index.
        /// Bucket `i` holds values `v` with `floor_log2(v) + 1 == i`
        /// (bucket 0 holds only `v == 0`).
        buckets: Vec<(u8, u64)>,
    },
}

impl Event {
    /// The event kind tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Meta { .. } => "meta",
            Event::Span { .. } => "span",
            Event::Counter { .. } => "ctr",
            Event::Gauge { .. } => "gauge",
            Event::Hist { .. } => "hist",
        }
    }
}

/// A flushed recording: the ordered event stream of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Meta first, then spans by id, then metric snapshots by name.
    pub events: Vec<Event>,
}

impl Trace {
    /// The final value of a counter in this trace, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.events.iter().find_map(|e| match e {
            Event::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// All counters as `(name, value)` in stream order.
    pub fn counters(&self) -> Vec<(&str, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name, value } => Some((name.as_str(), *value)),
                _ => None,
            })
            .collect()
    }

    /// Spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Span { name: n, .. } if n == name))
            .collect()
    }
}
