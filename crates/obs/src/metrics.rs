//! Counters, gauges and fixed-bucket histograms.
//!
//! Metrics live in a process-global registry keyed by name. Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) are interned once (a mutex
//! lock on first use per name) and are `Copy` — hot paths look a handle
//! up once, outside their loop, and afterwards each update is one
//! enabled-flag check plus one relaxed atomic operation. Updates
//! commute, so aggregated values are identical regardless of thread
//! count or scheduling.
//!
//! [`Meter`] is the per-run complement: a plain local array of counts
//! (no atomics) for code that needs its *own* totals — the simulation
//! kernels populate `SchedStats` from one — which it publishes into the
//! global registry on [`Meter::publish`], so a per-run report and the
//! global trace can never disagree.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// Number of histogram buckets: bucket 0 for value 0, bucket `i` for
/// values with `floor_log2(v) == i - 1`, up to `u64::MAX` in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Shared histogram storage.
#[derive(Debug)]
pub struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// The bucket index a value falls into.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static AtomicU64>,
    gauges: BTreeMap<String, &'static AtomicU64>,
    hists: BTreeMap<String, &'static HistCore>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// A handle to a named counter. `Copy`; cache it outside hot loops.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n` when the recorder is enabled; a no-op (one relaxed load)
    /// otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one (see [`Counter::add`]).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current accumulated value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Interns (or finds) the counter named `name`.
///
/// Storage for each distinct name is allocated once for the process
/// lifetime; the set of metric names is fixed and small by design.
pub fn counter(name: &str) -> Counter {
    with_registry(|r| {
        if let Some(&c) = r.counters.get(name) {
            return Counter(c);
        }
        let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        r.counters.insert(name.to_string(), cell);
        Counter(cell)
    })
}

/// A handle to a named gauge (last-write-wins `f64`).
#[derive(Debug, Clone, Copy)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    /// Stores `v` when the recorder is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Interns (or finds) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    with_registry(|r| {
        if let Some(&g) = r.gauges.get(name) {
            return Gauge(g);
        }
        let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0f64.to_bits())));
        r.gauges.insert(name.to_string(), cell);
        Gauge(cell)
    })
}

/// A handle to a named fixed-bucket histogram.
#[derive(Debug, Clone, Copy)]
pub struct Histogram(&'static HistCore);

impl Histogram {
    /// Records one sample when the recorder is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let h = self.0;
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let s = h.sum.load(Ordering::Relaxed);
        h.sum.store(s.saturating_add(v), Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0;
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Interns (or finds) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    with_registry(|r| {
        if let Some(&h) = r.hists.get(name) {
            return Histogram(h);
        }
        let cell: &'static HistCore = Box::leak(Box::new(HistCore::new()));
        r.hists.insert(name.to_string(), cell);
        Histogram(cell)
    })
}

/// A materialized histogram state with percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from the sparse bucket encoding of an
    /// [`Event::Hist`].
    pub fn from_sparse(count: u64, sum: u64, min: u64, max: u64, sparse: &[(u8, u64)]) -> Self {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        for &(i, c) in sparse {
            if (i as usize) < HIST_BUCKETS {
                buckets[i as usize] = c;
            }
        }
        Self {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// The sparse `(bucket, count)` encoding used in events.
    pub fn to_sparse(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`): the inclusive upper
    /// bound of the bucket where the cumulative count first reaches
    /// `ceil(q * count)`, clamped to the observed `[min, max]`. Exact
    /// when all samples share a bucket; otherwise within one power of
    /// two. Returns `None` on an empty histogram.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean sample value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as flush events, ordered by kind then name.
    pub fn into_events(self) -> Vec<Event> {
        let mut out = Vec::new();
        for (name, value) in self.counters {
            out.push(Event::Counter { name, value });
        }
        for (name, value) in self.gauges {
            out.push(Event::Gauge { name, value });
        }
        for (name, h) in self.hists {
            out.push(Event::Hist {
                buckets: h.to_sparse(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                name,
            });
        }
        out
    }
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect(),
        hists: r
            .hists
            .iter()
            .map(|(n, h)| (n.clone(), Histogram(h).snapshot()))
            .collect(),
    })
}

/// Zeroes every registered metric (called by [`crate::init`]).
pub fn reset_all() {
    with_registry(|r| {
        for c in r.counters.values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in r.gauges.values() {
            g.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in r.hists.values() {
            h.reset();
        }
    });
}

/// A per-run, thread-local metric scope: named slots of plain `u64`
/// counts with no atomics, suitable for the innermost scheduler loops.
///
/// [`Meter::publish`] adds the totals into the globally registered
/// counters of the same names (when the recorder is enabled) — so a
/// report built from the meter and a trace built from the registry show
/// the same numbers by construction.
#[derive(Debug, Clone)]
pub struct Meter {
    names: &'static [&'static str],
    vals: Vec<u64>,
}

impl Meter {
    /// Creates a meter with one slot per name.
    pub fn new(names: &'static [&'static str]) -> Self {
        Self {
            names,
            vals: vec![0; names.len()],
        }
    }

    /// Adds `n` to slot `i`. Plain integer add — always counted, whether
    /// or not the recorder is enabled (per-run stats are part of the
    /// caller's result, not optional telemetry).
    #[inline(always)]
    pub fn add(&mut self, i: usize, n: u64) {
        self.vals[i] += n;
    }

    /// Increments slot `i` by one.
    #[inline(always)]
    pub fn inc(&mut self, i: usize) {
        self.vals[i] += 1;
    }

    /// The current value of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.vals[i]
    }

    /// Adds every slot into the global counter of the same name (no-op
    /// while the recorder is disabled).
    pub fn publish(&self) {
        if !crate::enabled() {
            return;
        }
        for (i, name) in self.names.iter().enumerate() {
            counter(name).add(self.vals[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let s = HistogramSnapshot::from_sparse(0, 0, 0, 0, &[]);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn single_sample_percentiles_are_the_sample() {
        // One sample of 100 → bucket 7 (64..=127); min==max==100 clamps
        // every percentile to exactly 100.
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[bucket_of(100)] = 1;
        let s = HistogramSnapshot {
            count: 1,
            sum: 100,
            min: 100,
            max: 100,
            buckets,
        };
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(q), Some(100), "q={q}");
        }
        assert_eq!(s.mean(), Some(100.0));
    }

    #[test]
    fn saturating_bucket_holds_max_values() {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[64] = 3;
        let s = HistogramSnapshot {
            count: 3,
            sum: u64::MAX,
            min: u64::MAX - 1,
            max: u64::MAX,
            buckets,
        };
        assert_eq!(s.percentile(0.5), Some(u64::MAX));
        assert_eq!(s.percentile(0.99), Some(u64::MAX));
    }

    #[test]
    fn percentiles_walk_buckets_in_order() {
        // 90 samples of ~1, 10 samples of ~1000:
        // p50 ≤ upper(bucket(1)) = 1, p99 lands in the 1000 bucket.
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[bucket_of(1)] = 90;
        buckets[bucket_of(1000)] = 10;
        let s = HistogramSnapshot {
            count: 100,
            sum: 90 + 10_000,
            min: 1,
            max: 1000,
            buckets,
        };
        assert_eq!(s.percentile(0.5), Some(1));
        assert_eq!(s.percentile(0.9), Some(1));
        assert_eq!(s.percentile(0.99), Some(1000));
        assert_eq!(s.percentile(1.0), Some(1000));
    }

    #[test]
    fn sparse_round_trip() {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[0] = 2;
        buckets[5] = 7;
        buckets[64] = 1;
        let s = HistogramSnapshot {
            count: 10,
            sum: 999,
            min: 0,
            max: u64::MAX,
            buckets,
        };
        let sparse = s.to_sparse();
        assert_eq!(sparse, vec![(0, 2), (5, 7), (64, 1)]);
        let back = HistogramSnapshot::from_sparse(10, 999, 0, u64::MAX, &sparse);
        assert_eq!(s, back);
    }

    #[test]
    fn meter_accumulates_and_reads_back() {
        static NAMES: &[&str] = &["test.meter.a", "test.meter.b"];
        let mut m = Meter::new(NAMES);
        m.inc(0);
        m.add(1, 41);
        m.inc(1);
        assert_eq!(m.get(0), 1);
        assert_eq!(m.get(1), 42);
        // publish() with the recorder disabled must not touch the
        // registry.
        m.publish();
    }
}
