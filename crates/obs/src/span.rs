//! Hierarchical spans recorded into per-thread buffers.
//!
//! A [`Span`] is an RAII guard: creation stamps an id (per-run sequence
//! counter), a parent (the enclosing span on this thread, or an explicit
//! one for work handed to other threads) and a start time; drop stamps
//! the duration and pushes one event onto a **thread-local buffer** —
//! no lock, no shared write. Buffers spill into a global pending list
//! when they grow past a threshold and when their thread exits, and the
//! flush ([`crate::shutdown`]) merges pending + its own thread's buffer
//! and orders everything by id.
//!
//! When the recorder is disabled, [`span`] returns an inert guard: one
//! relaxed atomic load, no allocation, nothing recorded.

use std::cell::RefCell;
use std::fmt::Display;
use std::sync::Mutex;

use crate::event::Event;
use crate::next_id;

/// Spill a thread's buffer into the global pending list once it holds
/// this many events (amortizes the mutex to 1/N span drops).
const SPILL_AT: usize = 256;

static PENDING: Mutex<Vec<Event>> = Mutex::new(Vec::new());

struct LocalBuf {
    events: Vec<Event>,
}

impl LocalBuf {
    fn spill(&mut self) {
        if self.events.is_empty() {
            return;
        }
        PENDING
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(&mut self.events);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.spill();
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const { RefCell::new(LocalBuf { events: Vec::new() }) };
    /// The stack of open span ids on this thread (for implicit parents).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Discards all buffered span events (current thread + pending).
pub(crate) fn clear_pending() {
    PENDING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    BUF.with(|b| b.borrow_mut().events.clear());
}

/// Moves every buffered span event out of the recorder. Events from
/// threads that are still alive and below their spill threshold are not
/// visible — the modref flows join all worker threads before flushing.
pub(crate) fn drain_pending() -> Vec<Event> {
    let mut out: Vec<Event> = std::mem::take(
        &mut PENDING
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    BUF.with(|b| out.append(&mut b.borrow_mut().events));
    out
}

/// An open span. Records itself on drop; inert when the recorder was
/// disabled at creation.
#[derive(Debug)]
pub struct Span {
    /// `None` = inert (recorder disabled at creation).
    data: Option<SpanData>,
}

#[derive(Debug)]
struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(String, String)>,
    /// Whether this span was pushed on the thread-local stack (explicit
    /// parents skip the stack so cross-thread children don't adopt
    /// unrelated local spans).
    on_stack: bool,
}

/// Opens a span named `name` under the innermost open span of this
/// thread (or as a root).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { data: None };
    }
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    open(name, parent, true)
}

/// Opens a span with an explicit parent id — for work fanned out to
/// other threads, where the logical parent is not on this thread's
/// stack. `parent` 0 makes it a root.
#[inline]
pub fn span_under(parent: u64, name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { data: None };
    }
    open(name, parent, true)
}

fn open(name: &'static str, parent: u64, on_stack: bool) -> Span {
    let id = next_id();
    if on_stack {
        STACK.with(|s| s.borrow_mut().push(id));
    }
    Span {
        data: Some(SpanData {
            id,
            parent,
            name,
            start_ns: crate::now_ns(),
            attrs: Vec::new(),
            on_stack,
        }),
    }
}

impl Span {
    /// Attaches a `key=value` attribute (builder style). No-op on inert
    /// spans.
    pub fn attr(mut self, key: &str, value: impl Display) -> Self {
        if let Some(d) = &mut self.data {
            d.attrs.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// This span's id (0 when inert) — pass to [`span_under`] for
    /// children created on other threads.
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }

    /// Nanoseconds since the span opened (0 when inert or in
    /// logical-clock mode).
    pub fn elapsed_ns(&self) -> u64 {
        self.data
            .as_ref()
            .map_or(0, |d| crate::now_ns().saturating_sub(d.start_ns))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else {
            return;
        };
        if d.on_stack {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards drop LIFO per thread; tolerate a leaked guard by
                // popping through it.
                while let Some(top) = stack.pop() {
                    if top == d.id {
                        break;
                    }
                }
            });
        }
        // A flush may have happened while the span was open; the event
        // would belong to a closed run, so drop it.
        if !crate::enabled() {
            return;
        }
        let dur_ns = crate::now_ns().saturating_sub(d.start_ns);
        BUF.with(|b| {
            let mut buf = b.borrow_mut();
            buf.events.push(Event::Span {
                id: d.id,
                parent: d.parent,
                name: d.name.to_string(),
                start_ns: d.start_ns,
                dur_ns,
                attrs: d.attrs,
            });
            if buf.events.len() >= SPILL_AT {
                buf.spill();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, shutdown, ClockMode};

    #[test]
    fn nesting_links_parents() {
        let _l = crate::testlock::hold();
        init(ClockMode::Logical);
        let (outer_id, inner_id);
        {
            let outer = span("outer");
            outer_id = outer.id();
            let inner = span("inner");
            inner_id = inner.id();
            drop(inner);
            drop(outer);
        }
        let trace = shutdown();
        let mut saw_inner = false;
        for e in &trace.events {
            if let Event::Span {
                id, parent, name, ..
            } = e
            {
                if name == "inner" {
                    assert_eq!(*id, inner_id);
                    assert_eq!(*parent, outer_id);
                    saw_inner = true;
                }
                if name == "outer" {
                    assert_eq!(*parent, 0);
                }
            }
        }
        assert!(saw_inner);
    }

    #[test]
    fn cross_thread_spans_merge_at_flush() {
        let _l = crate::testlock::hold();
        init(ClockMode::Logical);
        let root = span("root");
        let root_id = root.id();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _child = span_under(root_id, "child").attr("t", "x");
                });
            }
        });
        drop(root);
        let trace = shutdown();
        let children = trace.spans_named("child");
        assert_eq!(children.len(), 4);
        for c in children {
            if let Event::Span { parent, attrs, .. } = c {
                assert_eq!(*parent, root_id);
                assert_eq!(attrs[0], ("t".to_string(), "x".to_string()));
            }
        }
        // Events are ordered by id.
        let ids: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Span { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
