//! The JSONL trace sink: one event per line, `{"k": "<kind>", ...}`.
//!
//! Serialization and parsing are exact inverses for every event kind —
//! [`parse`]`(`[`write`](fn@write)`(trace))` reproduces the trace bit for bit —
//! and parsing is strict: any malformed line (bad JSON, unknown kind,
//! missing or mistyped field) is an error naming the line, which is what
//! lets CI pipe a trace through `modref report` as a well-formedness
//! check.

use crate::event::{Event, Trace, FORMAT_VERSION};
use crate::json::{self, Value};
use crate::ClockMode;

/// Serializes a trace to JSONL (one event per line, trailing newline).
pub fn write(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        write_event(&mut out, e);
        out.push('\n');
    }
    out
}

fn write_event(out: &mut String, e: &Event) {
    out.push_str("{\"k\":");
    json::write_str(out, e.kind());
    match e {
        Event::Meta { version, clock } => {
            out.push_str(",\"version\":");
            json::write_u64(out, *version as u64);
            out.push_str(",\"clock\":");
            json::write_str(
                out,
                match clock {
                    ClockMode::Wall => "wall",
                    ClockMode::Logical => "logical",
                },
            );
        }
        Event::Span {
            id,
            parent,
            name,
            start_ns,
            dur_ns,
            attrs,
        } => {
            out.push_str(",\"id\":");
            json::write_u64(out, *id);
            out.push_str(",\"parent\":");
            json::write_u64(out, *parent);
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"start\":");
            json::write_u64(out, *start_ns);
            out.push_str(",\"dur\":");
            json::write_u64(out, *dur_ns);
            out.push_str(",\"attrs\":[");
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json::write_str(out, k);
                out.push(',');
                json::write_str(out, v);
                out.push(']');
            }
            out.push(']');
        }
        Event::Counter { name, value } => {
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"v\":");
            json::write_u64(out, *value);
        }
        Event::Gauge { name, value } => {
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"v\":");
            json::write_f64(out, *value);
        }
        Event::Hist {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        } => {
            out.push_str(",\"name\":");
            json::write_str(out, name);
            out.push_str(",\"count\":");
            json::write_u64(out, *count);
            out.push_str(",\"sum\":");
            json::write_u64(out, *sum);
            out.push_str(",\"min\":");
            json::write_u64(out, *min);
            out.push_str(",\"max\":");
            json::write_u64(out, *max);
            out.push_str(",\"buckets\":[");
            for (i, (b, c)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json::write_u64(out, *b as u64);
                out.push(',');
                json::write_u64(out, *c);
                out.push(']');
            }
            out.push(']');
        }
    }
    out.push('}');
}

/// A JSONL parse failure: the 1-based line and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the malformed event.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a JSONL trace, strictly. Blank lines are allowed (and
/// skipped); anything else must be a well-formed event.
pub fn parse(text: &str) -> Result<Trace, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| TraceParseError { line: i + 1, msg };
        let v = json::parse(line).map_err(|e| fail(e.to_string()))?;
        events.push(event_from_value(&v).map_err(fail)?);
    }
    Ok(Trace { events })
}

fn field<'a>(
    obj: &'a std::collections::BTreeMap<String, Value>,
    k: &str,
) -> Result<&'a Value, String> {
    obj.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

fn u64_field(obj: &std::collections::BTreeMap<String, Value>, k: &str) -> Result<u64, String> {
    field(obj, k)?
        .as_u64()
        .ok_or_else(|| format!("field `{k}` must be a non-negative integer"))
}

fn str_field(obj: &std::collections::BTreeMap<String, Value>, k: &str) -> Result<String, String> {
    Ok(field(obj, k)?
        .as_str()
        .ok_or_else(|| format!("field `{k}` must be a string"))?
        .to_string())
}

fn event_from_value(v: &Value) -> Result<Event, String> {
    let obj = v.as_obj().ok_or("event must be a JSON object")?;
    let kind = str_field(obj, "k")?;
    match kind.as_str() {
        "meta" => {
            let version = u64_field(obj, "version")? as u32;
            if version > FORMAT_VERSION {
                return Err(format!(
                    "trace format version {version} is newer than supported {FORMAT_VERSION}"
                ));
            }
            let clock = match str_field(obj, "clock")?.as_str() {
                "wall" => ClockMode::Wall,
                "logical" => ClockMode::Logical,
                other => return Err(format!("unknown clock mode `{other}`")),
            };
            Ok(Event::Meta { version, clock })
        }
        "span" => {
            let attrs_v = field(obj, "attrs")?
                .as_arr()
                .ok_or("field `attrs` must be an array")?;
            let mut attrs = Vec::with_capacity(attrs_v.len());
            for pair in attrs_v {
                let p = pair.as_arr().ok_or("attr must be a [key, value] pair")?;
                if p.len() != 2 {
                    return Err("attr must be a [key, value] pair".into());
                }
                attrs.push((
                    p[0].as_str()
                        .ok_or("attr key must be a string")?
                        .to_string(),
                    p[1].as_str()
                        .ok_or("attr value must be a string")?
                        .to_string(),
                ));
            }
            Ok(Event::Span {
                id: u64_field(obj, "id")?,
                parent: u64_field(obj, "parent")?,
                name: str_field(obj, "name")?,
                start_ns: u64_field(obj, "start")?,
                dur_ns: u64_field(obj, "dur")?,
                attrs,
            })
        }
        "ctr" => Ok(Event::Counter {
            name: str_field(obj, "name")?,
            value: u64_field(obj, "v")?,
        }),
        "gauge" => Ok(Event::Gauge {
            name: str_field(obj, "name")?,
            value: match field(obj, "v")? {
                Value::Null => 0.0,
                v => v.as_f64().ok_or("field `v` must be a number")?,
            },
        }),
        "hist" => {
            let buckets_v = field(obj, "buckets")?
                .as_arr()
                .ok_or("field `buckets` must be an array")?;
            let mut buckets = Vec::with_capacity(buckets_v.len());
            for pair in buckets_v {
                let p = pair
                    .as_arr()
                    .ok_or("bucket must be an [index, count] pair")?;
                if p.len() != 2 {
                    return Err("bucket must be an [index, count] pair".into());
                }
                let idx = p[0].as_u64().ok_or("bucket index must be an integer")?;
                if idx >= crate::metrics::HIST_BUCKETS as u64 {
                    return Err(format!("bucket index {idx} out of range"));
                }
                buckets.push((
                    idx as u8,
                    p[1].as_u64().ok_or("bucket count must be an integer")?,
                ));
            }
            Ok(Event::Hist {
                name: str_field(obj, "name")?,
                count: u64_field(obj, "count")?,
                sum: u64_field(obj, "sum")?,
                min: u64_field(obj, "min")?,
                max: u64_field(obj, "max")?,
                buckets,
            })
        }
        other => Err(format!("unknown event kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event::Meta {
                    version: FORMAT_VERSION,
                    clock: ClockMode::Logical,
                },
                Event::Span {
                    id: 1,
                    parent: 0,
                    name: "explore".into(),
                    start_ns: 0,
                    dur_ns: 1234,
                    attrs: vec![("seeds".into(), "4".into())],
                },
                Event::Span {
                    id: 2,
                    parent: 1,
                    name: "explore.job".into(),
                    start_ns: 10,
                    dur_ns: 20,
                    attrs: vec![
                        ("algorithm".into(), "anneal\"quote".into()),
                        ("seed".into(), "3".into()),
                    ],
                },
                Event::Counter {
                    name: "lifetime.hit".into(),
                    value: u64::MAX,
                },
                Event::Gauge {
                    name: "explore.threads".into(),
                    value: 4.25,
                },
                Event::Hist {
                    name: "explore.job_ns".into(),
                    count: 3,
                    sum: 300,
                    min: 50,
                    max: 150,
                    buckets: vec![(6, 1), (7, 1), (8, 1)],
                },
            ],
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let trace = sample_trace();
        let text = write(&trace);
        assert_eq!(text.lines().count(), trace.events.len());
        let back = parse(&text).expect("parses");
        assert_eq!(trace, back);
        // And again: stability.
        assert_eq!(write(&back), text);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let good = write(&sample_trace());
        for (bad, what) in [
            ("{\"k\":\"span\"}", "missing fields"),
            ("{\"k\":\"nope\"}", "unknown kind"),
            ("not json", "bad json"),
            ("{\"k\":\"ctr\",\"name\":\"x\",\"v\":-1}", "negative counter"),
            ("{\"k\":\"hist\",\"name\":\"x\",\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[[99,1]]}", "bucket out of range"),
        ] {
            let text = format!("{good}{bad}\n");
            let err = parse(&text).expect_err(what);
            assert_eq!(err.line, good.lines().count() + 1, "{what}");
        }
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let text = format!("\n{}\n\n", write(&sample_trace()));
        assert_eq!(parse(&text).unwrap(), sample_trace());
    }
}
