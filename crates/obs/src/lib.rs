//! # modref-obs
//!
//! Structured tracing, metrics and profiling for the modref codesign
//! flow — zero dependencies, near-zero cost when disabled.
//!
//! Three layers:
//!
//! * **Spans** ([`span`](fn@span), [`span_under`]) — hierarchical timed regions
//!   with `key=value` attributes, recorded into per-thread buffers that
//!   are merged at flush. Span and event ids come from a per-run
//!   sequence counter (never wall clock or randomness), so ids are
//!   reproducible run to run.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`], [`Meter`]) —
//!   named counters, gauges and fixed-bucket histograms with
//!   p50/p90/p99 summaries, aggregated in a global registry. Counter
//!   addition commutes, so aggregated metric values are identical
//!   regardless of thread count.
//! * **Sinks** ([`jsonl`], [`report`]) — a JSONL event stream
//!   (serialize → parse round-trips exactly) and a human-readable
//!   profile tree (time per phase, % of parent, call counts).
//!
//! ## Cost model
//!
//! The recorder is **disabled by default**. Every recording entry point
//! first performs one relaxed atomic load; when disabled it returns
//! immediately, creating no allocation, no lock and no event — so
//! instrumented hot paths run at full speed in benches. Enabling costs
//! one atomic add per counter bump and one thread-local push per span.
//!
//! ## Determinism
//!
//! With [`ClockMode::Logical`], timestamps and durations are recorded
//! as zero: the only varying content in a trace is scheduling order of
//! id assignment, and every *aggregated* metric (counters, gauges,
//! histogram bucket counts) is bit-identical across thread counts.
//! Tests assert 1-thread and N-thread explorations produce the same
//! metric snapshot.
//!
//! ## Example
//!
//! ```
//! # use modref_obs as obs;
//! // Enabling is global; real callers do it once per process run.
//! obs::init(obs::ClockMode::Logical);
//! {
//!     let _outer = obs::span("work").attr("kind", "demo");
//!     obs::counter("work.items").add(3);
//! }
//! let trace = obs::shutdown();
//! assert!(trace.events.iter().any(|e| matches!(e,
//!     obs::Event::Span { name, .. } if name == "work")));
//! let text = obs::jsonl::write(&trace);
//! let back = obs::jsonl::parse(&text).unwrap();
//! assert_eq!(trace.events, back.events);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod report;
pub mod simtrace;
pub mod span;

pub use event::{Event, Trace};
pub use metrics::{
    counter, gauge, histogram, Counter, Gauge, Histogram, HistogramSnapshot, Meter, MetricsSnapshot,
};
pub use span::{span, span_under, Span};

/// How timestamps are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Monotonic nanoseconds since [`init`] — real profiling.
    #[default]
    Wall,
    /// All timestamps and durations are zero; traces depend only on the
    /// recorded structure, so trace-based tests reproduce exactly across
    /// machines and thread counts.
    Logical,
}

/// Global recorder switch. Relaxed loads on every hot path; flipped only
/// by [`init`] / [`shutdown`].
static ENABLED: AtomicBool = AtomicBool::new(false);
/// True when the current run uses [`ClockMode::Logical`].
static LOGICAL: AtomicBool = AtomicBool::new(false);
/// Per-run id sequence. Ids are *never* derived from wall clock or
/// randomness; 0 is reserved for "no parent".
static SEQ: AtomicU64 = AtomicU64::new(1);

/// Monotonic base for wall-clock timestamps. Set once per process; the
/// per-run zero point is [`START_NS`] relative to it.
static BASE: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
/// Nanoseconds (relative to [`BASE`]) at the most recent [`init`].
static START_NS: AtomicU64 = AtomicU64::new(0);

/// Whether the recorder is currently enabled. One relaxed atomic load —
/// the fast path every instrumentation site checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since [`init`] (0 before init or in logical-clock mode).
#[inline]
pub fn now_ns() -> u64 {
    if LOGICAL.load(Ordering::Relaxed) {
        return 0;
    }
    let base = BASE.get_or_init(Instant::now);
    (base.elapsed().as_nanos() as u64).saturating_sub(START_NS.load(Ordering::Relaxed))
}

/// Allocates the next event/span id from the per-run sequence counter.
#[inline]
pub(crate) fn next_id() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// The clock mode of the current (or last) run.
pub fn clock_mode() -> ClockMode {
    if LOGICAL.load(Ordering::Relaxed) {
        ClockMode::Logical
    } else {
        ClockMode::Wall
    }
}

/// Starts a recording run: resets the id sequence, the clock zero point,
/// all registered metrics and any buffered events, then enables the
/// recorder.
///
/// The recorder is process-global; concurrent runs interleave into one
/// trace. Tests that enable it serialize on their own lock.
pub fn init(mode: ClockMode) {
    ENABLED.store(false, Ordering::SeqCst);
    LOGICAL.store(matches!(mode, ClockMode::Logical), Ordering::SeqCst);
    let base = BASE.get_or_init(Instant::now);
    START_NS.store(base.elapsed().as_nanos() as u64, Ordering::SeqCst);
    SEQ.store(1, Ordering::SeqCst);
    span::clear_pending();
    metrics::reset_all();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording and returns everything recorded since [`init`]:
/// a `meta` event, all finished spans (ordered by id), and one snapshot
/// event per registered counter/gauge/histogram (ordered by name).
pub fn shutdown() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    let mut events = vec![Event::Meta {
        version: event::FORMAT_VERSION,
        clock: clock_mode(),
    }];
    let mut spans = span::drain_pending();
    spans.sort_by_key(|e| match e {
        Event::Span { id, .. } => *id,
        _ => 0,
    });
    events.extend(spans);
    events.extend(metrics::snapshot().into_events());
    Trace { events }
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Serializes tests that flip the global recorder.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _l = testlock::hold();
        ENABLED.store(false, Ordering::SeqCst);
        {
            let _s = span("ignored");
            counter("ignored.count").add(5);
        }
        let trace = shutdown();
        assert!(!trace
            .events
            .iter()
            .any(|e| matches!(e, Event::Span { name, .. } if name == "ignored")));
        // Counters registered earlier may appear in the snapshot but must
        // not have counted while disabled.
        for e in &trace.events {
            if let Event::Counter { name, value } = e {
                if name == "ignored.count" {
                    assert_eq!(*value, 0);
                }
            }
        }
    }

    #[test]
    fn ids_are_sequential_not_clock_derived() {
        let _l = testlock::hold();
        init(ClockMode::Logical);
        let a = {
            let s = span("a");
            s.id()
        };
        let b = {
            let s = span("b");
            s.id()
        };
        assert!(a >= 1 && b == a + 1, "ids {a} {b} must be sequential");
        let trace = shutdown();
        // Re-init restarts the sequence: a fresh run reuses the same ids.
        init(ClockMode::Logical);
        let a2 = {
            let s = span("a");
            s.id()
        };
        assert_eq!(a, a2, "ids must restart per run");
        shutdown();
        drop(trace);
    }

    #[test]
    fn logical_clock_zeroes_time() {
        let _l = testlock::hold();
        init(ClockMode::Logical);
        let _ = {
            let s = span("timed");
            std::thread::sleep(std::time::Duration::from_millis(1));
            s
        };
        let trace = shutdown();
        let span_ev = trace
            .events
            .iter()
            .find(|e| matches!(e, Event::Span { name, .. } if name == "timed"))
            .expect("span recorded");
        if let Event::Span {
            start_ns, dur_ns, ..
        } = span_ev
        {
            assert_eq!((*start_ns, *dur_ns), (0, 0));
        }
    }
}
