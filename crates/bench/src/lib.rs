//! Shared helpers for the modref benchmark harness: paper-style table
//! rendering, the fixed experiment grid (3 designs × 4 models), and a
//! minimal Criterion-compatible measurement harness ([`harness`]) so the
//! benches run without network access to crates.io.

pub mod harness;

use modref_core::ImplModel;
use modref_workloads::Design;

/// The evaluation grid of the paper's Section 5.
pub fn grid() -> Vec<(Design, ImplModel)> {
    Design::ALL
        .iter()
        .flat_map(|&d| ImplModel::ALL.iter().map(move |&m| (d, m)))
        .collect()
}

/// Renders a simple aligned table: a header row and data rows.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_three_by_four() {
        assert_eq!(grid().len(), 12);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["a".into(), "bb".into()],
            &[vec!["111".into(), "2".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("111  2"));
    }
}
