//! Regenerates the paper's evaluation artifacts:
//!
//! * **Figure 9** — required bus transfer rate (Mbit/s) per bus, for the
//!   three designs of the medical system under the four implementation
//!   models;
//! * **Figure 10** — size of the refined specification (lines) and the
//!   CPU time of the refinement, per design and model;
//! * the **expansion** table — refined/original size ratios behind the
//!   paper's "11 to 19 times larger" observation;
//! * an **equivalence** audit — every refined model simulated against the
//!   original specification.
//!
//! Run with: `cargo run -p modref-bench --bin paper_tables`

use std::time::Instant;

use modref_bench::render_table;
use modref_core::{figure9_rates, refine, ImplModel};
use modref_estimate::LifetimeConfig;
use modref_graph::AccessGraph;
use modref_sim::Simulator;
use modref_spec::printer;
use modref_workloads::{medical_allocation, medical_partition, medical_spec, Design};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = medical_spec();
    let graph = AccessGraph::derive(&spec);
    let alloc = medical_allocation();
    let cfg = LifetimeConfig::default();
    let original_lines = printer::line_count(&spec);

    println!(
        "medical system: {} behaviors, {} variables, {} data-access channels, {} lines\n",
        spec.behavior_count(),
        spec.variable_count(),
        graph.data_channel_count(),
        original_lines
    );

    // ---- Figure 9: bus transfer rates ----
    let mut rows = Vec::new();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let mut row = vec![design.label().to_string()];
        for model in ImplModel::ALL {
            let rates = figure9_rates(&spec, &graph, &alloc, &part, model, &cfg)?;
            let cells: Vec<String> = rates.iter().map(|(_, r)| format!("{r:.0}")).collect();
            row.push(cells.join(", "));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("Partition".to_string())
        .chain(ImplModel::ALL.iter().map(|m| m.to_string()))
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 9: bus transfer rates (Mbit/s), buses b1..bn per model",
            &header,
            &rows
        )
    );
    println!("note: bus order per model matches Figure 3 — Model2: [local0, global, local1];");
    println!(
        "      Model3: [local0, gmem buses, local1]; Model4: [local0, ifc0, inter, ifc1, local1]\n"
    );

    // ---- Figure 10: refined size / refinement CPU time ----
    let mut rows = Vec::new();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let mut row = vec![design.label().to_string()];
        for model in ImplModel::ALL {
            // Time the refinement (median of several runs).
            let mut best = f64::INFINITY;
            let mut refined = None;
            for _ in 0..5 {
                let t0 = Instant::now();
                let r = refine(&spec, &graph, &alloc, &part, model)?;
                best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
                refined = Some(r);
            }
            let refined = refined.expect("refined at least once");
            row.push(format!(
                "{} lines / {best:.1} ms",
                printer::line_count(&refined.spec)
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Figure 10: refined specification size / refinement CPU time",
            &header,
            &rows
        )
    );

    // ---- Expansion ratios ----
    let mut rows = Vec::new();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let mut row = vec![design.to_string()];
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)?;
            let ratio = printer::line_count(&refined.spec) as f64 / original_lines as f64;
            row.push(format!("{ratio:.1}x"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &format!("Expansion: refined size over the {original_lines}-line original"),
            &header,
            &rows
        )
    );

    // ---- Section 5 cost discussion ----
    let mut rows = Vec::new();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let mut row = vec![design.to_string()];
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)?;
            let cost = modref_core::CostSummary::of(&refined.architecture);
            row.push(format!(
                "{}b/{}m/{}p/{}a/{}i",
                cost.buses, cost.memories, cost.memory_ports, cost.arbiters, cost.interfaces
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Section 5 cost: buses/memories/ports/arbiters/interfaces",
            &header,
            &rows
        )
    );

    // ---- Equivalence audit ----
    let original = Simulator::new(&spec).run()?;
    let mut rows = Vec::new();
    for design in Design::ALL {
        let part = medical_partition(&spec, &alloc, design);
        let mut row = vec![design.to_string()];
        for model in ImplModel::ALL {
            let refined = refine(&spec, &graph, &alloc, &part, model)?;
            let result = Simulator::new(&refined.spec).run()?;
            let diffs = original.diff_common_vars(&result);
            row.push(if diffs.is_empty() {
                "equivalent".into()
            } else {
                format!("DIVERGES {diffs:?}")
            });
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Equivalence: refined models simulated vs original",
            &header,
            &rows
        )
    );

    Ok(())
}
