//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so `criterion` cannot be used; this module provides the
//! subset of its surface the benches need ([`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], plus the
//! [`criterion_group!`]/[`criterion_main!`] macros) backed by plain
//! `std::time::Instant` measurement: a short warm-up sizes a batch, the
//! batch is timed a few times, and the best mean ns/iteration is
//! reported.
//!
//! Tuning: `MODREF_BENCH_MS` sets the per-benchmark time budget in
//! milliseconds (default 60; set it low in CI smoke runs).
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Reads the per-benchmark time budget from `MODREF_BENCH_MS`.
fn time_budget() -> Duration {
    std::env::var("MODREF_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(60))
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: time_budget(),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.budget,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.budget,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Records the group's throughput unit. Accepted for API
    /// compatibility; the mini-harness reports only ns/iter.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands the closure under test to the measurement loop.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Best observed mean, in ns/iter (filled by [`Bencher::iter`]).
    result_ns: f64,
}

impl Bencher {
    /// Measures `f`, recording the best mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~1/8 of the budget elapses, counting calls,
        // to size a measurement batch.
        let warmup_target = self.budget / 8;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_target || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~5 samples within the remaining budget.
        let remaining = self.budget.as_secs_f64() * (7.0 / 8.0);
        let samples: u32 = 5;
        let batch = ((remaining / samples as f64 / per_iter).floor() as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let mean = start.elapsed().as_secs_f64() / batch as f64;
            best = best.min(mean);
        }
        self.result_ns = best * 1e9;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    let mut bencher = Bencher {
        budget,
        result_ns: f64::NAN,
    };
    f(&mut bencher);
    println!("{name:<48} time: [{}]", format_ns(bencher.result_ns));
}

/// Formats nanoseconds with an adaptive unit, Criterion-style.
pub fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "no measurement".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function that runs a sequence of benchmark functions, each
/// taking `&mut Criterion` — API-compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` that runs benchmark groups declared with
/// [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(4),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
