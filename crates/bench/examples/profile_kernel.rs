//! Isolation harness separating a kernel's two cost centers: `spin_1M`
//! is a single process in a tight loop (pure dispatch/interpreter cost,
//! the scheduler never runs), while `ring128` is scheduler-bound (two
//! rounds, a timer pop and a wake per eight instructions). The spread
//! between a kernel's two numbers is the shared scheduler residue that
//! lowering cannot remove. Run with
//! `cargo run --release -p modref-bench --example profile_kernel`.
//! Not part of the recorded benches — `BENCH_sim.json` comes from the
//! `sim_kernel` bench.

use std::time::Instant;

use modref_sim::{SimConfig, SimKernel, Simulator};
use modref_spec::builder::SpecBuilder;
use modref_spec::{expr, stmt, Spec};
use modref_workloads::ring_spec;

fn time(name: &str, spec: &Spec, kernel: SimKernel, reps: u32) {
    let mut best = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let r = Simulator::with_config(
            spec,
            SimConfig {
                kernel,
                max_steps: 100_000_000,
                ..SimConfig::default()
            },
        )
        .run()
        .expect("completes");
        let ns = start.elapsed().as_secs_f64() * 1e9 / r.steps as f64;
        best = best.min(ns);
        steps = r.steps;
    }
    println!("{name:<24} {kernel:?}: {best:6.2} ns/step ({steps} steps)");
}

/// A single process spinning in a for loop: no waits, no signals beyond
/// the loop variable — measures the raw dispatch/interpreter loop.
fn spin_spec(iters: i64) -> Spec {
    let mut b = SpecBuilder::new("spin");
    let i = b.var_int("i", 32, 0);
    let x = b.var_int("x", 32, 0);
    let a = b.leaf(
        "A",
        vec![stmt::for_loop(
            i,
            expr::lit(0),
            expr::lit(iters),
            vec![stmt::assign(x, expr::add(expr::var(x), expr::lit(1)))],
        )],
    );
    let top = b.seq_in_order("Top", vec![a]);
    b.finish(top).expect("valid")
}

fn main() {
    let spin = spin_spec(1_000_000);
    let ring = ring_spec(128, 64);
    for kernel in [SimKernel::EventDriven, SimKernel::Compiled] {
        time("spin_1M", &spin, kernel, 5);
        time("ring128", &ring, kernel, 5);
    }
}
